"""Structured findings emitted by the contract linter.

A :class:`Finding` pins one contract violation to a file, a line, and a rule
id, plus an *anchor* — a stable ``path::qualname`` identifier that allowlist
entries match against (see :mod:`repro.analysis.suppress`).  Findings are
plain frozen dataclasses so reporters can serialise them without knowing
anything about the rules that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation, pinned to a source location.

    Attributes
    ----------
    file:
        Root-relative POSIX path of the offending file.
    line:
        1-based line number of the violation.
    rule:
        Id of the rule that fired (e.g. ``"typed-exceptions"``).
    message:
        Human-readable description of what was violated and how to fix it.
    anchor:
        Stable identifier for allowlisting: ``file`` for line-level findings,
        ``file::Qualname`` for class/method-level findings.
    """

    file: str
    line: int
    rule: str
    message: str
    anchor: str

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation (schema-stable, see the reporter)."""
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "anchor": self.anchor,
        }

    def render(self) -> str:
        """One-line text rendering: ``file:line: [rule] message``."""
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
