"""Reporters rendering an analysis run for humans (text) and tools (JSON).

The JSON schema is versioned and stable: tools may rely on the exact key set
(``format``, ``root``, ``checked_files``, ``rules``, ``findings``,
``suppressed``, ``allowlisted``, ``unused_allowlist_entries``) and on each
finding's keys (``rule``, ``file``, ``line``, ``message``, ``anchor``).
``tests/test_static_analysis.py`` pins the schema.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.runner import AnalysisResult

__all__ = ["REPORT_FORMAT", "render_text", "render_json"]

#: Schema identifier of the JSON report.
REPORT_FORMAT = "repro.analysis/v1"


def render_text(result: "AnalysisResult", verbose: bool = False) -> str:
    """Human-readable report: one line per active finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if verbose:
        lines.extend(
            f"{finding.render()} (suppressed inline)" for finding in result.suppressed
        )
        lines.extend(
            f"{finding.render()} (allowlisted)" for finding in result.allowlisted
        )
    for entry in result.unused_allowlist_entries:
        lines.append(
            f"allowlist:{entry.line}: unused entry "
            f"[{entry.rule}] {entry.pattern!r} matched nothing "
            "(remove it or fix the pattern)"
        )
    if result.findings:
        lines.append(
            f"repro.analysis: {len(result.findings)} finding(s) in "
            f"{result.checked_files} file(s)"
        )
    else:
        extras = []
        if result.allowlisted:
            extras.append(f"{len(result.allowlisted)} allowlisted")
        if result.suppressed:
            extras.append(f"{len(result.suppressed)} suppressed inline")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"repro.analysis: OK ({result.checked_files} files, "
            f"{len(result.rule_ids)} rules){suffix}"
        )
    return "\n".join(lines)


def render_json(result: "AnalysisResult") -> str:
    """Stable machine-readable report (see module docstring for the schema)."""
    payload = {
        "format": REPORT_FORMAT,
        "root": str(result.root),
        "checked_files": result.checked_files,
        "rules": list(result.rule_ids),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "allowlisted": [finding.to_dict() for finding in result.allowlisted],
        "unused_allowlist_entries": [
            {"rule": entry.rule, "pattern": entry.pattern, "line": entry.line}
            for entry in result.unused_allowlist_entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
