"""The contract rules: each one statically enforces an invariant a past PR
established at runtime.

Every rule walks the shared :class:`~repro.analysis.model.ProjectModel` and
yields :class:`~repro.analysis.findings.Finding` records; it never imports or
executes the code under analysis.  See ``docs/static_analysis.md`` for the
rationale behind each rule id and how to suppress a finding.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)

__all__ = [
    "Rule",
    "EngineContractRule",
    "OracleBatchParityRule",
    "TypedExceptionsRule",
    "DeterminismRule",
    "ObsClockRule",
    "RegistryHygieneRule",
    "DeltaEquivalenceRule",
    "all_rules",
    "rules_by_id",
    "SYNTAX_ERROR_RULE_ID",
]

#: Pseudo-rule id attached to findings for files that failed to parse.
SYNTAX_ERROR_RULE_ID = "syntax-error"


class Rule(ABC):
    """One statically checkable contract.

    Subclasses set ``rule_id`` (the id used in reports, suppression comments
    and allowlist entries), ``title`` and ``rationale`` (which PR's invariant
    the rule guards), and implement :meth:`check`.
    """

    rule_id: str
    title: str
    rationale: str

    @abstractmethod
    def check(self, model: ProjectModel) -> Iterator[Finding]:
        """Yield one finding per violation found in the model."""

    def _finding(
        self, module: ModuleInfo, line: int, message: str, qualname: str | None = None
    ) -> Finding:
        anchor = f"{module.relpath}::{qualname}" if qualname else module.relpath
        return Finding(
            file=module.relpath,
            line=line,
            rule=self.rule_id,
            message=message,
            anchor=anchor,
        )


# --------------------------------------------------------------------------- #
# engine-contract
# --------------------------------------------------------------------------- #
class EngineContractRule(Rule):
    """Registered engines must implement the full PR-2 seam.

    Every class decorated with ``register_engine`` must define (or inherit
    from a class in the tree) ``preprocess`` / ``suggest`` / ``suggest_many``
    / ``capabilities`` / ``to_payload`` / ``from_payload`` with signatures a
    registry caller can invoke: ``preprocess()`` and ``preprocess(dataset,
    oracle)``, ``suggest(function)``, ``suggest_many(matrix)``,
    ``capabilities()``, ``to_payload()``, and classmethod
    ``from_payload(payload, oracle)``.
    """

    rule_id = "engine-contract"
    title = "registered engines implement the full QueryEngine seam"
    rationale = "PR 2: the unified engine API every facade/serving path dispatches on"

    #: method name -> (positional call arities that must be accepted, must be classmethod)
    _SEAM: dict[str, tuple[tuple[int, ...], bool]] = {
        "preprocess": ((0, 2), False),
        "suggest": ((1,), False),
        "suggest_many": ((1,), False),
        "capabilities": ((0,), False),
        "to_payload": ((0,), False),
        "from_payload": ((2,), True),
    }

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for info in model.classes():
            if info.registered_engine is None:
                continue
            resolved = model.resolved_methods(info)
            for method, (arities, needs_classmethod) in self._SEAM.items():
                if method not in resolved:
                    yield self._finding(
                        info.module,
                        info.lineno,
                        f"engine {info.registered_engine!r} ({info.name}) does not "
                        f"define or inherit {method}(); every registered engine "
                        "must implement the full QueryEngine seam",
                        qualname=info.name,
                    )
                    continue
                function, owner = resolved[method]
                bad_arity = [n for n in arities if not function.accepts(n)]
                if bad_arity:
                    yield self._finding(
                        info.module,
                        function.lineno if owner is info else info.lineno,
                        f"engine {info.registered_engine!r} ({info.name}): "
                        f"{method}() (defined on {owner.name}) cannot be called "
                        f"with {' or '.join(str(n) for n in bad_arity)} positional "
                        "argument(s) as the QueryEngine protocol requires",
                        qualname=f"{info.name}.{method}",
                    )
                if needs_classmethod and not (
                    function.is_classmethod or function.is_staticmethod
                ):
                    yield self._finding(
                        info.module,
                        function.lineno if owner is info else info.lineno,
                        f"engine {info.registered_engine!r} ({info.name}): "
                        f"{method}() must be a classmethod so payload dispatch "
                        "can rebuild the engine without an instance",
                        qualname=f"{info.name}.{method}",
                    )


# --------------------------------------------------------------------------- #
# oracle-batch-parity
# --------------------------------------------------------------------------- #
_FAIRNESS_ORACLE = "repro.fairness.oracle.FairnessOracle"


class OracleBatchParityRule(Rule):
    """Oracles overriding ``is_satisfactory`` must keep the batched path.

    A ``FairnessOracle`` subclass that overrides the scalar verdict without
    implementing (or inheriting) ``is_satisfactory_many`` silently drops out
    of the PR-5 batched protocol: ``suggest_many`` falls back to the per-query
    loop and the scalar/batched bit-parity guarantee has nothing to check.
    Deliberate black-box oracles go on the committed allowlist instead.
    """

    rule_id = "oracle-batch-parity"
    title = "scalar oracle overrides keep a batched twin"
    rationale = "PR 5: scalar/batched bit-parity of the batched oracle protocol"

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for info in model.classes():
            if not model.is_subclass(info, _FAIRNESS_ORACLE):
                continue
            own = info.methods.get("is_satisfactory")
            if own is None or own.is_abstract:
                continue
            if "is_satisfactory_many" in model.resolved_methods(info):
                continue
            yield self._finding(
                info.module,
                own.lineno,
                f"{info.name} overrides is_satisfactory() without an "
                "is_satisfactory_many() batched twin; implement the batched "
                "protocol (see repro.fairness.batched) or add the class to the "
                "black-box allowlist",
                qualname=info.name,
            )


# --------------------------------------------------------------------------- #
# typed-exceptions
# --------------------------------------------------------------------------- #
_BANNED_RAISES = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "LookupError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "AssertionError",
    "OSError",
    "IOError",
    "NameError",
    "StopIteration",
    "UnicodeError",
}


class TypedExceptionsRule(Rule):
    """Library code raises the typed hierarchy, not bare builtins or asserts.

    ``raise ValueError(...)`` and control-flow ``assert`` make failures
    unclassifiable for callers that guard pipelines with ``except
    ReproError``; PR 6's resilience layer additionally keys retry/fallback
    decisions on the typed hierarchy.  ``NotImplementedError`` (abstract
    stubs) and ``SystemExit`` (CLI entry points) stay legal.
    """

    rule_id = "typed-exceptions"
    title = "no bare builtin raises or control-flow asserts in library code"
    rationale = "PR 6: typed exceptions drive except-ReproError guards and retry policy"

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for module in model.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Raise) and node.exc is not None:
                    target = node.exc
                    if isinstance(target, ast.Call):
                        target = target.func
                    name = dotted_name(target)
                    if name is None:
                        continue
                    resolved = module.resolve(name) or name
                    tail = resolved.split(".")[-1]
                    builtin = resolved == tail or resolved.startswith("builtins.")
                    if builtin and tail in _BANNED_RAISES:
                        yield self._finding(
                            module,
                            node.lineno,
                            f"raise {tail}: library code must raise a typed "
                            "exception from repro.exceptions so callers can "
                            "catch ReproError",
                        )
                elif isinstance(node, ast.Assert):
                    yield self._finding(
                        module,
                        node.lineno,
                        "control-flow assert in library code: asserts vanish "
                        "under -O; raise a typed exception from "
                        "repro.exceptions instead",
                    )


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #
#: numpy.random attributes that are seedable constructors, not global-state draws.
_SAFE_NP_RANDOM = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "default_rng",
}
_WALL_CLOCK_TAILS = {
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
#: Process-pool constructors whose workers inherit ambient state on fork.
_POOL_EXECUTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
}


class DeterminismRule(Rule):
    """Serving paths stay deterministic: seeded RNG, injectable clocks.

    Flags unseeded ``np.random.default_rng()``, every legacy global-state
    ``np.random.*`` draw, stdlib ``random.*`` module calls, ``time.time()``
    and ``datetime.now()``-style wall clocks.  Monotonic duration measurement
    (``time.monotonic`` / ``time.perf_counter``) is fine — the PR-6 clock seam
    injects it; wall-clock and hidden RNG state are not reproducible across
    shards or replays.

    Inside the PR-9 parallel modules the rule additionally requires every
    ``ProcessPoolExecutor(...)`` to pass an ``initializer=``: forked workers
    inherit the parent's ambient trace recorder and RNG state, so a pool
    without a worker initializer (which must detach the recorder and derive
    per-shard seeds — see :mod:`repro.parallel.shards`) silently breaks the
    bit-identity guarantee.
    """

    rule_id = "determinism"
    title = "no unseeded RNG or wall-clock access outside approved modules"
    rationale = "PR 1/6: seeded draws and injectable clocks keep serving replayable"

    @staticmethod
    def _parallel_scope(module: ModuleInfo) -> bool:
        if module.module_name == "repro.parallel" or module.module_name.startswith(
            "repro.parallel."
        ):
            return True
        return "parallel" in module.relpath.split("/")

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for module in model.modules:
            in_parallel = self._parallel_scope(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                # Only names that trace back to an import can denote the
                # stdlib/numpy modules; a local variable that happens to be
                # called ``random`` or ``time`` must not fire.
                if name.split(".")[0] not in module.imports:
                    continue
                resolved = module.resolve(name)
                if resolved is None:
                    continue
                if (
                    in_parallel
                    and resolved in _POOL_EXECUTORS
                    and not any(
                        keyword.arg == "initializer" for keyword in node.keywords
                    )
                ):
                    yield self._finding(
                        module,
                        node.lineno,
                        "ProcessPoolExecutor(...) without initializer= in a "
                        "parallel module: forked workers inherit the ambient "
                        "trace recorder and RNG state; pass an initializer that "
                        "calls reset_stage_recorder() and re-seeds from "
                        "derive_shard_seed(...)",
                    )
                message = self._violation(resolved, node)
                if message is not None:
                    yield self._finding(module, node.lineno, message)

    @staticmethod
    def _violation(resolved: str, node: ast.Call) -> str | None:
        parts = resolved.split(".")
        if resolved in ("time.time", "time.time_ns"):
            return (
                f"{resolved}() reads the wall clock; inject a clock (see the "
                "repro.resilience.policy seam) or use time.monotonic for durations"
            )
        if len(parts) >= 2 and tuple(parts[-2:]) in _WALL_CLOCK_TAILS:
            return (
                f"{resolved}() reads the wall clock; pass timestamps in "
                "explicitly so runs are replayable"
            )
        if parts[0] == "numpy" and len(parts) >= 3 and parts[1] == "random":
            tail = parts[2]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    return (
                        "np.random.default_rng() without a seed draws from OS "
                        "entropy; pass an explicit seed or accept an rng parameter"
                    )
                return None
            if tail not in _SAFE_NP_RANDOM:
                return (
                    f"np.random.{tail} uses numpy's hidden global RNG state; "
                    "use a seeded np.random.default_rng(...) generator"
                )
            return None
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random" and (node.args or node.keywords):
                return None
            return (
                f"random.{parts[1]} uses the stdlib's hidden global RNG state; "
                "use a seeded np.random.default_rng(...) generator"
            )
        return None


# --------------------------------------------------------------------------- #
# obs-clock
# --------------------------------------------------------------------------- #
_OBS_PACKAGE = "repro.obs"


class ObsClockRule(Rule):
    """Observability code never reads the process clock directly.

    The PR-8 observability layer promises byte-identical trace exports and
    metrics snapshots under a fake clock, which only holds if every duration
    inside ``repro.obs`` flows through the injected clock seam
    (``repro.clock.monotonic_clock`` passed in, never called as ``time.*``).
    A direct ``import time`` — or any call resolving into the ``time``
    module — inside an ``obs`` package reintroduces untestable wall time.
    """

    rule_id = "obs-clock"
    title = "observability modules use the injected clock seam, never time.*"
    rationale = "PR 8: deterministic traces/metrics need every obs duration injectable"

    @staticmethod
    def _in_scope(module: ModuleInfo) -> bool:
        if module.module_name == _OBS_PACKAGE or module.module_name.startswith(
            _OBS_PACKAGE + "."
        ):
            return True
        return "obs" in module.relpath.split("/")

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for module in model.modules:
            if not self._in_scope(module):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.split(".")[0] == "time":
                            yield self._finding(
                                module,
                                node.lineno,
                                "import time inside an observability module: "
                                "accept a clock argument (repro.clock) so "
                                "traces and metrics stay replayable under a "
                                "fake clock",
                            )
                elif isinstance(node, ast.ImportFrom):
                    if node.level == 0 and (node.module or "").split(".")[0] == "time":
                        yield self._finding(
                            module,
                            node.lineno,
                            "from time import ... inside an observability "
                            "module: accept a clock argument (repro.clock) "
                            "so traces and metrics stay replayable under a "
                            "fake clock",
                        )
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name is None or name.split(".")[0] not in module.imports:
                        continue
                    resolved = module.resolve(name)
                    if resolved is not None and (
                        resolved == "time" or resolved.startswith("time.")
                    ):
                        yield self._finding(
                            module,
                            node.lineno,
                            f"{resolved}() called inside an observability "
                            "module: durations must come from the injected "
                            "clock seam (repro.clock), never time.* directly",
                        )


# --------------------------------------------------------------------------- #
# registry-hygiene
# --------------------------------------------------------------------------- #
_REGISTRY_NAMES = {"_ENGINE_REGISTRY", "_CONFIG_TO_NAME"}
_MUTATING_METHODS = {"update", "setdefault", "pop", "popitem", "clear"}
_REGISTRY_HOME = "repro.core.engine"
_REGISTRY_API = "register_engine"


class RegistryHygieneRule(Rule):
    """Engines are registered through the registry API, never by dict surgery.

    Direct writes to ``_ENGINE_REGISTRY`` / ``_CONFIG_TO_NAME`` bypass the
    duplicate-name check and the config↔name pairing that
    ``register_engine`` maintains, so dispatch and payload round-trips
    silently desynchronise.  Only ``register_engine`` itself (in
    ``repro.core.engine``) may mutate the registry dicts.
    """

    rule_id = "registry-hygiene"
    title = "no direct mutation of the engine registry dicts"
    rationale = "PR 2/6: single registration path keeps dispatch and persistence in sync"

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        for module in model.modules:
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        stack: list[str] = []

        def allowed() -> bool:
            return module.module_name == _REGISTRY_HOME and _REGISTRY_API in stack

        def registry_target(node: ast.AST) -> str | None:
            name = dotted_name(node)
            if name is not None and name.split(".")[-1] in _REGISTRY_NAMES:
                return name.split(".")[-1]
            return None

        def visit(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
                stack.pop()
                return
            hit: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        hit = registry_target(target.value)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        hit = registry_target(target.value)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATING_METHODS:
                    hit = registry_target(node.func.value)
            if hit is not None and not allowed():
                yield self._finding(
                    module,
                    node.lineno,
                    f"direct mutation of {hit}: register engines through "
                    "repro.core.engine.register_engine, never by writing to "
                    "the registry dicts",
                )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        yield from visit(module.tree)


# --------------------------------------------------------------------------- #
# delta-equivalence
# --------------------------------------------------------------------------- #
#: Differential harness whose fixture list every ``apply_delta`` override
#: must appear in (path relative to the repo root).
_DELTA_HARNESS_RELPATH = "tests/test_dynamic_equivalence.py"
#: Module-level constant inside the harness naming the exercised engines.
_DELTA_HARNESS_CONSTANT = "DELTA_EXERCISED_ENGINES"


class DeltaEquivalenceRule(Rule):
    """Every ``apply_delta`` override is pinned by the differential harness.

    The PR-10 maintenance seam promises that applying a delta yields an
    engine bit-identical to a from-scratch rebuild on the mutated dataset.
    The base ``QueryEngine.apply_delta`` carries that proof via
    ``tests/test_dynamic_equivalence.py``; any registered engine that
    *overrides* ``apply_delta`` (wrappers like the pool, the instrumented
    engine, or the fallback chain) re-implements the promise and so must be
    named in that harness's ``DELTA_EXERCISED_ENGINES`` fixture list —
    otherwise the override ships unproven.
    """

    rule_id = "delta-equivalence"
    title = "apply_delta overrides must be exercised by the differential harness"
    rationale = (
        "PR 10: delta maintenance is only trusted because it is proven "
        "bit-identical to a rebuild"
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        overriders = [
            info
            for info in model.classes()
            if info.registered_engine is not None and "apply_delta" in info.methods
        ]
        if not overriders:
            return
        exercised = self._exercised_engines()
        for info in overriders:
            lineno = info.methods["apply_delta"].lineno
            if exercised is None:
                yield self._finding(
                    info.module,
                    lineno,
                    f"engine '{info.registered_engine}' overrides apply_delta "
                    f"but the differential harness ({_DELTA_HARNESS_RELPATH}) "
                    f"or its {_DELTA_HARNESS_CONSTANT} list is missing",
                    qualname=info.qualname,
                )
            elif info.registered_engine not in exercised:
                yield self._finding(
                    info.module,
                    lineno,
                    f"engine '{info.registered_engine}' overrides apply_delta "
                    f"but is not listed in {_DELTA_HARNESS_CONSTANT} of "
                    f"{_DELTA_HARNESS_RELPATH}: add it so the delta-vs-rebuild "
                    "differential covers the override",
                    qualname=info.qualname,
                )

    def _exercised_engines(self) -> frozenset[str] | None:
        """Engine names the harness exercises, or ``None`` when unavailable.

        The harness lives outside the scanned tree (``tests/`` vs
        ``src/repro``), so it is located relative to this file's repo
        checkout and parsed with :mod:`ast` — never imported, per the
        linter's no-execution discipline.
        """
        harness = Path(__file__).resolve().parents[3] / _DELTA_HARNESS_RELPATH
        try:
            tree = ast.parse(harness.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            return None
        for node in tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            named = any(
                isinstance(target, ast.Name)
                and target.id == _DELTA_HARNESS_CONSTANT
                for target in targets
            )
            if not named:
                continue
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                names = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                return frozenset(names)
            return None
        return None


def all_rules() -> tuple[Rule, ...]:
    """One instance of every built-in contract rule, in report order."""
    return (
        EngineContractRule(),
        OracleBatchParityRule(),
        TypedExceptionsRule(),
        DeterminismRule(),
        ObsClockRule(),
        RegistryHygieneRule(),
        DeltaEquivalenceRule(),
    )


def rules_by_id() -> dict[str, Rule]:
    """Map rule id -> rule instance for CLI ``--rule`` selection."""
    return {rule.rule_id: rule for rule in all_rules()}
