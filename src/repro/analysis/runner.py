"""Orchestration: parse the tree once, run every rule, apply suppressions.

:func:`run_analysis` is the library entry point (used by
``scripts/check_contracts.py`` and the tier-1 gate in
``tests/test_static_analysis.py``); :func:`main` is the CLI behind
``python -m repro.analysis``.

Exit codes: ``0`` clean, ``1`` at least one active finding (including
``syntax-error`` findings for unparsable files and unused allowlist
entries), ``2`` usage errors (missing path, unreadable allowlist).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import SYNTAX_ERROR_RULE_ID, Rule, all_rules, rules_by_id
from repro.analysis.suppress import (
    Allowlist,
    AllowlistEntry,
    SuppressionComment,
    collect_suppressions,
    discover_allowlist,
)

__all__ = ["AnalysisResult", "run_analysis", "main"]


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    root: Path
    rule_ids: tuple[str, ...]
    checked_files: int
    #: Active findings — these fail the run.
    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline suppression comment.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings covered by the allowlist file.
    allowlisted: list[Finding] = field(default_factory=list)
    #: Every inline suppression marker present in the tree (used or not).
    suppression_comments: list[SuppressionComment] = field(default_factory=list)
    #: Allowlist entries that matched nothing.
    unused_allowlist_entries: tuple[AllowlistEntry, ...] = ()

    @property
    def ok(self) -> bool:
        """True when nothing fails the gate."""
        return not self.findings and not self.unused_allowlist_entries


def run_analysis(
    paths: list[Path],
    *,
    root: Path | None = None,
    rules: tuple[Rule, ...] | None = None,
    allowlist: Allowlist | None = None,
) -> AnalysisResult:
    """Run the contract rules over ``paths`` and classify every finding.

    ``root`` anchors the relative paths findings carry (default: the
    allowlist's directory when one is given, else the current directory).
    ``allowlist`` defaults to no allowlist — the CLI layers auto-discovery
    on top (see :func:`repro.analysis.suppress.discover_allowlist`).
    """
    if allowlist is None:
        allowlist = Allowlist.empty()
    if root is None:
        root = allowlist.path.parent if allowlist.path is not None else Path.cwd()
    active_rules = rules if rules is not None else all_rules()
    model = ProjectModel.build(paths, root)
    result = AnalysisResult(
        root=root,
        rule_ids=tuple(rule.rule_id for rule in active_rules),
        checked_files=len(model.modules) + len(model.failures),
    )

    raw: list[Finding] = [
        Finding(
            file=failure.relpath,
            line=failure.line,
            rule=SYNTAX_ERROR_RULE_ID,
            message=f"file does not parse: {failure.message}",
            anchor=failure.relpath,
        )
        for failure in model.failures
    ]
    for rule in active_rules:
        raw.extend(rule.check(model))
    raw.sort()

    suppressions: dict[tuple[str, int], set[str]] = {}
    for module in model.modules:
        for comment in collect_suppressions(module):
            result.suppression_comments.append(comment)
            suppressions.setdefault((comment.file, comment.line), set()).add(
                comment.rule
            )

    for finding in raw:
        if finding.rule in suppressions.get((finding.file, finding.line), ()):
            result.suppressed.append(finding)
        elif allowlist.covers(finding):
            result.allowlisted.append(finding)
        else:
            result.findings.append(finding)
    result.unused_allowlist_entries = allowlist.unused_entries()
    return result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically enforce the repo's engine/oracle/exception/"
        "determinism contracts (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the stable JSON report"
    )
    parser.add_argument(
        "--allowlist",
        metavar="FILE",
        help="allowlist file (default: nearest contracts_allowlist.txt above "
        "the first scanned path)",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore any allowlist file, even a discovered one",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and allowlisted findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    options = _build_parser().parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.title}")
            print(f"    guards: {rule.rationale}")
        print(f"{SYNTAX_ERROR_RULE_ID}: files must parse (always on)")
        return 0

    paths = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro.analysis: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    rules: tuple[Rule, ...] | None = None
    if options.rule:
        catalogue = rules_by_id()
        unknown = [rule_id for rule_id in options.rule if rule_id not in catalogue]
        if unknown:
            print(
                f"repro.analysis: unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(catalogue)}",
                file=sys.stderr,
            )
            return 2
        rules = tuple(catalogue[rule_id] for rule_id in options.rule)

    allowlist: Allowlist | None = None
    if not options.no_allowlist:
        allowlist_path = (
            Path(options.allowlist) if options.allowlist else discover_allowlist(paths)
        )
        if options.allowlist and not allowlist_path.is_file():
            print(
                f"repro.analysis: allowlist not found: {allowlist_path}",
                file=sys.stderr,
            )
            return 2
        if allowlist_path is not None:
            allowlist = Allowlist.load(allowlist_path)

    result = run_analysis(paths, rules=rules, allowlist=allowlist)
    print(render_json(result) if options.json else render_text(result, options.verbose))
    return 0 if result.ok else 1
