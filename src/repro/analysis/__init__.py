"""Static contract analysis for the ``repro`` source tree.

An AST rule engine that enforces, before any test runs, the invariants past
PRs established at runtime: the PR-2 ``QueryEngine`` seam on every registered
engine (``engine-contract``), the PR-5 scalar/batched oracle parity surface
(``oracle-batch-parity``), the PR-6 typed exception discipline
(``typed-exceptions``), seeded-RNG/injectable-clock determinism
(``determinism``), and registration through the registry API only
(``registry-hygiene``).  Files that fail to parse are reported as
``syntax-error`` findings instead of crashing the run.

Run it as a gate::

    PYTHONPATH=src python -m repro.analysis src/repro

or from code::

    from repro.analysis import run_analysis
    result = run_analysis([Path("src/repro")])
    assert result.ok, result.findings

Deliberate exceptions live in the committed allowlist
(``contracts_allowlist.txt``); one-off inline suppressions exist but the
tier-1 gate keeps the tree free of them.  See ``docs/static_analysis.md``.
"""

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel
from repro.analysis.report import REPORT_FORMAT, render_json, render_text
from repro.analysis.rules import (
    DeterminismRule,
    EngineContractRule,
    OracleBatchParityRule,
    RegistryHygieneRule,
    Rule,
    SYNTAX_ERROR_RULE_ID,
    TypedExceptionsRule,
    all_rules,
    rules_by_id,
)
from repro.analysis.runner import AnalysisResult, main, run_analysis
from repro.analysis.suppress import (
    ALLOWLIST_FILENAME,
    Allowlist,
    AllowlistEntry,
    SuppressionComment,
    collect_suppressions,
    discover_allowlist,
)

__all__ = [
    "Finding",
    "ProjectModel",
    "Rule",
    "EngineContractRule",
    "OracleBatchParityRule",
    "TypedExceptionsRule",
    "DeterminismRule",
    "RegistryHygieneRule",
    "all_rules",
    "rules_by_id",
    "SYNTAX_ERROR_RULE_ID",
    "AnalysisResult",
    "run_analysis",
    "main",
    "Allowlist",
    "AllowlistEntry",
    "ALLOWLIST_FILENAME",
    "SuppressionComment",
    "collect_suppressions",
    "discover_allowlist",
    "REPORT_FORMAT",
    "render_text",
    "render_json",
]
