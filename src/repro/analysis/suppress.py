"""Suppression of findings: inline comments and the committed allowlist.

Two mechanisms, with different intended lifetimes:

* an inline comment on the offending line silences one finding in place —
  the marker is a real comment of the form ``repro: allow-`` followed by the
  rule id (detected with :mod:`tokenize`, so the same text inside a string
  or docstring never counts);
* an allowlist file holds the *deliberate*, reviewed exceptions — one
  ``<rule-id> <pattern>`` pair per line, where the :mod:`fnmatch` pattern is
  matched against each finding's anchor (``path::Qualname``) and its file
  path.  Unused entries are reported so the allowlist cannot rot.

The repository convention is to keep the tree free of inline suppressions and
route every deliberate exception through the committed allowlist
(``contracts_allowlist.txt`` at the repo root) — the tier-1 gate enforces it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo

__all__ = [
    "SuppressionComment",
    "collect_suppressions",
    "AllowlistEntry",
    "Allowlist",
    "ALLOWLIST_FILENAME",
    "discover_allowlist",
]

#: Default allowlist file name, discovered by walking up from the scanned tree.
ALLOWLIST_FILENAME = "contracts_allowlist.txt"

_MARKER = re.compile(r"repro:\s*allow-([A-Za-z0-9_-]+)")


@dataclass(frozen=True)
class SuppressionComment:
    """One inline suppression marker found in a source file."""

    file: str
    line: int
    rule: str


def collect_suppressions(module: ModuleInfo) -> list[SuppressionComment]:
    """Inline suppression markers of one module, via real COMMENT tokens only."""
    comments: list[SuppressionComment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _MARKER.finditer(token.string):
                comments.append(
                    SuppressionComment(module.relpath, token.start[0], match.group(1))
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file broken enough to defeat the tokenizer already surfaces as a
        # syntax-error finding; it simply cannot carry suppressions.
        return []
    return comments


@dataclass(frozen=True)
class AllowlistEntry:
    """One reviewed exception: a rule id plus an anchor pattern."""

    rule: str
    pattern: str
    line: int

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        return fnmatch(finding.anchor, self.pattern) or fnmatch(
            finding.file, self.pattern
        )


class Allowlist:
    """Parsed allowlist file; tracks which entries actually matched."""

    def __init__(self, entries: tuple[AllowlistEntry, ...], path: Path | None = None):
        self.entries = entries
        self.path = path
        self._used: set[AllowlistEntry] = set()

    @classmethod
    def empty(cls) -> "Allowlist":
        return cls(())

    @classmethod
    def load(cls, path: Path) -> "Allowlist":
        """Parse ``<rule-id> <pattern>`` lines; ``#`` starts a comment."""
        entries: list[AllowlistEntry] = []
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                # A rule id without a pattern can never match; keep it visible
                # as an (unused) entry instead of silently dropping it.
                parts = [parts[0], ""]
            entries.append(AllowlistEntry(parts[0], parts[1], lineno))
        return cls(tuple(entries), path)

    def covers(self, finding: Finding) -> bool:
        """True when some entry matches; matching entries are marked used."""
        covered = False
        for entry in self.entries:
            if entry.matches(finding):
                self._used.add(entry)
                covered = True
        return covered

    def unused_entries(self) -> tuple[AllowlistEntry, ...]:
        """Entries that matched no finding in this run (stale allowlisting)."""
        return tuple(e for e in self.entries if e not in self._used)


def discover_allowlist(paths: list[Path]) -> Path | None:
    """Find the nearest ``contracts_allowlist.txt`` above the scanned tree.

    Walks from the first scanned path's directory up to the filesystem root
    and returns the first hit, so ``python -m repro.analysis src/repro`` run
    from the repository root picks up the committed allowlist automatically.
    """
    if not paths:
        return None
    start = paths[0].resolve()
    if start.is_file():
        start = start.parent
    for candidate in [start, *start.parents]:
        allowlist = candidate / ALLOWLIST_FILENAME
        if allowlist.is_file():
            return allowlist
    return None
