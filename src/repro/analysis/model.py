"""The project model: a purely syntactic view of a Python source tree.

Rules do not import the code they check — importing would execute it, and a
linter that executes its subject cannot be run on broken or hostile trees.
Instead :class:`ProjectModel` parses every ``*.py`` file with :mod:`ast` and
exposes just enough structure for the contract rules:

* per-module import tables (alias → dotted target), so a rule can tell that
  ``np.random.default_rng`` really is ``numpy.random.default_rng`` and that a
  base class named ``FairnessOracle`` is ``repro.fairness.oracle.FairnessOracle``;
* a class index keyed by dotted qualname, with resolved base-class names, so
  subclass relations and method resolution (a depth-first linearisation over
  classes defined in the tree) work without importing anything;
* engine registrations: classes decorated with
  :func:`repro.core.engine.register_engine` and the registry name they claim.

Files that fail to parse are collected as :class:`ParseFailure` records — the
runner turns them into ``syntax-error`` findings instead of crashing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ParseFailure",
    "ProjectModel",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as a dotted string, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        if prefix is None:
            return None
        return f"{prefix}.{node.attr}"
    return None


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    decorators: tuple[str, ...]
    lineno: int

    @property
    def is_classmethod(self) -> bool:
        return any(dec.split(".")[-1] == "classmethod" for dec in self.decorators)

    @property
    def is_staticmethod(self) -> bool:
        return any(dec.split(".")[-1] == "staticmethod" for dec in self.decorators)

    @property
    def is_abstract(self) -> bool:
        return any(dec.split(".")[-1] == "abstractmethod" for dec in self.decorators)

    def accepts(self, n_args: int) -> bool:
        """True when the def can be called with ``n_args`` positional arguments.

        The implicit ``self``/``cls`` of instance methods and classmethods is
        excluded, ``*args`` absorbs any excess, and required keyword-only
        parameters make every positional call count incompatible.
        """
        args = self.node.args
        positional = list(args.posonlyargs) + list(args.args)
        if not self.is_staticmethod and positional:
            positional = positional[1:]
        required = max(len(positional) - len(args.defaults), 0)
        if n_args < required:
            return False
        if n_args > len(positional) and args.vararg is None:
            return False
        return all(default is not None for default in args.kw_defaults)


@dataclass
class ClassInfo:
    """One class definition, with bases resolved to dotted names."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: tuple[str, ...]
    methods: dict[str, FunctionInfo]
    lineno: int
    #: Registry name when the class is decorated with ``register_engine``.
    registered_engine: str | None = None


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    relpath: str
    module_name: str
    tree: ast.Module
    source: str
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def resolve(self, name: str | None) -> str | None:
        """Expand the first segment of a dotted name through the import table.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; a bare local class name resolves to its
        in-module qualname; unknown names pass through unchanged.
        """
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in self.imports:
            target = self.imports[head]
            return f"{target}.{rest}" if rest else target
        if head in self.classes and not rest:
            return self.classes[head].qualname
        return name


@dataclass(frozen=True)
class ParseFailure:
    """A file the parser rejected (reported as a ``syntax-error`` finding)."""

    path: Path
    relpath: str
    line: int
    message: str


def _module_name_for(path: Path) -> str:
    """Dotted import name of a file, derived from the ``__init__.py`` chain."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _collect_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    imports: dict[str, str] = {}
    package = module_name.rpartition(".")[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                anchor = anchor[: len(anchor) - (node.level - 1)] if node.level > 1 else anchor
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = target
    return imports


def _collect_classes(module: ModuleInfo) -> None:
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods: dict[str, FunctionInfo] = {}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                decorators = tuple(
                    name
                    for dec in item.decorator_list
                    if (name := dotted_name(dec)) is not None
                )
                methods[item.name] = FunctionInfo(
                    item.name, item, decorators, item.lineno
                )
        registered: str | None = None
        for dec in node.decorator_list:
            if isinstance(dec, ast.Call):
                dec_name = dotted_name(dec.func)
                if dec_name and dec_name.split(".")[-1] == "register_engine":
                    if dec.args and isinstance(dec.args[0], ast.Constant):
                        registered = str(dec.args[0].value)
                    else:
                        registered = "?"
        bases = tuple(
            resolved
            for base in node.bases
            if (name := dotted_name(base)) is not None
            and (resolved := module.resolve(name)) is not None
        )
        qualname = (
            f"{module.module_name}.{node.name}" if module.module_name else node.name
        )
        module.classes[node.name] = ClassInfo(
            name=node.name,
            qualname=qualname,
            module=module,
            node=node,
            base_names=bases,
            methods=methods,
            lineno=node.lineno,
            registered_engine=registered,
        )


class ProjectModel:
    """Parsed view of a source tree, shared by every rule in one run."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: list[ModuleInfo] = []
        self.failures: list[ParseFailure] = []
        self._class_index: dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, paths: list[Path], root: Path) -> "ProjectModel":
        """Parse every ``*.py`` file under ``paths`` (files or directories)."""
        model = cls(root)
        for path in _iter_source_files(paths):
            model._add_file(path)
        model._index_classes()
        return model

    def _add_file(self, path: Path) -> None:
        relpath = _relative_to(path, self.root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError) as error:
            line = getattr(error, "lineno", None) or 1
            self.failures.append(
                ParseFailure(path, relpath, int(line), str(error.args[0] if error.args else error))
            )
            return
        except OSError as error:
            self.failures.append(ParseFailure(path, relpath, 1, str(error)))
            return
        module = ModuleInfo(
            path=path,
            relpath=relpath,
            module_name=_module_name_for(path),
            tree=tree,
            source=source,
        )
        module.imports = _collect_imports(tree, module.module_name)
        _collect_classes(module)
        self.modules.append(module)

    def _index_classes(self) -> None:
        for module in self.modules:
            for info in module.classes.values():
                self._class_index[info.qualname] = info

    # ------------------------------------------------------------------ #
    # queries used by rules
    # ------------------------------------------------------------------ #
    def classes(self) -> Iterator[ClassInfo]:
        for module in self.modules:
            yield from module.classes.values()

    def resolve_class(self, qualname: str | None) -> ClassInfo | None:
        if qualname is None:
            return None
        return self._class_index.get(qualname)

    def is_subclass(self, info: ClassInfo, target_qualname: str) -> bool:
        """True when ``info`` transitively derives from ``target_qualname``.

        The target class itself does not count as its own subclass.  Bases
        that cannot be resolved to a class in the tree still match when their
        resolved dotted name equals the target.
        """
        seen: set[str] = set()
        stack = list(info.base_names)
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            if base == target_qualname:
                return True
            parent = self._class_index.get(base)
            if parent is not None:
                stack.extend(parent.base_names)
        return False

    def resolved_methods(self, info: ClassInfo) -> dict[str, tuple[FunctionInfo, ClassInfo]]:
        """Methods visible on ``info``: own defs first, then a depth-first
        left-to-right walk of the bases defined in the tree (closest wins)."""
        resolved: dict[str, tuple[FunctionInfo, ClassInfo]] = {}
        seen: set[str] = set()

        def visit(current: ClassInfo) -> None:
            if current.qualname in seen:
                return
            seen.add(current.qualname)
            for name, function in current.methods.items():
                resolved.setdefault(name, (function, current))
            for base in current.base_names:
                parent = self._class_index.get(base)
                if parent is not None:
                    visit(parent)

        visit(info)
        return resolved


def _iter_source_files(paths: list[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def _relative_to(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
