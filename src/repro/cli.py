"""Command-line front end for the fair-ranking designer.

The CLI mirrors the interactive loop the paper envisions: load (or generate) a
dataset, state a proportionality constraint, propose weights, and get back
either a confirmation or the closest fair alternative.

Examples
--------
Check a weight vector on a synthetic COMPAS-like dataset::

    repro-fair-ranking suggest --dataset compas --n 500 --d 3 \\
        --attribute race --group African-American --k 0.3 --max-share 0.6 \\
        --weights 0.5,0.3,0.2

Run one of the paper's experiments::

    repro-fair-ranking experiment fig16
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.engine import ApproxConfig, TwoDConfig
from repro.core.explain import explain_repair, format_explanation
from repro.core.system import FairRankingDesigner
from repro.data.dataset import Dataset
from repro.data.synthetic import (
    COMPAS_SCORING_ATTRIBUTES,
    make_compas_like,
    make_dot_like,
)
from repro.experiments import (
    experiment_fig16_validation,
    experiment_fig17_2d_preprocessing,
    experiment_online_2d,
    experiment_online_md,
    experiment_sampling_dot,
    experiment_sec62_layouts,
    format_sweep,
    generate_figures,
)
from repro.exceptions import ConfigurationError, IndexIntegrityError, ReproError
from repro.fairness.auditing import audit_function, format_audit
from repro.fairness.proportional import ProportionalOracle
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-fair-ranking",
        description="Design fair linear ranking schemes (Asudeh et al., SIGMOD 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    suggest = subparsers.add_parser("suggest", help="check weights and suggest a fair alternative")
    suggest.add_argument("--dataset", choices=["compas", "dot"], default="compas")
    suggest.add_argument("--csv", help="load the dataset from a CSV instead of generating it")
    suggest.add_argument("--n", type=int, default=500, help="synthetic dataset size")
    suggest.add_argument("--d", type=int, default=3, help="number of scoring attributes")
    suggest.add_argument("--seed", type=int, default=0)
    suggest.add_argument("--attribute", required=True, help="type attribute of the constraint")
    suggest.add_argument("--group", required=True, help="protected group value")
    suggest.add_argument("--k", type=float, default=0.3, help="top-k (count or fraction)")
    suggest.add_argument("--max-share", type=float, help="maximum share of the group in the top-k")
    suggest.add_argument("--min-share", type=float, help="minimum share of the group in the top-k")
    suggest.add_argument("--n-cells", type=int, default=1024)
    suggest.add_argument("--max-hyperplanes", type=int, default=None)
    suggest.add_argument(
        "--weights", help="comma-separated non-negative weights, e.g. 0.5,0.3,0.2"
    )
    suggest.add_argument(
        "--weights-file",
        help="file with one comma-separated weight vector per line, "
        "answered as one batch via suggest_many",
    )
    suggest.add_argument(
        "--save-index",
        metavar="PATH",
        help="persist the preprocessed engine (config + index + sample) to PATH",
    )
    suggest.add_argument(
        "--load-index",
        metavar="PATH",
        help="answer from an engine file written by --save-index instead of preprocessing",
    )
    suggest.add_argument(
        "--explain",
        action="store_true",
        help="also explain what the suggested repair changes about the top-k",
    )
    suggest.add_argument(
        "--record-workload",
        metavar="PATH",
        help="serve through the instrumented engine and write every answered "
        "query to PATH as a replayable repro.obs.workload/v1 JSONL log",
    )
    suggest.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for preprocessing and --weights-file batches "
        "(answers are bit-identical to --workers 1)",
    )

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument(
        "name",
        choices=["fig16", "fig17", "layouts", "online2d", "onlinemd", "sampling"],
        help="experiment identifier (see DESIGN.md)",
    )

    audit = subparsers.add_parser(
        "audit", help="compute every fairness measure for a weight vector on a dataset"
    )
    audit.add_argument("--dataset", choices=["compas", "dot"], default="compas")
    audit.add_argument("--csv", help="load the dataset from a CSV instead of generating it")
    audit.add_argument("--n", type=int, default=500, help="synthetic dataset size")
    audit.add_argument("--d", type=int, default=3, help="number of scoring attributes")
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--attribute", required=True, help="type attribute to audit")
    audit.add_argument("--group", required=True, help="protected group value")
    audit.add_argument("--k", type=float, default=0.3, help="top-k (count or fraction)")
    audit.add_argument(
        "--weights", required=True, help="comma-separated non-negative weights, e.g. 0.5,0.3,0.2"
    )

    maintain = subparsers.add_parser(
        "maintain",
        help="apply inserts/updates/deletes to a persisted engine's dataset "
        "and maintain its index through the engine seam",
    )
    maintain.add_argument(
        "--load-index",
        required=True,
        metavar="PATH",
        help="engine file written by 'suggest --save-index' (journaled or plain)",
    )
    maintain.add_argument("--attribute", required=True, help="type attribute of the constraint")
    maintain.add_argument("--group", required=True, help="protected group value")
    maintain.add_argument("--k", type=float, default=0.3, help="top-k (count or fraction)")
    maintain.add_argument("--max-share", type=float, help="maximum share of the group in the top-k")
    maintain.add_argument("--min-share", type=float, help="minimum share of the group in the top-k")
    maintain.add_argument(
        "--insert",
        action="append",
        default=[],
        metavar="ROW",
        help="scoring row to append, e.g. '0.5,0.3,0.2' or "
        "'0.5,0.3,0.2;race=African-American' when the dataset has type "
        "attributes (repeatable)",
    )
    maintain.add_argument(
        "--update",
        action="append",
        default=[],
        metavar="INDEX:ROW",
        help="replace one item's scoring row, e.g. '7:0.5,0.3,0.2' (repeatable)",
    )
    maintain.add_argument(
        "--delete",
        metavar="INDICES",
        help="comma-separated item indices to remove, e.g. '3,7'",
    )
    maintain.add_argument(
        "--save-index",
        metavar="PATH",
        help="persist the maintained engine to PATH (defaults to not saving)",
    )
    maintain.add_argument(
        "--journaled",
        action="store_true",
        help="save as base snapshot + delta journal instead of a flat payload",
    )

    figures = subparsers.add_parser(
        "figures", help="regenerate figure data files (CSV + ASCII chart) at reduced scale"
    )
    figures.add_argument("--output", default="figures", help="output directory")
    figures.add_argument(
        "--names",
        help="comma-separated figure names (default: all); see repro.experiments.FIGURE_GENERATORS",
    )
    return parser


def _load_dataset(args: argparse.Namespace) -> Dataset:
    if args.csv:
        return Dataset.from_csv(args.csv)
    if args.dataset == "compas":
        dataset = make_compas_like(n=args.n, seed=args.seed)
        return dataset.project(list(COMPAS_SCORING_ATTRIBUTES[: args.d]))
    return make_dot_like(n=args.n, seed=args.seed)


def _format_result(result, prefix: str = "") -> None:
    if result.satisfactory:
        print(f"{prefix}The proposed weights already satisfy the fairness constraint.")
    else:
        suggested = ", ".join(f"{value:.4f}" for value in result.function.weights)
        print(f"{prefix}The proposed weights violate the fairness constraint.")
        print(f"{prefix}Closest satisfactory weights: [{suggested}]")
        print(
            f"{prefix}Angular distance: {result.angular_distance:.4f} rad "
            f"(cosine similarity {result.cosine_similarity():.4f})"
        )


def _run_suggest(args: argparse.Namespace) -> int:
    if args.max_share is None and args.min_share is None:
        print("error: provide --max-share and/or --min-share", file=sys.stderr)
        return 2
    if args.weights is None and args.weights_file is None:
        print("error: provide --weights and/or --weights-file", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.workers > 1 and args.record_workload:
        # The workload recorder is an in-process tape; queries answered in
        # worker processes would never reach it. Refuse rather than silently
        # record a partial workload.
        print(
            "error: --record-workload serves in-process; drop it or use --workers 1",
            file=sys.stderr,
        )
        return 2
    k = args.k if args.k < 1 else int(args.k)
    oracle = ProportionalOracle(
        args.attribute,
        args.group,
        k=k,
        min_fraction=args.min_share,
        max_fraction=args.max_share,
    )
    if args.load_index:
        # Serve from a persisted engine: no dataset load, no preprocessing.
        # Every load failure — missing file, corruption, a wrong-kind file —
        # becomes an actionable message and a nonzero exit, never a traceback.
        try:
            designer = FairRankingDesigner.load(args.load_index, oracle)
        except IndexIntegrityError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except FileNotFoundError:
            print(
                f"error: engine file {args.load_index!r} does not exist; "
                "create one with --save-index",
                file=sys.stderr,
            )
            return 2
        except IsADirectoryError:
            print(
                f"error: {args.load_index!r} is a directory, not an engine file",
                file=sys.stderr,
            )
            return 2
        except ReproError as error:
            print(f"error: cannot load {args.load_index!r}: {error}", file=sys.stderr)
            return 2
        if args.record_workload:
            # Re-wrap the loaded engine: instrumented engines are not
            # persistable, so recording is always layered on after loading.
            from repro.obs.instrument import InstrumentedEngine

            designer = FairRankingDesigner._from_engine(
                InstrumentedEngine.from_engine(designer.engine, record_workload=True)
            )
        dataset = designer.dataset
    else:
        dataset = _load_dataset(args)
        if dataset.n_attributes == 2:
            config = TwoDConfig(preprocess_workers=args.workers)
        else:
            config = ApproxConfig(
                n_cells=args.n_cells,
                max_hyperplanes=args.max_hyperplanes,
                preprocess_workers=args.workers,
            )
        if args.record_workload:
            from repro.obs.instrument import InstrumentedConfig

            config = InstrumentedConfig(inner=config, record_workload=True)
        designer = FairRankingDesigner(dataset, oracle, config).preprocess()
    if args.save_index:
        if args.record_workload:
            # The instrumented wrapper itself is not persistable; persist the
            # inner engine, which answers bit-identically.
            from repro.io.index_store import save_engine

            save_engine(designer.engine.inner, args.save_index)
        else:
            designer.save(args.save_index)
        print(f"engine saved to {args.save_index}")
    if args.weights is not None:
        weights = [float(value) for value in args.weights.split(",")]
        result = designer.suggest(weights)
        _format_result(result)
        if getattr(args, "explain", False):
            print()
            print(format_explanation(explain_repair(dataset, result, k=k)))
    if args.weights_file is not None:
        with open(args.weights_file, "r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle]
        batch = [
            [float(value) for value in line.split(",")] for line in lines if line
        ]
        if not batch:
            print("error: the weights file contains no weight vectors", file=sys.stderr)
            return 2
        if args.workers > 1:
            # Shard the batch across worker processes; single queries and
            # everything else still run in-process on the original engine.
            from repro.parallel.pool import PoolEngine

            with PoolEngine.from_engine(designer.engine, n_workers=args.workers) as pool:
                results = FairRankingDesigner._from_engine(pool).suggest_many(batch)
        else:
            results = designer.suggest_many(batch)
        for weights, result in zip(batch, results):
            formatted = ", ".join(f"{value:g}" for value in weights)
            if result.satisfactory:
                print(f"[{formatted}] -> already fair")
            else:
                suggested = ", ".join(f"{value:.4f}" for value in result.function.weights)
                print(
                    f"[{formatted}] -> [{suggested}] "
                    f"(distance {result.angular_distance:.4f} rad)"
                )
            if getattr(args, "explain", False):
                print(format_explanation(explain_repair(dataset, result, k=k)))
                print()
    if args.record_workload:
        workload = designer.engine.workload
        path = workload.save(args.record_workload)
        print(f"workload recorded to {path} ({workload.n_queries} queries)")
    return 0


def _parse_insert(spec: str) -> tuple[tuple[float, ...], dict]:
    """Parse one ``--insert`` value into (scores, {type attribute: value})."""
    parts = spec.split(";")
    row = tuple(float(value) for value in parts[0].split(","))
    types: dict = {}
    for assignment in parts[1:]:
        if "=" not in assignment:
            raise ConfigurationError(
                f"type assignment {assignment!r} must look like attribute=value"
            )
        key, _, value = assignment.partition("=")
        types[key.strip()] = value.strip()
    return row, types


def _parse_delta(args: argparse.Namespace):
    """Build a DatasetDelta from the maintain subcommand's arguments."""
    from repro.core.maintenance import DatasetDelta

    inserts = []
    per_item_types: list[dict] = []
    for spec in args.insert:
        row, types = _parse_insert(spec)
        inserts.append(row)
        per_item_types.append(types)
    attributes = sorted({key for types in per_item_types for key in types})
    insert_types = {
        attribute: tuple(types.get(attribute) for types in per_item_types)
        for attribute in attributes
    }
    updates = []
    for spec in args.update:
        index_text, _, row_text = spec.partition(":")
        updates.append(
            (int(index_text), tuple(float(value) for value in row_text.split(",")))
        )
    deletes = (
        tuple(int(value) for value in args.delete.split(",")) if args.delete else ()
    )
    return DatasetDelta(
        inserts=tuple(inserts),
        insert_types=insert_types,
        deletes=deletes,
        updates=tuple(updates),
    )


def _run_maintain(args: argparse.Namespace) -> int:
    if args.max_share is None and args.min_share is None:
        print("error: provide --max-share and/or --min-share", file=sys.stderr)
        return 2
    k = args.k if args.k < 1 else int(args.k)
    oracle = ProportionalOracle(
        args.attribute,
        args.group,
        k=k,
        min_fraction=args.min_share,
        max_fraction=args.max_share,
    )
    try:
        delta = _parse_delta(args)
    except ValueError as error:
        print(f"error: malformed delta argument: {error}", file=sys.stderr)
        return 2
    try:
        designer = FairRankingDesigner.load(args.load_index, oracle)
    except IndexIntegrityError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError:
        print(
            f"error: engine file {args.load_index!r} does not exist; "
            "create one with 'suggest --save-index'",
            file=sys.stderr,
        )
        return 2
    except IsADirectoryError:
        print(
            f"error: {args.load_index!r} is a directory, not an engine file",
            file=sys.stderr,
        )
        return 2
    except ReproError as error:
        print(f"error: cannot load {args.load_index!r}: {error}", file=sys.stderr)
        return 2
    try:
        report = designer.apply_delta(delta)
    except ReproError as error:
        print(f"error: cannot apply the delta: {error}", file=sys.stderr)
        return 2
    for key, value in report.as_dict().items():
        print(f"{key}: {value}")
    if args.save_index:
        try:
            designer.save(args.save_index, journaled=args.journaled)
        except ReproError as error:
            print(f"error: cannot save the engine: {error}", file=sys.stderr)
            return 2
        print(f"engine saved to {args.save_index}")
    return 0


def _run_experiment(name: str) -> int:
    if name == "fig16":
        result = experiment_fig16_validation()
        print(f"queries: {result.n_queries}, already satisfactory: {result.n_already_satisfactory}")
        for threshold, count in result.cumulative_counts().items():
            print(f"  suggestions with distance < {threshold}: {count}")
        print(f"  max suggestion distance: {result.max_distance:.4f}")
    elif name == "fig17":
        print(format_sweep(experiment_fig17_2d_preprocessing()))
    elif name == "layouts":
        for layout in experiment_sec62_layouts():
            print(
                f"{layout.name}: regions={layout.n_regions}, "
                f"satisfactory angle={layout.total_satisfactory_angle:.3f}, "
                f"max repair={layout.max_repair_distance:.3f}"
            )
    elif name == "online2d":
        timing = experiment_online_2d(n_items=2000)
        print(
            f"2DONLINE: {timing.mean_query_seconds * 1e6:.1f} us/query vs "
            f"{timing.mean_ordering_seconds * 1e3:.2f} ms to sort (x{timing.speedup:.0f})"
        )
    elif name == "onlinemd":
        for timing in experiment_online_md(n_items=300):
            print(
                f"{timing.label}: {timing.mean_query_seconds * 1e6:.1f} us/query vs "
                f"{timing.mean_ordering_seconds * 1e3:.2f} ms to sort (x{timing.speedup:.0f})"
            )
    elif name == "sampling":
        result = experiment_sampling_dot(full_size=50_000)
        print(
            f"sample={result.sample_size} of {result.full_size}; preprocessing "
            f"{result.preprocess_seconds:.1f}s; {result.n_satisfactory_on_full}/"
            f"{result.n_functions_checked} assigned functions satisfactory on the full data"
        )
    return 0


def _run_audit(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    weights = [float(value) for value in args.weights.split(",")]
    k = args.k if args.k < 1 else int(args.k)
    function = LinearScoringFunction(tuple(weights))
    audit = audit_function(dataset, function, args.attribute, args.group, k=k)
    print(format_audit(audit, title=f"fairness audit of weights [{args.weights}]"))
    return 0


def _run_figures(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.names.split(",")] if args.names else None
    written = generate_figures(args.output, names=names)
    for name, (csv_path, txt_path) in written.items():
        print(f"{name}: {csv_path} {txt_path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "suggest":
        return _run_suggest(args)
    if args.command == "audit":
        return _run_audit(args)
    if args.command == "maintain":
        return _run_maintain(args)
    if args.command == "figures":
        return _run_figures(args)
    return _run_experiment(args.name)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
