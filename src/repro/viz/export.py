"""CSV export of experiment series and combined figure artifacts.

Each paper figure reproduced by the benchmark suite boils down to one or more
(x, y) series.  :func:`sweep_to_csv` and :func:`series_to_csv` write those
series as CSV for external plotting, and :func:`write_figure_artifacts` writes
the standard pair of files (``<name>.csv`` with the data and ``<name>.txt``
with an ASCII rendering) that the CLI's ``figures`` command produces per
experiment.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.viz.ascii_charts import line_chart

if TYPE_CHECKING:  # pragma: no cover - import for type annotations only
    from repro.experiments.harness import SweepResult

__all__ = ["rows_to_csv", "series_to_csv", "sweep_to_csv", "write_figure_artifacts"]


def rows_to_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write a header and rows to a CSV file."""
    headers = list(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row of length {len(row)} does not match {len(headers)} headers"
            )
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))


def series_to_csv(
    path: str | Path,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
) -> None:
    """Write an x column and one column per named series to a CSV file."""
    if not series:
        raise ConfigurationError("series_to_csv needs at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} values for {len(xs)} x values"
            )
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [series[name][index] for name in series])
    rows_to_csv(path, headers, rows)


def sweep_to_csv(path: str | Path, sweep: SweepResult) -> None:
    """Write a :class:`~repro.experiments.harness.SweepResult` to a CSV file."""
    names = list(sweep.series)
    if not names:
        raise ConfigurationError("cannot export an empty sweep")
    xs = sweep.series[names[0]].xs
    series = {name: sweep.series[name].ys for name in names}
    series_to_csv(path, xs, series, x_label=sweep.parameter)


def write_figure_artifacts(
    sweep: SweepResult,
    directory: str | Path,
    name: str,
    title: str = "",
    log_y: bool = False,
) -> tuple[Path, Path]:
    """Write the data (CSV) and an ASCII rendering (TXT) of one figure.

    Returns the two paths written: ``<directory>/<name>.csv`` and
    ``<directory>/<name>.txt``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{name}.csv"
    txt_path = directory / f"{name}.txt"
    sweep_to_csv(csv_path, sweep)

    names = list(sweep.series)
    xs = sweep.series[names[0]].xs
    series = {series_name: sweep.series[series_name].ys for series_name in names}
    chart = line_chart(
        xs,
        series,
        title=title or name,
        x_label=sweep.parameter,
        y_label=", ".join(names) if len(names) <= 2 else "value",
        log_y=log_y,
    )
    txt_path.write_text(chart + "\n", encoding="utf-8")
    return csv_path, txt_path
