"""Plain-text visualisation and figure-data export.

The paper presents its evaluation as figures.  This reproduction has no
plotting dependency, so the benchmarks and the CLI render the same information
in two forms instead:

* ASCII charts (:mod:`repro.viz.ascii_charts`) — line charts, bar charts and
  histograms drawn with characters, good enough to see the *shape* of a curve
  in a terminal or a text report; and
* CSV export (:mod:`repro.viz.export`) — the underlying series written to
  disk, ready to be re-plotted with any external tool.
"""

from repro.viz.ascii_charts import bar_chart, histogram_chart, line_chart, sparkline
from repro.viz.export import (
    rows_to_csv,
    series_to_csv,
    sweep_to_csv,
    write_figure_artifacts,
)

__all__ = [
    "line_chart",
    "bar_chart",
    "histogram_chart",
    "sparkline",
    "rows_to_csv",
    "series_to_csv",
    "sweep_to_csv",
    "write_figure_artifacts",
]
