"""ASCII chart rendering for experiment series.

Every function returns a multi-line string; nothing is printed.  The charts
are intentionally simple — the goal is to make the *shape* of a measured curve
(growth with ``n``, a dominating step, a skewed histogram) visible in terminal
output and text reports without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["line_chart", "bar_chart", "histogram_chart", "sparkline"]

#: Marker characters assigned to series, in order.
_MARKERS = "*o+x#@%&"

#: Eight-level block characters used by :func:`sparkline`.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.001:
        return f"{value:.2e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def _scale(values: np.ndarray, log: bool) -> np.ndarray:
    if not log:
        return values
    positive = values[values > 0]
    floor = float(positive.min()) / 10.0 if positive.size else 1e-12
    return np.log10(np.maximum(values, floor))


def line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 15,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render one or more series sharing an x axis as an ASCII line chart.

    Parameters
    ----------
    xs:
        Shared x values (need not be evenly spaced).
    series:
        Mapping from series name to y values (same length as ``xs``).
    width, height:
        Plot area size in characters.
    title, x_label, y_label:
        Labels; the y label is printed above the axis, the x label below.
    log_y:
        Plot ``log10(y)`` instead of ``y`` (non-positive values are clamped).
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart area must be at least 10x4 characters")
    xs_array = np.asarray(list(xs), dtype=float)
    if xs_array.size < 2:
        raise ConfigurationError("line_chart needs at least two x values")
    for name, ys in series.items():
        if len(ys) != xs_array.size:
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} values for {xs_array.size} x values"
            )

    all_y = np.concatenate([np.asarray(list(ys), dtype=float) for ys in series.values()])
    scaled_all = _scale(all_y, log_y)
    y_min, y_max = float(scaled_all.min()), float(scaled_all.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs_array.min()), float(xs_array.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        scaled = _scale(np.asarray(list(ys), dtype=float), log_y)
        for x, y in zip(xs_array, scaled):
            column = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_value = 10**y_max if log_y else y_max
    bottom_value = 10**y_min if log_y else y_min
    axis_label = f"{y_label}{' (log)' if log_y else ''}"
    lines.append(f"{axis_label}  [{_format_number(bottom_value)} .. {_format_number(top_value)}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {_format_number(x_min)} .. {_format_number(x_max)}"
    )
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {name}" for index, name in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Render labelled values as a horizontal bar chart."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must have the same length")
    if not labels:
        raise ConfigurationError("bar_chart needs at least one bar")
    if width < 5:
        raise ConfigurationError("bar width must be at least 5 characters")
    values_array = np.asarray(list(values), dtype=float)
    if np.any(values_array < 0):
        raise ConfigurationError("bar_chart only renders non-negative values")
    maximum = float(values_array.max())
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values_array):
        length = 0 if maximum == 0 else int(round(value / maximum * width))
        bar = "#" * length
        lines.append(f"{str(label).rjust(label_width)} | {bar} {_format_number(float(value))}")
    return "\n".join(lines)


def histogram_chart(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: str = "",
) -> str:
    """Bin values and render the counts as a horizontal bar chart."""
    if bins < 1:
        raise ConfigurationError("histogram needs at least one bin")
    values_array = np.asarray(list(values), dtype=float)
    if values_array.size == 0:
        raise ConfigurationError("histogram needs at least one value")
    counts, edges = np.histogram(values_array, bins=bins)
    labels = [
        f"[{_format_number(float(low))}, {_format_number(float(high))})"
        for low, high in zip(edges[:-1], edges[1:])
    ]
    return bar_chart(labels, counts.tolist(), width=width, title=title)


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of values as a one-line block-character sparkline."""
    values_array = np.asarray(list(values), dtype=float)
    if values_array.size == 0:
        raise ConfigurationError("sparkline needs at least one value")
    low, high = float(values_array.min()), float(values_array.max())
    if math.isclose(high, low):
        return _SPARK_LEVELS[4] * values_array.size
    levels = np.round(
        (values_array - low) / (high - low) * (len(_SPARK_LEVELS) - 2)
    ).astype(int) + 1
    return "".join(_SPARK_LEVELS[level] for level in levels)
