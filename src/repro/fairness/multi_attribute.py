"""Multi-attribute proportionality constraints (the paper's FM2).

FM2 (§6.1) generalises FM1 to several, possibly overlapping, type attributes:
for COMPAS the paper bounds males, African-Americans and the youngest age
bucket simultaneously at the top 30 %.  The model is expressed here as a
conjunction of per-group bounds, with convenience constructors for the two
phrasings the paper uses (absolute counts, and "at most 10 % above the
dataset share").
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.batched import as_batched, evaluate_many
from repro.fairness.composite import AndOracle
from repro.fairness.oracle import FairnessOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle

__all__ = ["MultiAttributeOracle"]


class MultiAttributeOracle(FairnessOracle):
    """Conjunction of group bounds over several type attributes (FM2).

    Parameters
    ----------
    constraints:
        Sequence of ``(attribute, group, max_count)`` triples bounding the
        number of members of each group in the top-``k``, or ready-made
        :class:`FairnessOracle` children.
    k:
        Top-``k`` size shared by the count-based constraints (absolute count or
        fraction of the dataset).
    """

    def __init__(
        self,
        constraints: Sequence,
        k: int | float | None = None,
    ) -> None:
        children: list[FairnessOracle] = []
        for constraint in constraints:
            if isinstance(constraint, FairnessOracle):
                children.append(constraint)
                continue
            try:
                attribute, group, max_count = constraint
            except (TypeError, ValueError) as exc:
                raise OracleError(
                    "constraints must be FairnessOracle instances or "
                    "(attribute, group, max_count) triples"
                ) from exc
            if k is None:
                raise OracleError("k is required when passing (attribute, group, max_count) triples")
            children.append(
                TopKGroupBoundOracle(attribute, group, k, max_count=int(max_count))
            )
        if not children:
            raise OracleError("MultiAttributeOracle needs at least one constraint")
        self._inner = AndOracle(children)
        self.k = k

    @classmethod
    def from_dataset_shares(
        cls,
        dataset: Dataset,
        groups: Mapping[str, Sequence],
        k: int | float,
        slack: float = 0.10,
    ) -> "MultiAttributeOracle":
        """Bound every listed group to at most its dataset share plus ``slack``.

        This is the paper's phrasing for FM2: "a ranking is considered
        satisfactory if the proportion of members of a particular demographic
        group is no more than 10 % higher than its proportion in D".

        Parameters
        ----------
        dataset:
            The dataset whose composition anchors the bounds.
        groups:
            Mapping from type attribute to the groups of that attribute to
            bound, e.g. ``{"sex": ["male"], "race": ["African-American"]}``.
        k:
            Top-``k`` size (count or fraction).
        slack:
            Allowed excess over the dataset share (default 10 %).
        """
        children = []
        for attribute, group_list in groups.items():
            for group in group_list:
                children.append(
                    ProportionalOracle.at_most_share_plus_slack(
                        dataset, attribute, group, k, slack
                    )
                )
        return cls(children, k=k)

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return self._inner.is_satisfactory(ordering, dataset)

    # batched protocol: FM2 is a conjunction, so delegate to it wholesale.
    def batched_capable(self) -> bool:
        return as_batched(self._inner) is not None

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Verdict vector of the underlying conjunction (≡ a loop of ``is_satisfactory``)."""
        return evaluate_many(self._inner, orderings, dataset)

    # incremental protocol: FM2 is a conjunction, so delegate to it wholesale.
    def incremental_capable(self) -> bool:
        return self._inner.incremental_capable()

    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        self._inner.begin(ordering, dataset)

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._inner.apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        return self._inner.verdict()

    def describe(self) -> str:
        return f"FM2[{self._inner.describe()}]"

    @property
    def children(self) -> list[FairnessOracle]:
        """The individual per-group constraints."""
        return list(self._inner.children)
