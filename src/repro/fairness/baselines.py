"""Post-processing baselines from the related work (§7).

The paper positions its *design-time* approach against prior work that
mitigates unfairness *after* scoring, by re-ordering the output:

* **FA*IR** (Zehlike et al., CIKM 2017) greedily interleaves protected-group
  members so that every prefix of the top-``k`` contains at least a minimum
  number of them; and
* **constrained top-``k`` selection** in the spirit of Celis et al. (2017),
  which picks the highest-scoring feasible set subject to per-group upper
  bounds and returns it in score order.

These re-rankers are *baselines*: they change the output ordering rather than
the scoring function, so the resulting ranking is no longer consistent with
any linear function over the attributes.  Examples and benchmarks use them to
contrast the two philosophies (output intervention vs. weight design).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import NoSatisfactoryFunctionError, OracleError
from repro.ranking.topk import resolve_k

__all__ = ["greedy_fair_rerank", "constrained_topk"]


def greedy_fair_rerank(
    dataset: Dataset,
    ordering: np.ndarray,
    attribute: str,
    protected,
    k: int | float,
    min_protected_fraction: float,
) -> np.ndarray:
    """FA*IR-style greedy re-ranking of the top-``k``.

    Walks the ranking positions in order; at each position the constraint
    "at least ``ceil(min_protected_fraction * position)`` protected members so
    far" must hold, otherwise the best not-yet-used protected candidate is
    promoted to that position.  The remainder of the list (beyond ``k``) is
    appended unchanged.

    Returns
    -------
    numpy.ndarray
        A full ordering (permutation of all items) whose top-``k`` satisfies
        the prefix constraint.

    Raises
    ------
    NoSatisfactoryFunctionError
        If there are not enough protected candidates to meet the constraint.
    """
    if not 0.0 <= min_protected_fraction <= 1.0:
        raise OracleError("min_protected_fraction must lie in [0, 1]")
    ordering = np.asarray(ordering, dtype=int)
    k_count = resolve_k(dataset, k)
    column = dataset.type_column(attribute)
    is_protected = column == protected

    protected_queue = [item for item in ordering if is_protected[item]]
    other_queue = [item for item in ordering if not is_protected[item]]
    if len(protected_queue) < int(np.ceil(min_protected_fraction * k_count)):
        raise NoSatisfactoryFunctionError(
            "not enough protected candidates to satisfy the prefix constraint"
        )

    reranked: list[int] = []
    protected_so_far = 0
    protected_position = 0
    other_position = 0
    for position in range(1, k_count + 1):
        required = int(np.ceil(min_protected_fraction * position - 1e-9))
        must_take_protected = protected_so_far < required
        take_protected: bool
        if must_take_protected:
            take_protected = True
        elif other_position >= len(other_queue):
            take_protected = True
        elif protected_position >= len(protected_queue):
            take_protected = False
        else:
            # Both queues available and no constraint pressure: keep score order.
            next_protected = protected_queue[protected_position]
            next_other = other_queue[other_position]
            take_protected = list(ordering).index(next_protected) < list(ordering).index(
                next_other
            )
        if take_protected:
            reranked.append(protected_queue[protected_position])
            protected_position += 1
            protected_so_far += 1
        else:
            reranked.append(other_queue[other_position])
            other_position += 1
    used = set(reranked)
    tail = [item for item in ordering if item not in used]
    return np.asarray(reranked + tail, dtype=int)


def constrained_topk(
    dataset: Dataset,
    scores: np.ndarray,
    k: int | float,
    max_counts: Mapping[tuple[str, object], int],
) -> np.ndarray:
    """Celis-style constrained top-``k`` selection with per-group upper bounds.

    Greedily scans items in decreasing score order and admits an item unless
    admitting it would exceed the upper bound of any ``(attribute, group)`` it
    belongs to.  With upper-bound-only constraints the greedy scan maximises
    total score among feasible sets of size ``k``.

    Parameters
    ----------
    dataset:
        The dataset the scores refer to.
    scores:
        Per-item scores (any real values).
    k:
        Size of the selection (count or fraction).
    max_counts:
        Mapping ``(attribute, group) -> maximum count`` in the selection.

    Returns
    -------
    numpy.ndarray
        Indices of the selected items, in decreasing score order.

    Raises
    ------
    NoSatisfactoryFunctionError
        If fewer than ``k`` items can be admitted under the bounds.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (dataset.n_items,):
        raise OracleError("scores must have one entry per dataset item")
    k_count = resolve_k(dataset, k)
    for (attribute, _group), bound in max_counts.items():
        if bound < 0:
            raise OracleError("group bounds must be non-negative")
        dataset.type_column(attribute)  # validates the attribute exists
    admitted: list[int] = []
    used: dict[tuple[str, object], int] = defaultdict(int)
    for item in np.argsort(-scores, kind="stable"):
        item = int(item)
        memberships = [
            (attribute, group)
            for (attribute, group) in max_counts
            if dataset.type_column(attribute)[item] == group
        ]
        if any(used[key] + 1 > max_counts[key] for key in memberships):
            continue
        admitted.append(item)
        for key in memberships:
            used[key] += 1
        if len(admitted) == k_count:
            return np.asarray(admitted, dtype=int)
    raise NoSatisfactoryFunctionError(
        f"only {len(admitted)} of {k_count} slots could be filled under the group bounds"
    )
