"""Fairness layer: oracles (FM1, FM2, prefix, composites), graded measures, audits and baselines."""

from repro.fairness.batched import (
    BatchedOracle,
    as_batched,
    evaluate_functions_many,
    evaluate_many,
)
from repro.fairness.auditing import (
    RankingAudit,
    audit_function,
    audit_ordering,
    compare_audits,
    format_audit,
)
from repro.fairness.baselines import constrained_topk, greedy_fair_rerank
from repro.fairness.composite import AndOracle, NotOracle, OrOracle
from repro.fairness.measures import (
    exposure_ratio,
    group_share_at_k,
    rkl_measure,
    rnd_measure,
    selection_rate_ratio,
)
from repro.fairness.incremental import (
    IncrementalOracle,
    PrefixGroupCounter,
    TopKGroupCounter,
    as_incremental,
)
from repro.fairness.multi_attribute import MultiAttributeOracle
from repro.fairness.oracle import CallableOracle, CountingOracle, FairnessOracle
from repro.fairness.pairwise import (
    PairwiseParityOracle,
    mean_rank_gap,
    median_rank_gap,
    pairwise_parity_gap,
    protected_above_rate,
    rank_biserial_correlation,
)
from repro.fairness.prefix import MinimumAtEveryPrefixOracle, PrefixProportionalOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle

__all__ = [
    "FairnessOracle",
    "CallableOracle",
    "CountingOracle",
    "IncrementalOracle",
    "as_incremental",
    "TopKGroupCounter",
    "PrefixGroupCounter",
    "BatchedOracle",
    "as_batched",
    "evaluate_many",
    "evaluate_functions_many",
    "PairwiseParityOracle",
    "ProportionalOracle",
    "TopKGroupBoundOracle",
    "MultiAttributeOracle",
    "PrefixProportionalOracle",
    "MinimumAtEveryPrefixOracle",
    "AndOracle",
    "OrOracle",
    "NotOracle",
    "group_share_at_k",
    "selection_rate_ratio",
    "rnd_measure",
    "rkl_measure",
    "exposure_ratio",
    "protected_above_rate",
    "pairwise_parity_gap",
    "rank_biserial_correlation",
    "mean_rank_gap",
    "median_rank_gap",
    "RankingAudit",
    "audit_ordering",
    "audit_function",
    "compare_audits",
    "format_audit",
    "greedy_fair_rerank",
    "constrained_topk",
]
