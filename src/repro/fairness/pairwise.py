"""Pairwise (rank-position) fairness measures over a full ordering.

The measures in :mod:`repro.fairness.measures` look at *prefixes* of the
ranking (who makes the top-``k``); the measures here look at the ranking as a
whole through the lens of *pairs*: across all (protected, non-protected) item
pairs, how often does the protected item come out on top?  These are the
ranked analogues of pairwise statistical parity and are useful when the
fairness concern is about systematic placement rather than a single cut-off.

All functions take an ordering (item indices, best first), the dataset, the
type attribute and the protected group value, mirroring the signature style of
the prefix-based measures.  :class:`PairwiseParityOracle` turns the parity-gap
measure into a fairness oracle so the whole-ordering criterion can drive the
region/cell pipelines like any prefix constraint.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.batched import ordering_matrix
from repro.fairness.oracle import FairnessOracle

__all__ = [
    "protected_above_rate",
    "pairwise_parity_gap",
    "rank_biserial_correlation",
    "mean_rank_gap",
    "median_rank_gap",
    "PairwiseParityOracle",
]


def _ranks_and_mask(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> tuple[np.ndarray, np.ndarray]:
    """Return (rank of every item, protected mask), validating the groups."""
    ordering = np.asarray(ordering, dtype=int)
    if ordering.size != dataset.n_items:
        raise OracleError("pairwise measures need a full ordering of the dataset")
    column = dataset.type_column(attribute)
    protected_mask = column == protected
    if not np.any(protected_mask) or np.all(protected_mask):
        raise OracleError("both the protected group and its complement must be non-empty")
    ranks = np.empty(ordering.size, dtype=float)
    ranks[ordering] = np.arange(ordering.size, dtype=float)
    return ranks, protected_mask


def protected_above_rate(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Fraction of (protected, other) pairs in which the protected item ranks higher.

    A value of 0.5 means group membership carries no systematic rank
    (dis)advantage; values below 0.5 mean protected items tend to be ranked
    below non-protected items.  Computed in ``O(n log n)`` from the rank sums
    (it is the Mann-Whitney U statistic normalised by the number of pairs).
    """
    ranks, protected_mask = _ranks_and_mask(dataset, ordering, attribute, protected)
    n_protected = int(np.sum(protected_mask))
    n_other = int(protected_mask.size - n_protected)
    # Rank 0 is best; a protected item "wins" against every other-group item
    # ranked strictly below it.  Using 1-based ranks, the number of wins of the
    # protected group is  n_protected*n_other - (U of the protected group), and
    # U = rank_sum - n_protected*(n_protected+1)/2 with ranks sorted ascending
    # by goodness.  There are no ties because ranks are a permutation.
    protected_rank_sum = float(np.sum(ranks[protected_mask])) + n_protected  # 1-based
    u_statistic = protected_rank_sum - n_protected * (n_protected + 1) / 2.0
    wins = n_protected * n_other - u_statistic
    return float(wins / (n_protected * n_other))


def pairwise_parity_gap(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Absolute deviation of :func:`protected_above_rate` from the parity value 0.5.

    Zero is perfect pairwise parity; 0.5 is maximal disparity (one group
    entirely above the other).
    """
    return abs(protected_above_rate(dataset, ordering, attribute, protected) - 0.5)


def rank_biserial_correlation(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Rank-biserial correlation between group membership and rank position.

    Equal to ``2 · protected_above_rate - 1``: +1 when every protected item is
    ranked above every non-protected item, -1 in the opposite extreme, 0 at
    parity.
    """
    return 2.0 * protected_above_rate(dataset, ordering, attribute, protected) - 1.0


def mean_rank_gap(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Difference of mean normalised ranks: protected minus non-protected.

    Ranks are normalised to ``[0, 1]`` (0 = best), so a positive value means
    the protected group sits lower in the ranking on average; the value lies in
    ``(-1, 1)``.
    """
    ranks, protected_mask = _ranks_and_mask(dataset, ordering, attribute, protected)
    if ranks.size == 1:  # pragma: no cover - excluded by the group validation
        return 0.0
    normalised = ranks / float(ranks.size - 1)
    return float(np.mean(normalised[protected_mask]) - np.mean(normalised[~protected_mask]))


def median_rank_gap(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Difference of median normalised ranks: protected minus non-protected.

    Less sensitive than :func:`mean_rank_gap` to a few extreme placements.
    """
    ranks, protected_mask = _ranks_and_mask(dataset, ordering, attribute, protected)
    if ranks.size == 1:  # pragma: no cover - excluded by the group validation
        return 0.0
    normalised = ranks / float(ranks.size - 1)
    return float(
        np.median(normalised[protected_mask]) - np.median(normalised[~protected_mask])
    )


class PairwiseParityOracle(FairnessOracle):
    """Accept orderings whose pairwise parity gap stays within a tolerance.

    An ordering is satisfactory when
    ``pairwise_parity_gap(dataset, ordering, attribute, protected) <= max_gap``
    — i.e. the protected group's win rate over all (protected, other) pairs
    stays within ``max_gap`` of the parity value 0.5.  Unlike the prefix
    constraints this criterion reads the *whole* ordering, which exercises the
    black-box generality of the paper's oracle model (§7).

    Parameters
    ----------
    attribute:
        Type-attribute name (for example ``"sex"``).
    protected:
        The protected group.
    max_gap:
        Largest tolerated deviation from parity, in ``[0, 0.5]``.
    """

    def __init__(self, attribute: str, protected, max_gap: float = 0.1) -> None:
        if not 0.0 <= max_gap <= 0.5:
            raise OracleError(f"max_gap must lie in [0, 0.5], got {max_gap}")
        self.attribute = attribute
        self.protected = protected
        self.max_gap = max_gap

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        gap = pairwise_parity_gap(dataset, ordering, self.attribute, self.protected)
        return gap <= self.max_gap

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Verdict per row of a ``(q, n)`` ordering stack (≡ a loop of ``is_satisfactory``).

        All rank permutations are inverted with one scatter and the per-row
        protected rank sums come from one contiguous reduction, which matches
        the scalar ``np.sum`` over the gathered ranks bit for bit.
        """
        orderings = ordering_matrix(orderings)
        n_rows, n = orderings.shape
        if n != dataset.n_items:
            raise OracleError("pairwise measures need a full ordering of the dataset")
        column = dataset.type_column(self.attribute)
        protected_mask = column == self.protected
        if not np.any(protected_mask) or np.all(protected_mask):
            raise OracleError("both the protected group and its complement must be non-empty")
        ranks = np.empty((n_rows, n), dtype=float)
        ranks[np.arange(n_rows)[:, None], orderings] = np.arange(n, dtype=float)[None, :]
        n_protected = int(np.sum(protected_mask))
        n_other = n - n_protected
        # The boolean-mask gather is not C-contiguous row-wise; the contiguous
        # copy makes the axis reduction apply the same kernel as the scalar
        # 1-D np.sum, keeping the sums (hence the verdicts) bit-identical.
        rank_sums = (
            np.ascontiguousarray(ranks[:, protected_mask]).sum(axis=1) + n_protected
        )
        u_statistics = rank_sums - n_protected * (n_protected + 1) / 2.0
        wins = n_protected * n_other - u_statistics
        rates = wins / (n_protected * n_other)
        return np.abs(rates - 0.5) <= self.max_gap

    def describe(self) -> str:
        return (
            f"PairwiseParity({self.attribute}={self.protected} "
            f"within {self.max_gap:.0%} of parity)"
        )
