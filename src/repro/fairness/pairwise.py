"""Pairwise (rank-position) fairness measures over a full ordering.

The measures in :mod:`repro.fairness.measures` look at *prefixes* of the
ranking (who makes the top-``k``); the measures here look at the ranking as a
whole through the lens of *pairs*: across all (protected, non-protected) item
pairs, how often does the protected item come out on top?  These are the
ranked analogues of pairwise statistical parity and are useful when the
fairness concern is about systematic placement rather than a single cut-off.

All functions take an ordering (item indices, best first), the dataset, the
type attribute and the protected group value, mirroring the signature style of
the prefix-based measures.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError

__all__ = [
    "protected_above_rate",
    "pairwise_parity_gap",
    "rank_biserial_correlation",
    "mean_rank_gap",
    "median_rank_gap",
]


def _ranks_and_mask(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> tuple[np.ndarray, np.ndarray]:
    """Return (rank of every item, protected mask), validating the groups."""
    ordering = np.asarray(ordering, dtype=int)
    if ordering.size != dataset.n_items:
        raise OracleError("pairwise measures need a full ordering of the dataset")
    column = dataset.type_column(attribute)
    protected_mask = column == protected
    if not np.any(protected_mask) or np.all(protected_mask):
        raise OracleError("both the protected group and its complement must be non-empty")
    ranks = np.empty(ordering.size, dtype=float)
    ranks[ordering] = np.arange(ordering.size, dtype=float)
    return ranks, protected_mask


def protected_above_rate(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Fraction of (protected, other) pairs in which the protected item ranks higher.

    A value of 0.5 means group membership carries no systematic rank
    (dis)advantage; values below 0.5 mean protected items tend to be ranked
    below non-protected items.  Computed in ``O(n log n)`` from the rank sums
    (it is the Mann-Whitney U statistic normalised by the number of pairs).
    """
    ranks, protected_mask = _ranks_and_mask(dataset, ordering, attribute, protected)
    n_protected = int(np.sum(protected_mask))
    n_other = int(protected_mask.size - n_protected)
    # Rank 0 is best; a protected item "wins" against every other-group item
    # ranked strictly below it.  Using 1-based ranks, the number of wins of the
    # protected group is  n_protected*n_other - (U of the protected group), and
    # U = rank_sum - n_protected*(n_protected+1)/2 with ranks sorted ascending
    # by goodness.  There are no ties because ranks are a permutation.
    protected_rank_sum = float(np.sum(ranks[protected_mask])) + n_protected  # 1-based
    u_statistic = protected_rank_sum - n_protected * (n_protected + 1) / 2.0
    wins = n_protected * n_other - u_statistic
    return float(wins / (n_protected * n_other))


def pairwise_parity_gap(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Absolute deviation of :func:`protected_above_rate` from the parity value 0.5.

    Zero is perfect pairwise parity; 0.5 is maximal disparity (one group
    entirely above the other).
    """
    return abs(protected_above_rate(dataset, ordering, attribute, protected) - 0.5)


def rank_biserial_correlation(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Rank-biserial correlation between group membership and rank position.

    Equal to ``2 · protected_above_rate - 1``: +1 when every protected item is
    ranked above every non-protected item, -1 in the opposite extreme, 0 at
    parity.
    """
    return 2.0 * protected_above_rate(dataset, ordering, attribute, protected) - 1.0


def mean_rank_gap(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Difference of mean normalised ranks: protected minus non-protected.

    Ranks are normalised to ``[0, 1]`` (0 = best), so a positive value means
    the protected group sits lower in the ranking on average; the value lies in
    ``(-1, 1)``.
    """
    ranks, protected_mask = _ranks_and_mask(dataset, ordering, attribute, protected)
    if ranks.size == 1:  # pragma: no cover - excluded by the group validation
        return 0.0
    normalised = ranks / float(ranks.size - 1)
    return float(np.mean(normalised[protected_mask]) - np.mean(normalised[~protected_mask]))


def median_rank_gap(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Difference of median normalised ranks: protected minus non-protected.

    Less sensitive than :func:`mean_rank_gap` to a few extreme placements.
    """
    ranks, protected_mask = _ranks_and_mask(dataset, ordering, attribute, protected)
    if ranks.size == 1:  # pragma: no cover - excluded by the group validation
        return 0.0
    normalised = ranks / float(ranks.size - 1)
    return float(
        np.median(normalised[protected_mask]) - np.median(normalised[~protected_mask])
    )
