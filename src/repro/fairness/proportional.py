"""Proportional-representation fairness constraints (the paper's FM1).

FM1 (§6.1) bounds, from below and/or above, the number of members of one
demographic group among the top-``k`` of the ranking.  The constraint can be
stated with absolute counts, with fractions of ``k``, or — as the paper
usually phrases it — relative to the group's share of the whole dataset
("at most 10 % more than its proportion in D").
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.batched import ordering_matrix
from repro.fairness.incremental import TopKGroupCounter
from repro.fairness.oracle import FairnessOracle
from repro.ranking.topk import group_counts_at_k, resolve_k

__all__ = ["ProportionalOracle", "TopKGroupBoundOracle"]


class ProportionalOracle(FairnessOracle):
    """Bound the share of one group in the top-``k`` (FM1).

    Parameters
    ----------
    attribute:
        Type-attribute name (for example ``"race"``).
    group:
        The group whose presence at the top is constrained (for example
        ``"African-American"``).
    k:
        Top-``k`` size: an absolute count or a fraction of the dataset size.
    min_fraction, max_fraction:
        Lower / upper bound on the group's share of the top-``k``.  At least
        one must be given; both may be.
    """

    def __init__(
        self,
        attribute: str,
        group,
        k: int | float,
        min_fraction: float | None = None,
        max_fraction: float | None = None,
    ) -> None:
        if min_fraction is None and max_fraction is None:
            raise OracleError("ProportionalOracle needs min_fraction and/or max_fraction")
        for name, value in (("min_fraction", min_fraction), ("max_fraction", max_fraction)):
            if value is not None and not 0.0 <= value <= 1.0:
                raise OracleError(f"{name} must lie in [0, 1], got {value}")
        if (
            min_fraction is not None
            and max_fraction is not None
            and min_fraction > max_fraction
        ):
            raise OracleError("min_fraction cannot exceed max_fraction")
        self.attribute = attribute
        self.group = group
        self.k = k
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction

    # ------------------------------------------------------------------ #
    # constructors mirroring the paper's phrasing
    # ------------------------------------------------------------------ #
    @classmethod
    def at_most_share_plus_slack(
        cls, dataset: Dataset, attribute: str, group, k: int | float, slack: float
    ) -> "ProportionalOracle":
        """Constraint "at most ``slack`` more than the group's proportion in D".

        This is the paper's default COMPAS constraint: African-Americans are
        about 50 % of the data, and a ranking is satisfactory if at most 60 %
        (50 % + 10 % slack) of the top 30 % are African-American.
        """
        if slack < 0:
            raise OracleError("slack must be non-negative")
        share = dataset.group_proportions(attribute).get(group, 0.0)
        return cls(attribute, group, k, max_fraction=min(1.0, share + slack))

    @classmethod
    def at_least_share_minus_slack(
        cls, dataset: Dataset, attribute: str, group, k: int | float, slack: float
    ) -> "ProportionalOracle":
        """Constraint "at least ``slack`` less than the group's proportion in D"."""
        if slack < 0:
            raise OracleError("slack must be non-negative")
        share = dataset.group_proportions(attribute).get(group, 0.0)
        return cls(attribute, group, k, min_fraction=max(0.0, share - slack))

    # ------------------------------------------------------------------ #
    # oracle
    # ------------------------------------------------------------------ #
    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        k = resolve_k(dataset, self.k)
        counts = group_counts_at_k(dataset, ordering, self.attribute, k)
        count = counts.get(self.group, 0)
        if self.min_fraction is not None:
            # A count requirement derived from a fraction is rounded the way a
            # regulator would: at least ceil(fraction * k) members.
            if count < math.ceil(self.min_fraction * k - 1e-9):
                return False
        if self.max_fraction is not None:
            if count > math.floor(self.max_fraction * k + 1e-9):
                return False
        return True

    # ------------------------------------------------------------------ #
    # batched protocol (query-batch hot path)
    # ------------------------------------------------------------------ #
    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Verdict per row of a ``(q, n)`` ordering stack (≡ a loop of ``is_satisfactory``).

        One boolean gather counts the group's members in every row's top-``k``
        prefix; the thresholds are the same rounded counts the scalar path
        compares against, so the verdicts are exactly equal.
        """
        orderings = ordering_matrix(orderings)
        k = resolve_k(dataset, self.k)
        member = np.asarray(dataset.type_column(self.attribute) == self.group)
        counts = member[orderings[:, :k]].sum(axis=1)
        verdicts = np.ones(orderings.shape[0], dtype=bool)
        if self.min_fraction is not None:
            verdicts &= counts >= math.ceil(self.min_fraction * k - 1e-9)
        if self.max_fraction is not None:
            verdicts &= counts <= math.floor(self.max_fraction * k + 1e-9)
        return verdicts

    # ------------------------------------------------------------------ #
    # incremental protocol (sweep hot path)
    # ------------------------------------------------------------------ #
    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        """Initialise O(1)-per-swap tracking of the top-``k`` group count."""
        k = resolve_k(dataset, self.k)
        self._counter = TopKGroupCounter(dataset, ordering, self.attribute, self.group, k)
        # The same rounded thresholds is_satisfactory applies per call.
        self._min_count = (
            None if self.min_fraction is None else math.ceil(self.min_fraction * k - 1e-9)
        )
        self._max_count = (
            None if self.max_fraction is None else math.floor(self.max_fraction * k + 1e-9)
        )

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._counter.apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        count = self._counter.count
        if self._min_count is not None and count < self._min_count:
            return False
        if self._max_count is not None and count > self._max_count:
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.min_fraction is not None:
            parts.append(f">= {self.min_fraction:.0%}")
        if self.max_fraction is not None:
            parts.append(f"<= {self.max_fraction:.0%}")
        bounds = " and ".join(parts)
        return f"FM1({self.attribute}={self.group} {bounds} of top-{self.k})"


class TopKGroupBoundOracle(FairnessOracle):
    """Bound the *count* of one group in the top-``k`` with absolute numbers.

    The §6.2 FM2 experiment states constraints as absolute counts ("at most 90
    males, at most 60 African-Americans ... at the top-100"); this oracle is
    that building block.
    """

    def __init__(
        self,
        attribute: str,
        group,
        k: int | float,
        min_count: int | None = None,
        max_count: int | None = None,
    ) -> None:
        if min_count is None and max_count is None:
            raise OracleError("TopKGroupBoundOracle needs min_count and/or max_count")
        for name, value in (("min_count", min_count), ("max_count", max_count)):
            if value is not None and value < 0:
                raise OracleError(f"{name} must be non-negative")
        if min_count is not None and max_count is not None and min_count > max_count:
            raise OracleError("min_count cannot exceed max_count")
        self.attribute = attribute
        self.group = group
        self.k = k
        self.min_count = min_count
        self.max_count = max_count

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        k = resolve_k(dataset, self.k)
        counts = group_counts_at_k(dataset, ordering, self.attribute, k)
        count = counts.get(self.group, 0)
        if self.min_count is not None and count < self.min_count:
            return False
        if self.max_count is not None and count > self.max_count:
            return False
        return True

    # ------------------------------------------------------------------ #
    # batched protocol (query-batch hot path)
    # ------------------------------------------------------------------ #
    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Verdict per row of a ``(q, n)`` ordering stack (≡ a loop of ``is_satisfactory``)."""
        orderings = ordering_matrix(orderings)
        k = resolve_k(dataset, self.k)
        member = np.asarray(dataset.type_column(self.attribute) == self.group)
        counts = member[orderings[:, :k]].sum(axis=1)
        verdicts = np.ones(orderings.shape[0], dtype=bool)
        if self.min_count is not None:
            verdicts &= counts >= self.min_count
        if self.max_count is not None:
            verdicts &= counts <= self.max_count
        return verdicts

    # ------------------------------------------------------------------ #
    # incremental protocol (sweep hot path)
    # ------------------------------------------------------------------ #
    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        """Initialise O(1)-per-swap tracking of the top-``k`` group count."""
        k = resolve_k(dataset, self.k)
        self._counter = TopKGroupCounter(dataset, ordering, self.attribute, self.group, k)

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._counter.apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        count = self._counter.count
        if self.min_count is not None and count < self.min_count:
            return False
        if self.max_count is not None and count > self.max_count:
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.min_count is not None:
            parts.append(f">= {self.min_count}")
        if self.max_count is not None:
            parts.append(f"<= {self.max_count}")
        bounds = " and ".join(parts)
        return f"TopKBound({self.attribute}={self.group} {bounds} in top-{self.k})"
