"""The incremental-oracle protocol for sweep-style algorithms.

The 2-D ray sweep (§3) visits orderings that differ by *one transposition* per
exchange event, yet the black-box oracle interface forces every sector to be
re-evaluated from a cold start — O(k) or worse per sector, ~n² sectors.  The
:class:`IncrementalOracle` protocol lets an oracle follow the sweep instead:

* ``begin(ordering, dataset)`` — initialise internal state for an ordering;
* ``apply_swap(pos_i, pos_j)`` — the items at two positions of the current
  ordering swapped places (adjacent in theory; the sweep may batch coincident
  exchange angles, so arbitrary positions must be handled);
* ``verdict()`` — the satisfaction verdict for the *current* ordering.

For top-``k`` counting constraints the state update is O(1) per swap — the
group count changes only when a swap crosses the rank-``k`` boundary — which
turns the sweep's oracle cost from O(sectors · k) into O(sectors).  Verdicts
must be *exactly* those of ``is_satisfactory`` on the same ordering; the
equivalence is asserted property-style in the test suite, and the sweep counts
one oracle call per ``verdict()`` so the paper's reported oracle-call metric
is unchanged.

Any oracle that does not implement the protocol (or reports itself incapable
via ``incremental_capable``) is used as a black box, so user-supplied
:class:`~repro.fairness.oracle.CallableOracle` criteria keep working
untouched.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError

__all__ = [
    "IncrementalOracle",
    "as_incremental",
    "TopKGroupCounter",
    "PrefixGroupCounter",
]


@runtime_checkable
class IncrementalOracle(Protocol):
    """Structural protocol of oracles that track a verdict across transpositions.

    Implementors may additionally expose ``incremental_capable() -> bool`` to
    signal at runtime whether the protocol can actually be used (wrappers and
    composites are capable only when the oracles they delegate to are).
    """

    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        """Initialise incremental state for ``ordering`` (best first)."""
        ...

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        """Record that the items at positions ``pos_i`` and ``pos_j`` swapped."""
        ...

    def verdict(self) -> bool:
        """Satisfaction verdict for the current (post-swap) ordering."""
        ...


def _delegate_oracles(node) -> list:
    """Oracles a composite/wrapper forwards the incremental protocol to.

    Inspects instance attributes only (``children`` / ``child`` / ``inner`` /
    ``_inner``), so a delegating *property* over the same underlying children
    (e.g. ``MultiAttributeOracle.children``) is not double-counted.
    """
    state = getattr(node, "__dict__", {})
    delegates = []
    children = state.get("children")
    if isinstance(children, (list, tuple)):
        delegates.extend(children)
    for attribute in ("child", "inner", "_inner"):
        candidate = state.get(attribute)
        if candidate is not None and hasattr(candidate, "is_satisfactory"):
            delegates.append(candidate)
    return delegates


def _tree_shares_nodes(oracle) -> bool:
    """True if the same oracle instance is reachable twice in a composite tree.

    Composites forward ``begin``/``apply_swap`` to every child reference, so a
    shared instance would receive each swap more than once and corrupt its
    counter state (a double-applied transposition self-cancels).  Such trees
    fall back to black-box evaluation, which handles sharing fine.
    """
    seen: set[int] = set()
    stack = [oracle]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            return True
        seen.add(id(node))
        stack.extend(_delegate_oracles(node))
    return False


def _protocol_is_consistent(oracle) -> bool:
    """Guard against subclasses that override ``is_satisfactory`` only.

    A subclass of an incremental-capable oracle that redefines
    ``is_satisfactory`` without redefining ``verdict`` would be silently swept
    with the *parent's* incremental verdict, diverging from its own black-box
    semantics.  Detect that by requiring the MRO class that defines
    ``is_satisfactory`` to be at or below the one defining ``verdict``.
    """
    mro = type(oracle).__mro__
    satisfactory_owner = verdict_owner = None
    for position, cls in enumerate(mro):
        if satisfactory_owner is None and "is_satisfactory" in cls.__dict__:
            satisfactory_owner = position
        if verdict_owner is None and "verdict" in cls.__dict__:
            verdict_owner = position
    if satisfactory_owner is None or verdict_owner is None:
        return True
    return satisfactory_owner >= verdict_owner


def as_incremental(oracle) -> IncrementalOracle | None:
    """Return ``oracle`` as an :class:`IncrementalOracle`, or ``None``.

    ``None`` means the caller must fall back to black-box
    ``is_satisfactory`` evaluation — because the oracle does not implement the
    protocol, reports itself incapable, or overrides ``is_satisfactory`` below
    the class that provides ``verdict`` (in which case the inherited
    incremental state would not reflect the override).
    """
    if not isinstance(oracle, IncrementalOracle):
        return None
    if not _protocol_is_consistent(oracle):
        return None
    capable = getattr(oracle, "incremental_capable", None)
    if capable is not None and not capable():
        return None
    if _tree_shares_nodes(oracle):
        return None
    return oracle


class TopKGroupCounter:
    """Maintains one group's member count in the top-``k`` under transpositions.

    The count changes only when a swap moves an item across the rank-``k``
    boundary, making each update O(1).
    """

    def __init__(
        self, dataset: Dataset, ordering: np.ndarray, attribute: str, group, k: int
    ) -> None:
        if not 1 <= k <= dataset.n_items:
            raise OracleError(f"k={k} outside valid range 1..{dataset.n_items}")
        column = dataset.type_column(attribute)
        self._member = np.asarray(column == group)
        self._ordering = np.array(ordering, dtype=int, copy=True)
        if self._ordering.shape != (dataset.n_items,):
            raise OracleError("ordering must cover every item exactly once")
        self.k = k
        self.count = int(np.sum(self._member[self._ordering[:k]]))

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        ordering = self._ordering
        low, high = (pos_i, pos_j) if pos_i <= pos_j else (pos_j, pos_i)
        leaving, entering = ordering[low], ordering[high]
        ordering[low], ordering[high] = entering, leaving
        if low < self.k <= high:
            self.count += int(self._member[entering]) - int(self._member[leaving])


class PrefixGroupCounter:
    """Maintains per-prefix member counts (lengths ``1..k``) under transpositions.

    A swap of positions ``p < q`` shifts the counts of prefix lengths
    ``p+1..q`` by a constant, so the update touches only that slice — O(1) for
    the adjacent swaps the ray sweep produces.  A running total of violated
    prefixes makes the verdict O(1): callers supply the per-prefix lower /
    upper count bounds (as float arrays, matching the ``ceil``/``floor``
    thresholds of the black-box oracles) and an ``enforced`` mask.
    """

    def __init__(
        self,
        dataset: Dataset,
        ordering: np.ndarray,
        attribute: str,
        group,
        k: int,
        required: np.ndarray | None,
        allowed: np.ndarray | None,
        enforced: np.ndarray | None = None,
    ) -> None:
        if not 1 <= k <= dataset.n_items:
            raise OracleError(f"k={k} outside valid range 1..{dataset.n_items}")
        column = dataset.type_column(attribute)
        self._member = np.asarray(column == group)
        self._ordering = np.array(ordering, dtype=int, copy=True)
        if self._ordering.shape != (dataset.n_items,):
            raise OracleError("ordering must cover every item exactly once")
        self.k = k
        self._required = None if required is None else np.asarray(required, dtype=float)
        self._allowed = None if allowed is None else np.asarray(allowed, dtype=float)
        self._enforced = (
            np.ones(k, dtype=bool) if enforced is None else np.asarray(enforced, dtype=bool)
        )
        self._counts = np.cumsum(self._member[self._ordering[:k]].astype(np.int64))
        self._violated = self._violation_flags(self._counts, slice(0, k))
        self.n_violations = int(np.sum(self._violated))

    def _violation_flags(self, counts: np.ndarray, window: slice) -> np.ndarray:
        flags = np.zeros(counts.shape, dtype=bool)
        if self._required is not None:
            flags |= counts < self._required[window]
        if self._allowed is not None:
            flags |= counts > self._allowed[window]
        return flags & self._enforced[window]

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        ordering = self._ordering
        low, high = (pos_i, pos_j) if pos_i <= pos_j else (pos_j, pos_i)
        moved_up, moved_down = ordering[high], ordering[low]
        ordering[low], ordering[high] = moved_up, moved_down
        if low >= self.k:
            return
        delta = int(self._member[moved_up]) - int(self._member[moved_down])
        if delta == 0:
            return
        window = slice(low, min(high, self.k))  # prefix lengths low+1 .. min(high, k)
        self._counts[window] += delta
        fresh = self._violation_flags(self._counts[window], window)
        self.n_violations += int(np.sum(fresh)) - int(np.sum(self._violated[window]))
        self._violated[window] = fresh

    @property
    def satisfied(self) -> bool:
        """True when no enforced prefix violates its bounds."""
        return self.n_violations == 0
