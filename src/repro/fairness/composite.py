"""Composition of fairness oracles.

The paper's FM2 model (§6.1) combines proportionality constraints over several
type attributes — satisfied only when *all* of them hold.  More generally the
black-box oracle model composes freely; these combinators cover the common
cases and are used to build FM2 from FM1 parts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.oracle import FairnessOracle

__all__ = ["AndOracle", "OrOracle", "NotOracle"]


class AndOracle(FairnessOracle):
    """Satisfied when every child oracle is satisfied (conjunction; FM2 is built this way)."""

    def __init__(self, children: Sequence[FairnessOracle]):
        children = list(children)
        if not children:
            raise OracleError("AndOracle needs at least one child oracle")
        if not all(isinstance(child, FairnessOracle) for child in children):
            raise OracleError("all children must be FairnessOracle instances")
        self.children = children

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return all(child.is_satisfactory(ordering, dataset) for child in self.children)

    def describe(self) -> str:
        return " AND ".join(child.describe() for child in self.children)


class OrOracle(FairnessOracle):
    """Satisfied when at least one child oracle is satisfied (disjunction)."""

    def __init__(self, children: Sequence[FairnessOracle]):
        children = list(children)
        if not children:
            raise OracleError("OrOracle needs at least one child oracle")
        if not all(isinstance(child, FairnessOracle) for child in children):
            raise OracleError("all children must be FairnessOracle instances")
        self.children = children

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return any(child.is_satisfactory(ordering, dataset) for child in self.children)

    def describe(self) -> str:
        return " OR ".join(child.describe() for child in self.children)


class NotOracle(FairnessOracle):
    """Negation of an oracle (useful for testing and for 'avoid this pattern' criteria)."""

    def __init__(self, child: FairnessOracle):
        if not isinstance(child, FairnessOracle):
            raise OracleError("NotOracle wraps a FairnessOracle")
        self.child = child

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return not self.child.is_satisfactory(ordering, dataset)

    def describe(self) -> str:
        return f"NOT ({self.child.describe()})"
