"""Composition of fairness oracles.

The paper's FM2 model (§6.1) combines proportionality constraints over several
type attributes — satisfied only when *all* of them hold.  More generally the
black-box oracle model composes freely; these combinators cover the common
cases and are used to build FM2 from FM1 parts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.batched import evaluate_many, ordering_matrix
from repro.fairness.incremental import as_incremental
from repro.fairness.oracle import FairnessOracle

__all__ = ["AndOracle", "OrOracle", "NotOracle"]


class _NaryOracle(FairnessOracle):
    """Shared child handling and incremental/batched plumbing of And/Or composites.

    The incremental protocol is forwarded to every child and the batched
    protocol reduces the children's verdict vectors; subclasses only define
    how the child results combine.  Capable only when every child is.
    """

    def __init__(self, children: Sequence[FairnessOracle]):
        children = list(children)
        if not children:
            raise OracleError(f"{type(self).__name__} needs at least one child oracle")
        if not all(isinstance(child, FairnessOracle) for child in children):
            raise OracleError("all children must be FairnessOracle instances")
        self.children = children

    def incremental_capable(self) -> bool:
        return all(as_incremental(child) is not None for child in self.children)

    # No batched_capable: unlike the incremental protocol (whose begin/apply_swap
    # must reach every child), the batched protocol is stateless, so the
    # composite can batch its capable children and loop the black-box ones —
    # evaluate_many handles each child's fallback.

    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        for child in self.children:
            child.begin(ordering, dataset)

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        for child in self.children:
            child.apply_swap(pos_i, pos_j)


class AndOracle(_NaryOracle):
    """Satisfied when every child oracle is satisfied (conjunction; FM2 is built this way)."""

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return all(child.is_satisfactory(ordering, dataset) for child in self.children)

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """AND of the children's verdict vectors (≡ a loop of ``is_satisfactory``).

        Short-circuits per row exactly like the scalar ``all(...)``: each child
        only sees the rows every earlier child accepted, so a counting child
        (or one with side effects) observes the same per-row evaluation set —
        and the same call totals — as the per-ordering loop.
        """
        orderings = ordering_matrix(orderings)
        verdicts = np.ones(orderings.shape[0], dtype=bool)
        remaining = np.arange(orderings.shape[0])
        for child in self.children:
            if remaining.size == 0:
                break
            child_verdicts = evaluate_many(child, orderings[remaining], dataset)
            verdicts[remaining[~child_verdicts]] = False
            remaining = remaining[child_verdicts]
        return verdicts

    def verdict(self) -> bool:
        return all(child.verdict() for child in self.children)

    def describe(self) -> str:
        return " AND ".join(child.describe() for child in self.children)


class OrOracle(_NaryOracle):
    """Satisfied when at least one child oracle is satisfied (disjunction)."""

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return any(child.is_satisfactory(ordering, dataset) for child in self.children)

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """OR of the children's verdict vectors (≡ a loop of ``is_satisfactory``).

        Short-circuits per row exactly like the scalar ``any(...)``: each child
        only sees the rows every earlier child rejected, keeping counting
        children's call totals equal to the per-ordering loop's.
        """
        orderings = ordering_matrix(orderings)
        verdicts = np.zeros(orderings.shape[0], dtype=bool)
        remaining = np.arange(orderings.shape[0])
        for child in self.children:
            if remaining.size == 0:
                break
            child_verdicts = evaluate_many(child, orderings[remaining], dataset)
            verdicts[remaining[child_verdicts]] = True
            remaining = remaining[~child_verdicts]
        return verdicts

    def verdict(self) -> bool:
        return any(child.verdict() for child in self.children)

    def describe(self) -> str:
        return " OR ".join(child.describe() for child in self.children)


class NotOracle(FairnessOracle):
    """Negation of an oracle (useful for testing and for 'avoid this pattern' criteria)."""

    def __init__(self, child: FairnessOracle):
        if not isinstance(child, FairnessOracle):
            raise OracleError("NotOracle wraps a FairnessOracle")
        self.child = child

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return not self.child.is_satisfactory(ordering, dataset)

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Negated child verdict vector (≡ a loop of ``is_satisfactory``).

        No ``batched_capable`` probe: ``evaluate_many`` falls back to a
        per-row loop for a black-box child, so the wrapper stays usable as a
        batched oracle either way.
        """
        return ~evaluate_many(self.child, orderings, dataset)

    # incremental protocol: capable only when the child is.
    def incremental_capable(self) -> bool:
        return as_incremental(self.child) is not None

    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        self.child.begin(ordering, dataset)

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self.child.apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        return not self.child.verdict()

    def describe(self) -> str:
        return f"NOT ({self.child.describe()})"
