"""The fairness-oracle abstraction.

The paper's fairness model (§2) is deliberately general: a *fairness oracle*
``O : ordered(D) → {⊤, ⊥}`` is any black-box predicate over an ordering of the
items.  A scoring function is *satisfactory* when the ordering it induces is
accepted by the oracle.  All region/cell algorithms in :mod:`repro.core`
interact with fairness exclusively through this interface, which is what makes
them applicable to diversity constraints and other binary criteria as well
(§7).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.batched import as_batched, evaluate_many, ordering_matrix
from repro.fairness.incremental import as_incremental
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["FairnessOracle", "CallableOracle", "CountingOracle"]


class FairnessOracle(ABC):
    """Abstract base class of all fairness oracles.

    Subclasses implement :meth:`is_satisfactory` over an ordering (an array of
    item indices, best first).  The convenience methods evaluate scoring
    functions directly.
    """

    @abstractmethod
    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        """Return True if the ordering meets the fairness criteria."""

    def evaluate_function(self, function: LinearScoringFunction, dataset: Dataset) -> bool:
        """Order the dataset with ``function`` and evaluate the result."""
        return self.is_satisfactory(function.order(dataset), dataset)

    def __call__(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return self.is_satisfactory(ordering, dataset)

    def describe(self) -> str:
        """One-line human-readable description of the constraint."""
        return type(self).__name__


class CallableOracle(FairnessOracle):
    """Adapter turning any ``(ordering, dataset) -> bool`` callable into an oracle.

    This keeps the paper's claim literal: *any* binary function over an
    ordering can drive the system, including user-supplied diversity criteria.
    """

    def __init__(self, function: Callable[[np.ndarray, Dataset], bool], description: str = ""):
        if not callable(function):
            raise OracleError("CallableOracle requires a callable")
        self._function = function
        self._description = description or getattr(function, "__name__", "callable oracle")

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        result = self._function(ordering, dataset)
        # Genuine scalar verdicts are coerced: a 0-d array from a vectorised
        # predicate unwraps to its scalar, and 0/1 integers count as verdicts.
        # Anything ambiguous — multi-element arrays (whose truthiness raises
        # anyway), None, floats, other integers — is a contract violation and
        # gets a clear, typed error naming the offending type.
        if isinstance(result, np.ndarray):
            if result.ndim == 0:
                result = result.item()
            else:
                raise OracleError(
                    f"the callable wrapped by {self._description!r} returned an "
                    f"array of shape {result.shape}; an oracle must return one "
                    "boolean verdict per call"
                )
        if isinstance(result, (bool, np.bool_)):
            return bool(result)
        if isinstance(result, (int, np.integer)) and result in (0, 1):
            return bool(result)
        raise OracleError(
            f"the callable wrapped by {self._description!r} returned "
            f"{type(result).__name__} ({result!r}); an oracle must return a "
            "boolean verdict"
        )

    def describe(self) -> str:
        return self._description


class CountingOracle(FairnessOracle):
    """Wrapper that counts oracle invocations.

    The complexity results of the paper (Theorems 1 and 3) are stated in terms
    of the number of oracle calls, so benchmarks wrap their oracles in this
    class to report that number alongside wall-clock time.
    """

    def __init__(self, inner: FairnessOracle):
        if not isinstance(inner, FairnessOracle):
            raise OracleError("CountingOracle wraps a FairnessOracle")
        self.inner = inner
        self.calls = 0

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        self.calls += 1
        return self.inner.is_satisfactory(ordering, dataset)

    # ------------------------------------------------------------------ #
    # batched protocol: forward to the wrapped oracle, counting one call per
    # ordering so batched workloads report the same oracle-call numbers a
    # per-query loop would.
    # ------------------------------------------------------------------ #
    def batched_capable(self) -> bool:
        return as_batched(self.inner) is not None

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        orderings = ordering_matrix(orderings)
        self.calls += orderings.shape[0]
        return evaluate_many(self.inner, orderings, dataset)

    # ------------------------------------------------------------------ #
    # incremental protocol: forward to the wrapped oracle, counting one call
    # per verdict so sweep-style algorithms report the same oracle-call
    # numbers whether they run incrementally or as a black box.  The wrapped
    # oracle may not implement the protocol at all (``incremental_capable``
    # then reports False); forwarding is guarded so a direct call fails with
    # a clear error instead of an ``AttributeError``.
    # ------------------------------------------------------------------ #
    def incremental_capable(self) -> bool:
        return as_incremental(self.inner) is not None

    def _incremental_inner(self):
        inner = getattr(self, "_incremental_delegate", None)
        if inner is None:
            raise OracleError(
                "the oracle wrapped by CountingOracle does not support the "
                "incremental protocol (or begin() has not run); evaluate it "
                "as a black box via is_satisfactory instead"
            )
        return inner

    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        inner = as_incremental(self.inner)
        if inner is None:
            raise OracleError(
                "the oracle wrapped by CountingOracle does not support the "
                "incremental protocol; evaluate it as a black box via "
                "is_satisfactory instead"
            )
        # Cache the probed delegate so the per-swap hot path stays a plain
        # attribute lookup instead of re-running the capability probe.
        self._incremental_delegate = inner
        inner.begin(ordering, dataset)

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._incremental_inner().apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        inner = self._incremental_inner()
        self.calls += 1
        return inner.verdict()

    def reset(self) -> None:
        """Reset the call counter."""
        self.calls = 0

    def describe(self) -> str:
        return f"counting({self.inner.describe()})"
