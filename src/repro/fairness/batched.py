"""The batched-oracle protocol for query-batch entry points.

Line 1 of ``MDONLINE`` (Algorithm 11) — *is the query itself satisfactory?* —
is a black-box oracle call, and the batched serving paths
(:meth:`~repro.core.engine.ApproxEngine.suggest_many`, the §5.4 sample
validation, the freshness monitor) used to make it one query at a time: a
full ``argsort`` plus a Python-level ``is_satisfactory`` per query.  The
:class:`BatchedOracle` protocol is the batch mirror of the incremental one
(:mod:`repro.fairness.incremental`):

* ``is_satisfactory_many(orderings, dataset)`` — verdicts for a whole
  ``(q, n)`` stack of orderings at once, one boolean per row.

Verdicts must be *exactly* those of ``is_satisfactory`` on each row; the
equivalence is asserted property-style in the test suite.  Counting wrappers
count ``q`` calls per batch, so the paper's reported oracle-call metric
(Theorems 1 and 3 are stated in oracle calls) is unchanged whether a workload
runs batched or as a per-query loop.

:func:`as_batched` is the capability probe, with the same guards as
:func:`~repro.fairness.incremental.as_incremental`: an oracle that does not
implement the protocol (or reports itself incapable via ``batched_capable``),
a composite tree that reaches the same instance twice, or a subclass that
overrides ``is_satisfactory`` below the class providing
``is_satisfactory_many`` all return ``None`` — the caller then falls back to
bit-identical per-query evaluation, so user-supplied
:class:`~repro.fairness.oracle.CallableOracle` criteria keep working
untouched.  One place the probe is deliberately *less* strict than the
incremental one: a composite with a black-box leaf is still batched-capable —
the protocol is stateless, so And/Or/Not batch their capable children and
loop the black-box ones (short-circuiting per row exactly like the scalar
``all``/``any``, which keeps counting children's call totals loop-identical).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.incremental import _tree_shares_nodes
from repro.ranking.scoring import order_many

__all__ = [
    "BatchedOracle",
    "as_batched",
    "ordering_matrix",
    "evaluate_many",
    "evaluate_functions_many",
]


@runtime_checkable
class BatchedOracle(Protocol):
    """Structural protocol of oracles that judge a stack of orderings at once.

    Implementors may additionally expose ``batched_capable() -> bool`` to
    signal at runtime whether the protocol can actually be used (wrappers and
    composites are capable only when the oracles they delegate to are).
    """

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Boolean verdict per row of a ``(q, n)`` ordering matrix (best first)."""
        ...


def _protocol_is_consistent(oracle) -> bool:
    """Guard against subclasses that override ``is_satisfactory`` only.

    A subclass of a batched-capable oracle that redefines ``is_satisfactory``
    without redefining ``is_satisfactory_many`` would be silently judged with
    the *parent's* batched verdicts, diverging from its own black-box
    semantics.  Detect that by requiring the MRO class that defines
    ``is_satisfactory`` to be at or below the one defining
    ``is_satisfactory_many`` (same rule as the incremental protocol's guard).
    """
    mro = type(oracle).__mro__
    satisfactory_owner = batched_owner = None
    for position, cls in enumerate(mro):
        if satisfactory_owner is None and "is_satisfactory" in cls.__dict__:
            satisfactory_owner = position
        if batched_owner is None and "is_satisfactory_many" in cls.__dict__:
            batched_owner = position
    if satisfactory_owner is None or batched_owner is None:
        return True
    return satisfactory_owner >= batched_owner


def as_batched(oracle) -> BatchedOracle | None:
    """Return ``oracle`` as a :class:`BatchedOracle`, or ``None``.

    ``None`` means the caller must fall back to per-row ``is_satisfactory``
    evaluation — because the oracle does not implement the protocol, reports
    itself incapable, overrides ``is_satisfactory`` below the class that
    provides ``is_satisfactory_many``, or sits in a composite tree that
    reaches the same instance twice (mirroring ``as_incremental``, so the two
    protocols advertise capability consistently).
    """
    if not isinstance(oracle, BatchedOracle):
        return None
    if not _protocol_is_consistent(oracle):
        return None
    capable = getattr(oracle, "batched_capable", None)
    if capable is not None and not capable():
        return None
    if _tree_shares_nodes(oracle):
        return None
    return oracle


def ordering_matrix(orderings: np.ndarray) -> np.ndarray:
    """Validate and return a ``(q, n)`` integer ordering matrix.

    The shared entrance check of every ``is_satisfactory_many``
    implementation; raises :class:`~repro.exceptions.OracleError` on anything
    that is not a 2-D stack of orderings.
    """
    orderings = np.asarray(orderings, dtype=int)
    if orderings.ndim != 2:
        raise OracleError(
            f"is_satisfactory_many expects a (q, n) ordering matrix, "
            f"got shape {orderings.shape}"
        )
    return orderings


def evaluate_many(oracle, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
    """Verdict per row of an ordering matrix, batched when the oracle supports it.

    The universal entry point: uses the oracle's ``is_satisfactory_many`` when
    :func:`as_batched` accepts it, and otherwise falls back to a bit-identical
    loop of ``is_satisfactory`` calls.  Composites route their children
    through this function, so a tree with one black-box leaf still batches
    every other branch.
    """
    orderings = ordering_matrix(orderings)
    batched = as_batched(oracle)
    if batched is not None:
        verdicts = np.asarray(batched.is_satisfactory_many(orderings, dataset), dtype=bool)
        if verdicts.shape != (orderings.shape[0],):
            raise OracleError(
                f"{type(oracle).__name__}.is_satisfactory_many returned shape "
                f"{verdicts.shape} for {orderings.shape[0]} orderings"
            )
        return verdicts
    return np.fromiter(
        (bool(oracle.is_satisfactory(row, dataset)) for row in orderings),
        dtype=bool,
        count=orderings.shape[0],
    )


def evaluate_functions_many(
    oracle, dataset: Dataset, functions: Sequence, weight_matrix: np.ndarray | None = None
) -> np.ndarray:
    """Verdict per scoring function, batched when the oracle supports it.

    The batch mirror of looping
    :meth:`~repro.fairness.oracle.FairnessOracle.evaluate_function`: with a
    batched oracle, the whole batch is ordered by one call to
    :func:`~repro.ranking.scoring.order_many` (bit-identical to per-function
    ``order``) and judged with one ``is_satisfactory_many``; otherwise every
    function is evaluated exactly as the per-query loop would.  Counting
    wrappers report the same oracle-call totals on both routes.

    ``weight_matrix`` lets a caller that already holds the ``(q, d)`` matrix
    the functions were built from (e.g. a ``suggest_many`` batch) skip the
    per-function re-stacking; rows must equal ``functions[i].as_array()``.
    """
    functions = list(functions)
    if not functions:
        return np.zeros(0, dtype=bool)
    batched = as_batched(oracle)
    if batched is None:
        return np.fromiter(
            (bool(oracle.evaluate_function(function, dataset)) for function in functions),
            dtype=bool,
            count=len(functions),
        )
    if weight_matrix is None:
        weight_matrix = np.stack([function.as_array() for function in functions])
    orderings = order_many(dataset, weight_matrix)
    verdicts = np.asarray(batched.is_satisfactory_many(orderings, dataset), dtype=bool)
    if verdicts.shape != (len(functions),):
        raise OracleError(
            f"{type(oracle).__name__}.is_satisfactory_many returned shape "
            f"{verdicts.shape} for {len(functions)} orderings"
        )
    return verdicts
