"""Prefix-proportionality (ranked group fairness) constraints.

The FA*IR line of work (Zehlike et al., CIKM 2017) asks for more than a bound
on the top-``k`` as a whole: *every prefix* of the top-``k`` must contain at
least a minimum number of protected-group members, so protected candidates are
not all pushed to the bottom of an otherwise compliant list.  The paper's
fairness model is deliberately oracle-agnostic, so this constraint plugs
straight into the designer: the satisfactory regions of weight space are then
the weight vectors whose induced ranking is *ranked-group-fair*, not merely
proportional at ``k``.

Two oracles are provided:

* :class:`PrefixProportionalOracle` — lower and/or upper bounds on the
  protected share of every prefix ``1..k``;
* :class:`MinimumAtEveryPrefixOracle` — the classic FA*IR form, "at least
  ``ceil(p · i)`` protected members in every prefix ``i``".
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.fairness.batched import ordering_matrix
from repro.fairness.incremental import PrefixGroupCounter
from repro.fairness.oracle import FairnessOracle
from repro.ranking.topk import resolve_k

__all__ = ["PrefixProportionalOracle", "MinimumAtEveryPrefixOracle"]


def _protected_prefix_counts(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected, k: int
) -> np.ndarray:
    """Cumulative protected-member counts over the first ``k`` prefix lengths."""
    ordering = np.asarray(ordering, dtype=int)
    column = dataset.type_column(attribute)
    member = (column[ordering[:k]] == protected).astype(int)
    return np.cumsum(member)


def _protected_prefix_count_matrix(
    dataset: Dataset, orderings: np.ndarray, attribute: str, protected, k: int
) -> np.ndarray:
    """Batched :func:`_protected_prefix_counts`: one ``(q, k)`` count matrix.

    Row ``i`` equals ``_protected_prefix_counts(dataset, orderings[i], ...)``
    exactly — integer cumulative sums are order-independent bit-for-bit.
    """
    column = dataset.type_column(attribute)
    member = (column[orderings[:, :k]] == protected).astype(int)
    return np.cumsum(member, axis=1)


class PrefixProportionalOracle(FairnessOracle):
    """Bound the protected share of *every* prefix of the top-``k``.

    For every prefix length ``i`` in ``1..k`` the number of protected members
    among the first ``i`` items must satisfy::

        ceil(min_fraction * i)  <=  count_i  <=  floor(max_fraction * i)

    (whichever bounds are given).  With only ``min_fraction`` this is the
    FA*IR ranked group fairness criterion; with only ``max_fraction`` it keeps
    a historically over-represented group from monopolising the visible top of
    the list at any cut-off, which is strictly stronger than FM1 at ``k``.

    Parameters
    ----------
    attribute:
        Type-attribute name (for example ``"sex"``).
    protected:
        Group whose presence is constrained at every prefix.
    k:
        Length of the constrained prefix (count or fraction of the dataset).
    min_fraction, max_fraction:
        Per-prefix lower / upper bounds on the protected share.  At least one
        must be given.
    min_prefix:
        Shortest prefix length at which the bounds are enforced (default 1).
        Tiny prefixes make fractional bounds degenerate — a lower bound of
        30 % already forces the very first item to be protected — so, like the
        binomial relaxation in FA*IR, raising ``min_prefix`` starts enforcing
        the proportion only once the prefix is long enough to be meaningful.
    """

    def __init__(
        self,
        attribute: str,
        protected,
        k: int | float,
        min_fraction: float | None = None,
        max_fraction: float | None = None,
        min_prefix: int = 1,
    ) -> None:
        if min_fraction is None and max_fraction is None:
            raise OracleError(
                "PrefixProportionalOracle needs min_fraction and/or max_fraction"
            )
        for name, value in (("min_fraction", min_fraction), ("max_fraction", max_fraction)):
            if value is not None and not 0.0 <= value <= 1.0:
                raise OracleError(f"{name} must lie in [0, 1], got {value}")
        if (
            min_fraction is not None
            and max_fraction is not None
            and min_fraction > max_fraction
        ):
            raise OracleError("min_fraction cannot exceed max_fraction")
        if min_prefix < 1:
            raise OracleError("min_prefix must be at least 1")
        self.attribute = attribute
        self.protected = protected
        self.k = k
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction
        self.min_prefix = min_prefix

    @classmethod
    def matching_dataset_share(
        cls,
        dataset: Dataset,
        attribute: str,
        protected,
        k: int | float,
        slack: float = 0.1,
    ) -> "PrefixProportionalOracle":
        """Require every prefix to stay within ``slack`` of the group's share in ``D``.

        Mirrors the paper's phrasing of FM1 ("at most 10 % more than its
        proportion in D"), but enforced at every prefix rather than only at
        ``k``.
        """
        if slack < 0:
            raise OracleError("slack must be non-negative")
        share = dataset.group_proportions(attribute).get(protected, 0.0)
        return cls(
            attribute,
            protected,
            k,
            min_fraction=max(0.0, share - slack),
            max_fraction=min(1.0, share + slack),
        )

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        k = resolve_k(dataset, self.k)
        counts = _protected_prefix_counts(dataset, ordering, self.attribute, self.protected, k)
        prefix_lengths = np.arange(1, k + 1)
        enforced = prefix_lengths >= self.min_prefix
        if self.min_fraction is not None:
            required = np.ceil(self.min_fraction * prefix_lengths - 1e-9)
            if np.any(enforced & (counts < required)):
                return False
        if self.max_fraction is not None:
            allowed = np.floor(self.max_fraction * prefix_lengths + 1e-9)
            if np.any(enforced & (counts > allowed)):
                return False
        return True

    # ------------------------------------------------------------------ #
    # batched protocol (query-batch hot path)
    # ------------------------------------------------------------------ #
    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Verdict per row of a ``(q, n)`` ordering stack (≡ a loop of ``is_satisfactory``)."""
        orderings = ordering_matrix(orderings)
        k = resolve_k(dataset, self.k)
        counts = _protected_prefix_count_matrix(
            dataset, orderings, self.attribute, self.protected, k
        )
        prefix_lengths = np.arange(1, k + 1)
        enforced = prefix_lengths >= self.min_prefix
        verdicts = np.ones(orderings.shape[0], dtype=bool)
        if self.min_fraction is not None:
            required = np.ceil(self.min_fraction * prefix_lengths - 1e-9)
            verdicts &= ~np.any(enforced & (counts < required), axis=1)
        if self.max_fraction is not None:
            allowed = np.floor(self.max_fraction * prefix_lengths + 1e-9)
            verdicts &= ~np.any(enforced & (counts > allowed), axis=1)
        return verdicts

    # ------------------------------------------------------------------ #
    # incremental protocol (sweep hot path)
    # ------------------------------------------------------------------ #
    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        """Initialise per-prefix count tracking (O(1) per adjacent swap)."""
        k = resolve_k(dataset, self.k)
        prefix_lengths = np.arange(1, k + 1)
        required = (
            None
            if self.min_fraction is None
            else np.ceil(self.min_fraction * prefix_lengths - 1e-9)
        )
        allowed = (
            None
            if self.max_fraction is None
            else np.floor(self.max_fraction * prefix_lengths + 1e-9)
        )
        self._counter = PrefixGroupCounter(
            dataset,
            ordering,
            self.attribute,
            self.protected,
            k,
            required,
            allowed,
            enforced=prefix_lengths >= self.min_prefix,
        )

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._counter.apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        return self._counter.satisfied

    def describe(self) -> str:
        parts = []
        if self.min_fraction is not None:
            parts.append(f">= {self.min_fraction:.0%}")
        if self.max_fraction is not None:
            parts.append(f"<= {self.max_fraction:.0%}")
        bounds = " and ".join(parts)
        scope = (
            f"every prefix of top-{self.k}"
            if self.min_prefix <= 1
            else f"every prefix of top-{self.k} of length >= {self.min_prefix}"
        )
        return f"PrefixFM1({self.attribute}={self.protected} {bounds} of {scope})"


class MinimumAtEveryPrefixOracle(FairnessOracle):
    """FA*IR-style constraint: at least ``ceil(p · i)`` protected members in every prefix ``i``.

    This is the deterministic core of the FA*IR ranked group fairness test
    (the published algorithm relaxes the per-prefix minimum with a binomial
    significance correction; the uncorrected form used here is the strictest
    variant and therefore a conservative oracle).

    Parameters
    ----------
    attribute:
        Type-attribute name.
    protected:
        The protected group.
    k:
        Length of the constrained prefix (count or fraction of the dataset).
    target_fraction:
        The target protected proportion ``p``.
    """

    def __init__(self, attribute: str, protected, k: int | float, target_fraction: float) -> None:
        if not 0.0 <= target_fraction <= 1.0:
            raise OracleError(f"target_fraction must lie in [0, 1], got {target_fraction}")
        self.attribute = attribute
        self.protected = protected
        self.k = k
        self.target_fraction = target_fraction

    def minimum_at(self, prefix_length: int) -> int:
        """The minimum number of protected members required in a prefix of this length."""
        if prefix_length < 1:
            raise OracleError("prefix_length must be at least 1")
        return int(math.ceil(self.target_fraction * prefix_length - 1e-9))

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        k = resolve_k(dataset, self.k)
        counts = _protected_prefix_counts(dataset, ordering, self.attribute, self.protected, k)
        prefix_lengths = np.arange(1, k + 1)
        required = np.ceil(self.target_fraction * prefix_lengths - 1e-9)
        return bool(np.all(counts >= required))

    # ------------------------------------------------------------------ #
    # batched protocol (query-batch hot path)
    # ------------------------------------------------------------------ #
    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Verdict per row of a ``(q, n)`` ordering stack (≡ a loop of ``is_satisfactory``)."""
        orderings = ordering_matrix(orderings)
        k = resolve_k(dataset, self.k)
        counts = _protected_prefix_count_matrix(
            dataset, orderings, self.attribute, self.protected, k
        )
        required = np.ceil(self.target_fraction * np.arange(1, k + 1) - 1e-9)
        return np.all(counts >= required, axis=1)

    # ------------------------------------------------------------------ #
    # incremental protocol (sweep hot path)
    # ------------------------------------------------------------------ #
    def begin(self, ordering: np.ndarray, dataset: Dataset) -> None:
        """Initialise per-prefix count tracking (O(1) per adjacent swap)."""
        k = resolve_k(dataset, self.k)
        prefix_lengths = np.arange(1, k + 1)
        self._counter = PrefixGroupCounter(
            dataset,
            ordering,
            self.attribute,
            self.protected,
            k,
            np.ceil(self.target_fraction * prefix_lengths - 1e-9),
            None,
        )

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._counter.apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        return self._counter.satisfied

    def describe(self) -> str:
        return (
            f"FA*IR({self.attribute}={self.protected} >= ceil({self.target_fraction:.0%} · i) "
            f"in every prefix i of top-{self.k})"
        )
