"""One-stop fairness audit of a ranking or a scoring function.

Examples, the CLI and the EXPERIMENTS report repeatedly want the same thing:
"take this ordering (or this weight vector), and tell me how fair it is under
every measure we know".  :func:`audit_ordering` bundles the prefix measures of
:mod:`repro.fairness.measures` and the pairwise measures of
:mod:`repro.fairness.pairwise` into a single :class:`RankingAudit`, and
:func:`compare_audits` reports how the picture changes between two rankings
(typically: the user's proposed function vs. the designer's suggestion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.fairness.measures import (
    exposure_ratio,
    group_share_at_k,
    rkl_measure,
    rnd_measure,
    selection_rate_ratio,
)
from repro.fairness.pairwise import (
    mean_rank_gap,
    pairwise_parity_gap,
    protected_above_rate,
    rank_biserial_correlation,
)
from repro.ranking.scoring import LinearScoringFunction
from repro.ranking.topk import group_counts_at_k, resolve_k

__all__ = ["RankingAudit", "audit_ordering", "audit_function", "compare_audits", "format_audit"]


@dataclass(frozen=True)
class RankingAudit:
    """Fairness measures of one ordering with respect to one protected group.

    Attributes
    ----------
    attribute, protected:
        The type attribute and group the audit is about.
    k:
        The resolved top-``k`` size the prefix measures were computed at.
    protected_count_at_k, protected_share_at_k:
        Absolute count and share of the protected group in the top-``k``.
    dataset_share:
        The group's share of the whole dataset (the proportionality reference).
    selection_rate_ratio:
        Disparate-impact style ratio of selection rates at ``k`` (1 = parity).
    rnd, rkl:
        Prefix-based ranked fairness measures of Yang & Stoyanovich (0 = fair).
    exposure_ratio:
        Ratio of mean position-discounted exposure, protected vs. rest.
    protected_above_rate, pairwise_parity_gap, rank_biserial, mean_rank_gap:
        Pairwise measures over the full ordering (see
        :mod:`repro.fairness.pairwise`).
    """

    attribute: str
    protected: object
    k: int
    protected_count_at_k: int
    protected_share_at_k: float
    dataset_share: float
    selection_rate_ratio: float
    rnd: float
    rkl: float
    exposure_ratio: float
    protected_above_rate: float
    pairwise_parity_gap: float
    rank_biserial: float
    mean_rank_gap: float

    def as_dict(self) -> dict:
        """The audit as a plain dictionary (JSON-serialisable except the group value)."""
        return {
            "attribute": self.attribute,
            "protected": self.protected,
            "k": self.k,
            "protected_count_at_k": self.protected_count_at_k,
            "protected_share_at_k": self.protected_share_at_k,
            "dataset_share": self.dataset_share,
            "selection_rate_ratio": self.selection_rate_ratio,
            "rnd": self.rnd,
            "rkl": self.rkl,
            "exposure_ratio": self.exposure_ratio,
            "protected_above_rate": self.protected_above_rate,
            "pairwise_parity_gap": self.pairwise_parity_gap,
            "rank_biserial": self.rank_biserial,
            "mean_rank_gap": self.mean_rank_gap,
        }


def audit_ordering(
    dataset: Dataset,
    ordering: np.ndarray,
    attribute: str,
    protected,
    k: int | float,
) -> RankingAudit:
    """Compute every implemented fairness measure for one ordering.

    Parameters
    ----------
    dataset:
        The dataset the ordering refers to.
    ordering:
        A full ordering of the dataset (item indices, best first).
    attribute, protected:
        The type attribute and protected group the audit concerns.
    k:
        The top-``k`` size used by the prefix measures (count or fraction).
    """
    resolved_k = resolve_k(dataset, k)
    counts = group_counts_at_k(dataset, ordering, attribute, resolved_k)
    count = counts.get(protected, 0)
    return RankingAudit(
        attribute=attribute,
        protected=protected,
        k=resolved_k,
        protected_count_at_k=count,
        protected_share_at_k=count / float(resolved_k),
        dataset_share=dataset.group_proportions(attribute).get(protected, 0.0),
        selection_rate_ratio=selection_rate_ratio(dataset, ordering, attribute, protected, resolved_k),
        rnd=rnd_measure(dataset, ordering, attribute, protected),
        rkl=rkl_measure(dataset, ordering, attribute),
        exposure_ratio=exposure_ratio(dataset, ordering, attribute, protected),
        protected_above_rate=protected_above_rate(dataset, ordering, attribute, protected),
        pairwise_parity_gap=pairwise_parity_gap(dataset, ordering, attribute, protected),
        rank_biserial=rank_biserial_correlation(dataset, ordering, attribute, protected),
        mean_rank_gap=mean_rank_gap(dataset, ordering, attribute, protected),
    )


def audit_function(
    dataset: Dataset,
    function: LinearScoringFunction,
    attribute: str,
    protected,
    k: int | float,
) -> RankingAudit:
    """Audit the ordering induced by a scoring function (:func:`audit_ordering` shortcut)."""
    return audit_ordering(dataset, function.order(dataset), attribute, protected, k)


def compare_audits(before: RankingAudit, after: RankingAudit) -> dict[str, tuple[float, float]]:
    """Pair up the numeric measures of two audits as ``name -> (before, after)``.

    Useful for printing "query vs. suggestion" tables; non-numeric fields
    (attribute, group) are omitted.
    """
    numeric_keys = [
        "protected_count_at_k",
        "protected_share_at_k",
        "selection_rate_ratio",
        "rnd",
        "rkl",
        "exposure_ratio",
        "protected_above_rate",
        "pairwise_parity_gap",
        "rank_biserial",
        "mean_rank_gap",
    ]
    before_dict = before.as_dict()
    after_dict = after.as_dict()
    return {key: (float(before_dict[key]), float(after_dict[key])) for key in numeric_keys}


def format_audit(audit: RankingAudit, title: str = "") -> str:
    """Render an audit as an aligned plain-text report."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    lines.append(
        f"group {audit.protected!r} of attribute {audit.attribute!r} "
        f"(dataset share {audit.dataset_share:.1%})"
    )
    rows = [
        ("protected in top-k", f"{audit.protected_count_at_k} of {audit.k} "
                               f"({audit.protected_share_at_k:.1%})"),
        ("selection-rate ratio", f"{audit.selection_rate_ratio:.3f}"),
        ("rND (0 = fair)", f"{audit.rnd:.4f}"),
        ("rKL (0 = fair)", f"{audit.rkl:.4f}"),
        ("exposure ratio", f"{audit.exposure_ratio:.3f}"),
        ("P(protected above other)", f"{audit.protected_above_rate:.3f}"),
        ("pairwise parity gap", f"{audit.pairwise_parity_gap:.3f}"),
        ("rank-biserial correlation", f"{audit.rank_biserial:+.3f}"),
        ("mean normalised rank gap", f"{audit.mean_rank_gap:+.3f}"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        lines.append(f"  {label.ljust(width)}  {value}")
    return "\n".join(lines)
