"""Quantitative fairness measures over ranked outputs.

The core system only needs a boolean oracle, but examples, tests and the
EXPERIMENTS report benefit from *graded* measures of how (un)fair an ordering
is.  The measures implemented here follow the related work the paper cites:

* group share / count at ``k`` (the quantity FM1 bounds),
* the disparate-impact style selection-rate ratio of Feldman et al.,
* rND and rKL, the normalised discounted difference / KL-divergence measures of
  Yang & Stoyanovich ("Measuring fairness in ranked outputs", SSDBM 2017), and
* group exposure ratios with logarithmic position discounts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError
from repro.ranking.topk import group_counts_at_k, resolve_k

__all__ = [
    "group_share_at_k",
    "selection_rate_ratio",
    "rnd_measure",
    "rkl_measure",
    "exposure_ratio",
]


def group_share_at_k(
    dataset: Dataset, ordering: np.ndarray, attribute: str, group, k: int | float
) -> float:
    """Share of the top-``k`` belonging to ``group`` (the quantity FM1 bounds)."""
    count = resolve_k(dataset, k)
    counts = group_counts_at_k(dataset, ordering, attribute, count)
    return counts.get(group, 0) / float(count)


def selection_rate_ratio(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected, k: int | float
) -> float:
    """Disparate-impact style ratio of selection rates at the top-``k``.

    ``rate(protected) / rate(others)`` where a group's rate is the fraction of
    its members appearing in the top-``k``.  A value near 1 is parity; the
    US EEOC "80 % rule" flags values below 0.8.  Returns ``inf`` when the
    non-protected rate is zero while the protected rate is positive.
    """
    count = resolve_k(dataset, k)
    column = dataset.type_column(attribute)
    protected_mask = column == protected
    n_protected = int(np.sum(protected_mask))
    n_other = int(protected_mask.size - n_protected)
    if n_protected == 0 or n_other == 0:
        raise OracleError("both the protected group and its complement must be non-empty")
    top = np.asarray(ordering, dtype=int)[:count]
    protected_selected = int(np.sum(protected_mask[top]))
    other_selected = count - protected_selected
    protected_rate = protected_selected / n_protected
    other_rate = other_selected / n_other
    if other_rate == 0.0:
        return math.inf if protected_rate > 0 else 1.0
    return protected_rate / other_rate


def _prefix_positions(n: int, step: int = 10) -> list[int]:
    """Evaluation prefixes 10, 20, ... as used by the rND / rKL measures."""
    positions = list(range(step, n + 1, step))
    if not positions:
        positions = [n]
    return positions


def rnd_measure(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected, step: int = 10
) -> float:
    """Normalised discounted difference (rND) of Yang & Stoyanovich.

    Averages, over prefixes of the ranking, the absolute difference between the
    protected group's share in the prefix and its share overall, discounted
    logarithmically by prefix position and normalised by the worst possible
    value so the result lies in [0, 1] (0 = perfectly proportional).
    """
    ordering = np.asarray(ordering, dtype=int)
    n = ordering.size
    column = dataset.type_column(attribute)
    protected_mask = column == protected
    overall_share = float(np.mean(protected_mask))
    positions = _prefix_positions(n, step)

    def discounted_sum(share_at) -> float:
        total = 0.0
        for position in positions:
            total += abs(share_at(position) - overall_share) / math.log2(position + 1)
        return total

    value = discounted_sum(
        lambda position: float(np.mean(protected_mask[ordering[:position]]))
    )
    # Normaliser: the worst case packs the protected group entirely at the top
    # or entirely at the bottom, whichever deviates more.
    n_protected = int(np.sum(protected_mask))
    worst_top = discounted_sum(lambda position: min(n_protected, position) / position)
    worst_bottom = discounted_sum(
        lambda position: max(0, position - (n - n_protected)) / position
    )
    normaliser = max(worst_top, worst_bottom)
    if normaliser == 0.0:
        return 0.0
    return value / normaliser


def rkl_measure(
    dataset: Dataset, ordering: np.ndarray, attribute: str, step: int = 10
) -> float:
    """Discounted KL-divergence (rKL) between prefix and overall group distributions.

    Unlike rND this handles more than two groups.  Smaller is fairer; the value
    is not normalised (as in the original definition) but is always finite
    thanks to add-one smoothing.
    """
    ordering = np.asarray(ordering, dtype=int)
    n = ordering.size
    column = dataset.type_column(attribute)
    values = np.unique(column)
    overall = np.array([np.sum(column == value) for value in values], dtype=float) + 1.0
    overall /= overall.sum()
    total = 0.0
    for position in _prefix_positions(n, step):
        prefix = column[ordering[:position]]
        counts = np.array([np.sum(prefix == value) for value in values], dtype=float) + 1.0
        probabilities = counts / counts.sum()
        divergence = float(np.sum(probabilities * np.log(probabilities / overall)))
        total += divergence / math.log2(position + 1)
    return total


def exposure_ratio(
    dataset: Dataset, ordering: np.ndarray, attribute: str, protected
) -> float:
    """Ratio of average logarithmic-discount exposure of the protected group vs. the rest.

    Exposure of rank ``r`` (1-based) is ``1 / log2(r + 1)``; the measure is the
    protected group's mean exposure divided by the complement's mean exposure.
    Values near 1 indicate the groups occupy comparably prominent positions.
    """
    ordering = np.asarray(ordering, dtype=int)
    column = dataset.type_column(attribute)
    protected_mask = column == protected
    if not np.any(protected_mask) or np.all(protected_mask):
        raise OracleError("both the protected group and its complement must be non-empty")
    exposures = np.zeros(ordering.size)
    exposures[ordering] = 1.0 / np.log2(np.arange(2, ordering.size + 2))
    protected_exposure = float(np.mean(exposures[protected_mask]))
    other_exposure = float(np.mean(exposures[~protected_mask]))
    return protected_exposure / other_exposure
