"""Plain-text reporting of experiment results.

The paper presents results as figures; without a plotting dependency we print
the same information as aligned text tables (one row per x value, one column
per series), which is what the benchmark harness writes to stdout and what
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.harness import Series, SweepResult

__all__ = ["format_table", "format_series", "format_sweep", "format_histogram"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Format a list of rows as an aligned text table."""
    columns = [list(map(_stringify, column)) for column in zip(*([headers] + [list(r) for r in rows]))]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_stringify(value).ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_series(series: Series) -> str:
    """Format one series as a two-column table."""
    return format_table([series.x_label, series.y_label], series.rows())


def format_sweep(result: SweepResult) -> str:
    """Format a sweep result: shared x column followed by one column per series."""
    names = list(result.series)
    if not names:
        return "(empty sweep)"
    xs = result.series[names[0]].xs
    headers = [result.parameter] + names
    rows = []
    for index, x in enumerate(xs):
        row = [x]
        for name in names:
            ys = result.series[name].ys
            row.append(ys[index] if index < len(ys) else "")
        rows.append(row)
    return format_table(headers, rows)


def format_histogram(counts: Mapping, title: str = "") -> str:
    """Format a mapping of bucket -> count as a table, largest bucket first."""
    rows = sorted(counts.items(), key=lambda item: item[0])
    table = format_table(["bucket", "count"], rows)
    if title:
        return f"{title}\n{table}"
    return table
