"""Extension experiments beyond the paper's §6: ablations of our design choices.

Three studies that the paper motivates but does not report, used by the
``bench_ablation_*`` / ``bench_baseline_comparison`` benchmark modules:

* **grid resolution** — how the Theorem 6 error bound, the observed suggestion
  distances and the preprocessing cost trade off as the number of cells ``N``
  grows (the user-controllable approximation knob of §5);
* **partition backend** — the paper's adaptive equal-area partition
  (Appendix A.2) vs. the plain uniform grid at the same cell budget;
* **design-time vs. output re-ranking** — the designer's suggested weight
  vector vs. the FA*IR-style greedy re-ranker and the constrained top-``k``
  baseline (§7 related work), comparing constraint satisfaction, score
  utility, and whether the result is still a linear ranking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.approx import ApproximatePreprocessor, md_online
from repro.data.dataset import Dataset
from repro.experiments.harness import SweepResult
from repro.experiments.workloads import default_compas_dataset, default_compas_oracle
from repro.fairness.baselines import constrained_topk
from repro.fairness.proportional import ProportionalOracle
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction
from repro.ranking.topk import resolve_k

__all__ = [
    "experiment_ablation_grid_resolution",
    "experiment_ablation_partition",
    "BaselineComparison",
    "experiment_baseline_comparison",
]


# --------------------------------------------------------------------------- #
# grid-resolution ablation (the §5 approximation knob)
# --------------------------------------------------------------------------- #
def experiment_ablation_grid_resolution(
    n_cells_values: tuple[int, ...] = (16, 64, 256, 1024),
    n_items: int = 200,
    d: int = 3,
    n_queries: int = 30,
    max_hyperplanes: int | None = 200,
    seed: int = 0,
) -> SweepResult:
    """Sweep the number of grid cells ``N`` and record bound, observed distance and cost.

    Series produced: ``theorem6_bound`` (the guaranteed worst-case extra
    distance), ``mean_suggestion_distance`` (observed over random unfair
    queries), ``marked_cell_fraction`` and ``preprocess_seconds``.
    """
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    oracle = default_compas_oracle(dataset)
    result = SweepResult(parameter="n_cells")
    queries = random_queries(d, n_queries, seed=seed)
    for n_cells in n_cells_values:
        started = time.perf_counter()
        index = ApproximatePreprocessor(
            dataset, oracle, n_cells=n_cells, max_hyperplanes=max_hyperplanes
        ).run()
        elapsed = time.perf_counter() - started
        distances = []
        for query in queries:
            answer = md_online(index, query)
            if not answer.satisfactory:
                distances.append(answer.angular_distance)
        result.series_named("theorem6_bound").add(index.n_cells, index.approximation_bound())
        result.series_named("mean_suggestion_distance").add(
            index.n_cells, float(np.mean(distances)) if distances else 0.0
        )
        result.series_named("marked_cell_fraction").add(
            index.n_cells, index.n_marked_cells / index.n_cells
        )
        result.series_named("preprocess_seconds").add(index.n_cells, elapsed)
    return result


# --------------------------------------------------------------------------- #
# partition-backend ablation (uniform grid vs. Appendix A.2 equal-area)
# --------------------------------------------------------------------------- #
def experiment_ablation_partition(
    n_items: int = 150,
    d: int = 3,
    n_cells: int = 256,
    n_queries: int = 20,
    max_hyperplanes: int | None = 150,
    seed: int = 0,
) -> SweepResult:
    """Compare the two partition backends at the same cell budget.

    The sweep's x axis enumerates the backends (0 = uniform, 1 = angle); the
    series record the realised cell count, the per-cell diameter bound, the
    fraction of cells marked directly, the preprocessing time and the mean
    suggestion distance over a fixed query workload.
    """
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    oracle = default_compas_oracle(dataset)
    queries = random_queries(d, n_queries, seed=seed)
    result = SweepResult(parameter="backend_index")
    for backend_index, backend in enumerate(("uniform", "angle")):
        started = time.perf_counter()
        index = ApproximatePreprocessor(
            dataset, oracle, n_cells=n_cells, partition=backend,
            max_hyperplanes=max_hyperplanes,
        ).run()
        elapsed = time.perf_counter() - started
        distances = []
        for query in queries:
            answer = md_online(index, query)
            if not answer.satisfactory:
                distances.append(answer.angular_distance)
        result.series_named("realised_cells").add(backend_index, index.n_cells)
        result.series_named("cell_diameter_bound").add(
            backend_index, index.partition.max_cell_diameter()
        )
        result.series_named("marked_cell_fraction").add(
            backend_index, index.n_marked_cells / index.n_cells
        )
        result.series_named("preprocess_seconds").add(backend_index, elapsed)
        result.series_named("mean_suggestion_distance").add(
            backend_index, float(np.mean(distances)) if distances else 0.0
        )
    return result


# --------------------------------------------------------------------------- #
# design-time weight repair vs. output re-ranking baselines (§7)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BaselineComparison:
    """Outcome of comparing the designer against the §7 re-ranking baselines.

    All three approaches are forced to respect the same FM1 upper bound on the
    protected group at the top-``k``.  ``utility`` is the total original-weight
    score of the selected top-``k``, normalised by the unconstrained optimum
    (1.0 means no score was sacrificed).  ``protected_share`` is the realised
    protected share of the top-``k``.  ``is_linear`` records whether the final
    ranking is still induced by a linear scoring function over the attributes
    — the property that distinguishes weight design from output intervention.
    """

    method: str
    protected_share: float
    utility: float
    satisfies_constraint: bool
    is_linear: bool
    angular_distance_to_query: float


def _topk_utility(dataset: Dataset, scores: np.ndarray, selection: np.ndarray) -> float:
    return float(np.sum(scores[np.asarray(selection, dtype=int)]))


def experiment_baseline_comparison(
    n_items: int = 400,
    d: int = 3,
    k: float = 0.25,
    slack: float = 0.10,
    n_cells: int = 256,
    max_hyperplanes: int | None = 200,
    seed: int = 0,
) -> list[BaselineComparison]:
    """Compare the designer's weight repair with the FA*IR and constrained top-k baselines.

    The user's query is the equal-weights function.  The constraint is the
    paper's default FM1 bound ("at most dataset share + ``slack`` of the
    protected group in the top-``k``").  Four rows are returned: the original
    query, the designer's suggestion, the greedy re-ranker and the constrained
    top-``k`` selection.
    """
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    attribute, protected = "race", "African-American"
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, attribute, protected, k=k, slack=slack
    )
    k_count = resolve_k(dataset, k)
    max_protected = int(np.floor(oracle.max_fraction * k_count + 1e-9))

    query = np.full(d, 1.0 / d)
    query_function = LinearScoringFunction(tuple(query))
    query_scores = query_function.score(dataset)
    query_ordering = query_function.order(dataset)
    unconstrained_utility = _topk_utility(dataset, query_scores, query_ordering[:k_count])

    def share_of(selection: np.ndarray) -> float:
        column = dataset.type_column(attribute)
        return float(np.mean(column[np.asarray(selection, dtype=int)] == protected))

    rows: list[BaselineComparison] = []

    # Row 1: the user's query as-is.
    rows.append(
        BaselineComparison(
            method="query",
            protected_share=share_of(query_ordering[:k_count]),
            utility=1.0,
            satisfies_constraint=oracle.is_satisfactory(query_ordering, dataset),
            is_linear=True,
            angular_distance_to_query=0.0,
        )
    )

    # Row 2: the designer's closest satisfactory weight vector.
    index = ApproximatePreprocessor(
        dataset, oracle, n_cells=n_cells, max_hyperplanes=max_hyperplanes
    ).run()
    suggestion = md_online(index, query_function)
    suggested_ordering = suggestion.function.order(dataset)
    rows.append(
        BaselineComparison(
            method="designer",
            protected_share=share_of(suggested_ordering[:k_count]),
            utility=_topk_utility(dataset, query_scores, suggested_ordering[:k_count])
            / unconstrained_utility,
            satisfies_constraint=oracle.is_satisfactory(suggested_ordering, dataset),
            is_linear=True,
            angular_distance_to_query=suggestion.angular_distance,
        )
    )

    # Row 3: greedy re-ranking of the query's output in the FA*IR spirit, here
    # for an *upper* bound: walk the ordering in score order and defer
    # protected items once the allowed count at the top-k is reached.
    column = dataset.type_column(attribute)
    selected: list[int] = []
    protected_taken = 0
    for item in query_ordering:
        item = int(item)
        if column[item] == protected:
            if protected_taken >= max_protected:
                continue
            protected_taken += 1
        selected.append(item)
        if len(selected) == k_count:
            break
    rerank_topk = np.asarray(selected[:k_count], dtype=int)
    rerank_full = np.concatenate(
        [rerank_topk, np.asarray([i for i in query_ordering if int(i) not in set(selected[:k_count])], dtype=int)]
    )
    rows.append(
        BaselineComparison(
            method="greedy_rerank",
            protected_share=share_of(rerank_topk),
            utility=_topk_utility(dataset, query_scores, rerank_topk) / unconstrained_utility,
            satisfies_constraint=oracle.is_satisfactory(rerank_full, dataset),
            is_linear=False,
            angular_distance_to_query=float("nan"),
        )
    )

    # Row 4: constrained top-k selection with a per-group upper bound.
    constrained = constrained_topk(
        dataset,
        query_scores,
        k=k_count,
        max_counts={(attribute, protected): max_protected},
    )
    constrained_full = np.concatenate(
        [constrained, np.asarray([i for i in query_ordering if int(i) not in set(constrained.tolist())], dtype=int)]
    )
    rows.append(
        BaselineComparison(
            method="constrained_topk",
            protected_share=share_of(constrained),
            utility=_topk_utility(dataset, query_scores, constrained) / unconstrained_utility,
            satisfies_constraint=oracle.is_satisfactory(constrained_full, dataset),
            is_linear=False,
            angular_distance_to_query=float("nan"),
        )
    )
    return rows
