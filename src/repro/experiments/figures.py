"""Figure artifact generation: one CSV + one ASCII chart per reproduced figure.

The benchmark suite regenerates each figure's data and asserts its shape; this
module adds a way to *materialise* those figures as files, so the reproduction
can be inspected and re-plotted outside of pytest.  Each entry of
:data:`FIGURE_GENERATORS` produces a :class:`~repro.experiments.harness.SweepResult`
at a reduced (laptop-friendly) scale; :func:`generate_figures` writes the
corresponding ``<name>.csv`` and ``<name>.txt`` artifacts into an output
directory.  The CLI exposes this as ``repro-fair-ranking figures``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.harness import SweepResult
from repro.experiments.workloads import (
    experiment_fig16_validation,
    experiment_fig17_2d_preprocessing,
    experiment_fig18_arrangement_tree,
    experiment_fig19_region_growth,
    experiment_fig20_hyperplanes,
    experiment_fig21_cell_hyperplanes,
    experiment_fig22_preprocessing_vs_n,
    experiment_fig23_preprocessing_vs_d,
)
from repro.viz.export import write_figure_artifacts

__all__ = ["FIGURE_GENERATORS", "generate_figures", "figure_fig16_sweep", "figure_fig21_sweep"]


def figure_fig16_sweep(
    thresholds: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    **kwargs,
) -> SweepResult:
    """Figure 16 as a cumulative curve: #repaired queries within each distance threshold."""
    validation = experiment_fig16_validation(**kwargs)
    sweep = SweepResult(parameter="distance_threshold")
    series = sweep.series_named("repairs_within_threshold")
    for threshold, count in validation.cumulative_counts(thresholds).items():
        series.add(threshold, count)
    return sweep


def figure_fig21_sweep(**kwargs) -> SweepResult:
    """Figure 21 as a curve: cells sorted by the number of hyperplanes crossing them."""
    counts = np.asarray(experiment_fig21_cell_hyperplanes(**kwargs))
    sweep = SweepResult(parameter="cell_rank")
    series = sweep.series_named("hyperplanes_through_cell")
    for rank, count in enumerate(counts.tolist()):
        series.add(rank, count)
    return sweep


#: Figure name -> (generator returning a SweepResult at small scale, use a log y axis).
FIGURE_GENERATORS: Mapping[str, tuple[Callable[[], SweepResult], bool]] = {
    "fig16_validation": (
        lambda: figure_fig16_sweep(n_items=300, n_queries=60, n_cells=256, max_hyperplanes=200),
        False,
    ),
    "fig17_2d_preprocessing": (
        lambda: experiment_fig17_2d_preprocessing(n_values=(100, 200, 400)),
        True,
    ),
    "fig18_arrangement_tree": (
        lambda: experiment_fig18_arrangement_tree(hyperplane_counts=(10, 20, 40)),
        True,
    ),
    "fig19_region_growth": (
        lambda: experiment_fig19_region_growth(checkpoints=(10, 20, 40)),
        False,
    ),
    "fig20_hyperplanes": (
        lambda: experiment_fig20_hyperplanes(n_values=(50, 100, 200)),
        True,
    ),
    "fig21_cell_hyperplanes": (
        lambda: figure_fig21_sweep(n_items=60, n_cells=256, max_hyperplanes=200),
        False,
    ),
    "fig22_preprocessing_vs_n": (
        lambda: experiment_fig22_preprocessing_vs_n(n_values=(50, 100), n_cells=144,
                                                    max_hyperplanes=150),
        True,
    ),
    "fig23_preprocessing_vs_d": (
        lambda: experiment_fig23_preprocessing_vs_d(d_values=(3, 4), n_items=60, n_cells=144,
                                                    max_hyperplanes=120),
        True,
    ),
}


def generate_figures(
    directory: str | Path,
    names: Sequence[str] | None = None,
) -> dict[str, tuple[Path, Path]]:
    """Generate figure artifacts (CSV + ASCII chart) for the requested figures.

    Parameters
    ----------
    directory:
        Output directory (created if missing).
    names:
        Figure names from :data:`FIGURE_GENERATORS`; defaults to all of them.

    Returns
    -------
    dict
        Mapping from figure name to the ``(csv_path, txt_path)`` written.
    """
    selected = list(names) if names is not None else list(FIGURE_GENERATORS)
    unknown = [name for name in selected if name not in FIGURE_GENERATORS]
    if unknown:
        raise ConfigurationError(
            f"unknown figure names {unknown}; available: {sorted(FIGURE_GENERATORS)}"
        )
    written: dict[str, tuple[Path, Path]] = {}
    for name in selected:
        generator, log_y = FIGURE_GENERATORS[name]
        sweep = generator()
        written[name] = write_figure_artifacts(sweep, directory, name, title=name, log_y=log_y)
    return written
