"""Workload definitions: one function per experiment in the paper's §6.

Every table and figure of the evaluation maps to one ``experiment_*`` function
here (see the per-experiment index in DESIGN.md).  The functions accept scale
parameters so the same code can be run at paper scale (hours) or at the
scaled-down sizes used by the benchmark suite (seconds) — the paper's claims
that we reproduce are about *shapes and relative factors*, which are preserved
across scales.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.approx import ApproximatePreprocessor, md_online, md_online_lookup
from repro.core.sampling import preprocess_with_sampling, validate_index_on_dataset
from repro.core.two_dim import TwoDRaySweep
from repro.data.dataset import Dataset
from repro.data.synthetic import (
    COMPAS_SCORING_ATTRIBUTES,
    make_compas_like,
    make_dot_like,
)
from repro.experiments.harness import SweepResult
from repro.fairness.multi_attribute import MultiAttributeOracle
from repro.fairness.oracle import CountingOracle, FairnessOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.geometry.arrangement import Arrangement
from repro.geometry.arrangement_tree import ArrangementTree
from repro.geometry.cellplane import assign_hyperplanes_to_cells
from repro.geometry.dual import build_exchange_hyperplanes
from repro.geometry.partition import UniformGridPartition
from repro.core.multi_dim import SatRegions
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction

__all__ = [
    "default_compas_dataset",
    "default_compas_oracle",
    "experiment_fig16_validation",
    "experiment_sec62_layouts",
    "experiment_online_2d",
    "experiment_online_md",
    "experiment_fig17_2d_preprocessing",
    "experiment_fig18_arrangement_tree",
    "experiment_fig19_region_growth",
    "experiment_fig20_hyperplanes",
    "experiment_fig21_cell_hyperplanes",
    "experiment_fig22_preprocessing_vs_n",
    "experiment_fig23_preprocessing_vs_d",
    "experiment_sampling_dot",
    "experiment_ablation_convex_layers",
]


# --------------------------------------------------------------------------- #
# shared configuration helpers
# --------------------------------------------------------------------------- #
def default_compas_dataset(n: int = 6889, d: int = 3, seed: int = 0) -> Dataset:
    """The COMPAS-like dataset restricted to the first ``d`` scoring attributes (§6.1)."""
    dataset = make_compas_like(n=n, seed=seed)
    return dataset.project(list(COMPAS_SCORING_ATTRIBUTES[:d]))


def default_compas_oracle(
    dataset: Dataset, k: float = 0.30, slack: float = 0.10
) -> ProportionalOracle:
    """The paper's default FM1 constraint: at most share+10% African-American in the top 30%."""
    return ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=k, slack=slack
    )


# --------------------------------------------------------------------------- #
# E1 / Figure 16 — validation: distance between input and output functions
# --------------------------------------------------------------------------- #
@dataclass
class ValidationResult:
    """Outcome of the Fig. 16 validation experiment."""

    n_queries: int
    n_already_satisfactory: int
    distances: list[float] = field(default_factory=list)

    def cumulative_counts(self, thresholds: Sequence[float] = (0.2, 0.4, 0.6)) -> dict[float, int]:
        """Number of repaired queries whose suggestion lies within each distance threshold."""
        return {
            threshold: int(sum(1 for value in self.distances if value < threshold))
            for threshold in thresholds
        }

    @property
    def max_distance(self) -> float:
        """Largest suggestion distance over the repaired queries (0 if none needed repair)."""
        return max(self.distances) if self.distances else 0.0


def experiment_fig16_validation(
    n_items: int = 500,
    d: int = 3,
    n_queries: int = 100,
    n_cells: int = 1024,
    max_hyperplanes: int | None = 400,
    seed: int = 0,
) -> ValidationResult:
    """Issue random queries and measure the angle distance of the suggested repairs."""
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    oracle = default_compas_oracle(dataset)
    index = ApproximatePreprocessor(
        dataset, oracle, n_cells=n_cells, max_hyperplanes=max_hyperplanes
    ).run()
    result = ValidationResult(n_queries=n_queries, n_already_satisfactory=0)
    for query in random_queries(d, n_queries, seed=seed):
        answer = md_online(index, query)
        if answer.satisfactory:
            result.n_already_satisfactory += 1
        else:
            result.distances.append(answer.angular_distance)
    return result


# --------------------------------------------------------------------------- #
# E2–E4 / §6.2 — layout of satisfactory regions in 2-D
# --------------------------------------------------------------------------- #
@dataclass
class LayoutResult:
    """Satisfactory-region layout for one 2-D configuration of §6.2."""

    name: str
    n_regions: int
    total_satisfactory_angle: float
    max_repair_distance: float


def _layout_for(dataset: Dataset, oracle: FairnessOracle, name: str, n_queries: int, seed: int) -> LayoutResult:
    index = TwoDRaySweep(dataset, oracle).run()
    total = sum(interval.end - interval.start for interval in index.intervals)
    max_distance = 0.0
    if index.has_satisfactory_region:
        for query in random_queries(2, n_queries, seed=seed):
            answer = index.query(query)
            max_distance = max(max_distance, answer.angular_distance)
    else:
        max_distance = float("nan")
    return LayoutResult(
        name=name,
        n_regions=len(index.intervals),
        total_satisfactory_angle=total,
        max_repair_distance=max_distance,
    )


def experiment_sec62_layouts(
    n_items: int = 400, n_queries: int = 50, seed: int = 0
) -> list[LayoutResult]:
    """Reproduce the three §6.2 layout experiments (correlated FM1, race FM1, FM2)."""
    base = make_compas_like(n=n_items, seed=seed)
    results = []

    # (E2) scoring on age (younger better) and juv_other_count, FM1 on age_binary:
    # the correlation between a scoring attribute and the type attribute leaves
    # few satisfactory choices.
    dataset_age = base.project(["age", "juv_other_count"])
    oracle_age = ProportionalOracle(
        "age_binary", "35_or_younger", k=min(100, n_items // 4), max_fraction=0.70
    )
    results.append(_layout_for(dataset_age, oracle_age, "FM1 on age (correlated)", n_queries, seed))

    # (E3) same scoring attributes, FM1 on race: several satisfactory regions,
    # repairs are tiny.
    oracle_race = TopKGroupBoundOracle(
        "race", "African-American", k=min(100, n_items // 4), max_count=int(0.6 * min(100, n_items // 4))
    )
    results.append(_layout_for(dataset_age, oracle_race, "FM1 on race", n_queries, seed))

    # (E4) juv_other_count and c_days_from_compas with FM2 over sex, race and age.
    dataset_fm2 = base.project(["juv_other_count", "c_days_from_compas"])
    k = min(100, n_items // 4)
    oracle_fm2 = MultiAttributeOracle(
        [
            ("sex", "male", int(0.90 * k)),
            ("race", "African-American", int(0.60 * k)),
            ("age_bucketized", "30_or_younger", int(0.52 * k)),
        ],
        k=k,
    )
    results.append(_layout_for(dataset_fm2, oracle_fm2, "FM2 (sex, race, age)", n_queries, seed))
    return results


# --------------------------------------------------------------------------- #
# E5–E6 / §6.3 — online query answering performance
# --------------------------------------------------------------------------- #
@dataclass
class OnlineTimingResult:
    """Average per-query times for the online phase vs. the cost of just sorting."""

    label: str
    mean_query_seconds: float
    mean_ordering_seconds: float

    @property
    def speedup(self) -> float:
        """How much faster answering from the index is than sorting the data once."""
        if self.mean_query_seconds == 0:
            return float("inf")
        return self.mean_ordering_seconds / self.mean_query_seconds


def _time_queries(answer, queries, dataset) -> tuple[float, float]:
    started = time.perf_counter()
    for query in queries:
        answer(query)
    query_seconds = (time.perf_counter() - started) / len(queries)
    started = time.perf_counter()
    for query in queries:
        query.order(dataset)
    ordering_seconds = (time.perf_counter() - started) / len(queries)
    return query_seconds, ordering_seconds


def experiment_online_2d(
    n_items: int = 6889, n_queries: int = 30, seed: int = 0
) -> OnlineTimingResult:
    """2DONLINE latency vs. the cost of ordering the dataset (§6.3, 2D)."""
    dataset = default_compas_dataset(n=n_items, d=2, seed=seed)
    oracle = default_compas_oracle(dataset)
    index = TwoDRaySweep(dataset, oracle).run()
    queries = random_queries(2, n_queries, seed=seed)
    query_seconds, ordering_seconds = _time_queries(index.query, queries, dataset)
    return OnlineTimingResult("2DONLINE", query_seconds, ordering_seconds)


def experiment_online_md(
    d_values: Sequence[int] = (3, 4, 5, 6),
    n_items: int = 500,
    n_queries: int = 30,
    n_cells: int = 1024,
    max_hyperplanes: int | None = 400,
    seed: int = 0,
) -> list[OnlineTimingResult]:
    """MDONLINE latency for several dimensionalities vs. the cost of ordering (§6.3, MD).

    The timed query path is the index lookup (``md_online_lookup``): locating
    the query's cell and returning its assigned function.  This is the
    dataset-size-independent cost the paper reports for MDONLINE; the initial
    "is the query already satisfactory?" check of Algorithm 11 costs exactly
    one ordering and is reported separately as ``mean_ordering_seconds``.
    """
    results = []
    for d in d_values:
        dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
        oracle = default_compas_oracle(dataset)
        index = ApproximatePreprocessor(
            dataset, oracle, n_cells=n_cells, max_hyperplanes=max_hyperplanes
        ).run()
        queries = random_queries(d, n_queries, seed=seed)
        query_seconds, ordering_seconds = _time_queries(
            lambda query: md_online_lookup(index, query), queries, dataset
        )
        results.append(OnlineTimingResult(f"MDONLINE d={d}", query_seconds, ordering_seconds))
    return results


# --------------------------------------------------------------------------- #
# E7 / Figure 17 — 2-D preprocessing cost vs. n
# --------------------------------------------------------------------------- #
def experiment_fig17_2d_preprocessing(
    n_values: Sequence[int] = (100, 200, 400, 800), seed: int = 0
) -> SweepResult:
    """Number of ordering exchanges and ray-sweep time as the dataset grows."""
    result = SweepResult(parameter="n")
    exchanges_series = result.series_named("ordering_exchanges")
    time_series = result.series_named("preprocess_seconds")
    for n in n_values:
        dataset = default_compas_dataset(n=n, d=2, seed=seed)
        oracle = default_compas_oracle(dataset)
        started = time.perf_counter()
        index = TwoDRaySweep(dataset, oracle).run()
        elapsed = time.perf_counter() - started
        exchanges_series.add(n, index.n_exchanges)
        time_series.add(n, elapsed)
    return result


# --------------------------------------------------------------------------- #
# E8 / Figure 18 and E9 / Figure 19 — arrangement construction
# --------------------------------------------------------------------------- #
def experiment_fig18_arrangement_tree(
    n_items: int = 60,
    d: int = 3,
    hyperplane_counts: Sequence[int] = (10, 20, 40, 80),
    seed: int = 0,
) -> SweepResult:
    """Arrangement construction time: flat region list vs. arrangement tree."""
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    hyperplanes = build_exchange_hyperplanes(dataset)
    result = SweepResult(parameter="hyperplanes")
    baseline_series = result.series_named("baseline_seconds")
    tree_series = result.series_named("arrangement_tree_seconds")
    for count in hyperplane_counts:
        subset = hyperplanes[: min(count, len(hyperplanes))]
        started = time.perf_counter()
        Arrangement.build(subset, dimension=d - 1)
        baseline_series.add(len(subset), time.perf_counter() - started)
        started = time.perf_counter()
        tree = ArrangementTree(dimension=d - 1)
        for hyperplane in subset:
            tree.insert(hyperplane)
        tree_series.add(len(subset), time.perf_counter() - started)
    return result


def experiment_fig19_region_growth(
    n_items: int = 60,
    d: int = 3,
    checkpoints: Sequence[int] = (10, 20, 40, 80),
    seed: int = 0,
) -> SweepResult:
    """Number of arrangement regions as hyperplanes are added incrementally."""
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    hyperplanes = build_exchange_hyperplanes(dataset)
    result = SweepResult(parameter="hyperplanes")
    regions_series = result.series_named("regions")
    arrangement = Arrangement(dimension=d - 1)
    inserted = 0
    for checkpoint in checkpoints:
        target = min(checkpoint, len(hyperplanes))
        while inserted < target:
            arrangement.insert(hyperplanes[inserted])
            inserted += 1
        regions_series.add(inserted, arrangement.n_regions)
    return result


# --------------------------------------------------------------------------- #
# E10 / Figure 20 — number of hyperplanes vs. n
# --------------------------------------------------------------------------- #
def experiment_fig20_hyperplanes(
    n_values: Sequence[int] = (50, 100, 200, 400), d: int = 3, seed: int = 0
) -> SweepResult:
    """|H| (exchange hyperplanes) and construction time as the dataset grows."""
    result = SweepResult(parameter="n")
    count_series = result.series_named("hyperplanes")
    time_series = result.series_named("construction_seconds")
    for n in n_values:
        dataset = default_compas_dataset(n=n, d=d, seed=seed)
        started = time.perf_counter()
        hyperplanes = build_exchange_hyperplanes(dataset)
        time_series.add(n, time.perf_counter() - started)
        count_series.add(n, len(hyperplanes))
    return result


# --------------------------------------------------------------------------- #
# E11 / Figure 21 — hyperplanes per cell
# --------------------------------------------------------------------------- #
def experiment_fig21_cell_hyperplanes(
    n_items: int = 100, d: int = 4, n_cells: int = 1296, max_hyperplanes: int | None = 600,
    seed: int = 0,
) -> np.ndarray:
    """Sorted number of hyperplanes passing through each cell (the Fig. 21 curve)."""
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    hyperplanes = build_exchange_hyperplanes(dataset)
    if max_hyperplanes is not None:
        hyperplanes = hyperplanes[:max_hyperplanes]
    partition = UniformGridPartition(d - 1, n_cells)
    index = assign_hyperplanes_to_cells(partition, hyperplanes)
    return np.sort(index.counts())


# --------------------------------------------------------------------------- #
# E12–E13 / Figures 22–23 — preprocessing step times
# --------------------------------------------------------------------------- #
def experiment_fig22_preprocessing_vs_n(
    n_values: Sequence[int] = (50, 100, 200),
    d: int = 3,
    n_cells: int = 400,
    max_hyperplanes: int | None = 300,
    seed: int = 0,
) -> SweepResult:
    """Per-step preprocessing times of the approximate pipeline as ``n`` grows."""
    result = SweepResult(parameter="n")
    for n in n_values:
        dataset = default_compas_dataset(n=n, d=d, seed=seed)
        oracle = default_compas_oracle(dataset)
        index = ApproximatePreprocessor(
            dataset, oracle, n_cells=n_cells, max_hyperplanes=max_hyperplanes
        ).run()
        timings = index.timings
        result.series_named("hyperplane_seconds").add(n, timings.hyperplane_construction)
        result.series_named("cell_plane_seconds").add(n, timings.cell_plane_assignment)
        result.series_named("mark_cell_seconds").add(n, timings.mark_cells)
        result.series_named("coloring_seconds").add(n, timings.cell_coloring)
        result.series_named("total_seconds").add(n, timings.total)
    return result


def experiment_fig23_preprocessing_vs_d(
    d_values: Sequence[int] = (3, 4, 5),
    n_items: int = 100,
    n_cells: int = 400,
    max_hyperplanes: int | None = 200,
    seed: int = 0,
) -> SweepResult:
    """Per-step preprocessing times of the approximate pipeline as ``d`` grows."""
    result = SweepResult(parameter="d")
    for d in d_values:
        dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
        oracle = default_compas_oracle(dataset)
        index = ApproximatePreprocessor(
            dataset, oracle, n_cells=n_cells, max_hyperplanes=max_hyperplanes
        ).run()
        timings = index.timings
        result.series_named("hyperplane_seconds").add(d, timings.hyperplane_construction)
        result.series_named("cell_plane_seconds").add(d, timings.cell_plane_assignment)
        result.series_named("mark_cell_seconds").add(d, timings.mark_cells)
        result.series_named("coloring_seconds").add(d, timings.cell_coloring)
        result.series_named("total_seconds").add(d, timings.total)
    return result


# --------------------------------------------------------------------------- #
# E14 / §6.4 — sampling for large-scale settings
# --------------------------------------------------------------------------- #
@dataclass
class SamplingResult:
    """Outcome of the §6.4 sampling experiment on the DOT-like dataset."""

    full_size: int
    sample_size: int
    preprocess_seconds: float
    n_functions_checked: int
    n_satisfactory_on_full: int

    @property
    def all_satisfactory(self) -> bool:
        """True when every sampled-index function remains satisfactory on the full data."""
        return self.n_functions_checked > 0 and (
            self.n_satisfactory_on_full == self.n_functions_checked
        )


def experiment_sampling_dot(
    full_size: int = 200_000,
    sample_size: int = 1000,
    n_cells: int = 400,
    max_hyperplanes: int | None = 300,
    top_fraction: float = 0.10,
    slack: float = 0.05,
    seed: int = 0,
) -> SamplingResult:
    """Preprocess a DOT-like dataset on a uniform sample and validate on the full data."""
    dataset = make_dot_like(n=full_size, seed=seed)
    oracle = MultiAttributeOracle(
        [
            ProportionalOracle.at_most_share_plus_slack(
                dataset, "carrier", carrier, k=top_fraction, slack=slack
            )
            for carrier in ("DL", "AA", "WN", "UA")
        ],
        k=top_fraction,
    )
    started = time.perf_counter()
    index = preprocess_with_sampling(
        dataset,
        oracle,
        sample_size=sample_size,
        n_cells=n_cells,
        seed=seed,
        max_hyperplanes=max_hyperplanes,
    )
    elapsed = time.perf_counter() - started
    report = validate_index_on_dataset(index, dataset, oracle)
    return SamplingResult(
        full_size=full_size,
        sample_size=sample_size,
        preprocess_seconds=elapsed,
        n_functions_checked=report.n_functions_checked,
        n_satisfactory_on_full=report.n_satisfactory,
    )


# --------------------------------------------------------------------------- #
# A2 — ablation of the convex-layer (onion) filter
# --------------------------------------------------------------------------- #
def experiment_ablation_convex_layers(
    n_items: int = 80, d: int = 3, k: int = 20, seed: int = 0
) -> dict[str, float]:
    """Compare exchange-hyperplane counts and SATREGIONS time with and without the §8 filter."""
    dataset = default_compas_dataset(n=n_items, d=d, seed=seed)
    oracle = CountingOracle(
        TopKGroupBoundOracle("race", "African-American", k=k, max_count=int(0.6 * k))
    )
    results: dict[str, float] = {}
    for label, layer_k in (("full", None), ("convex_layers", k)):
        builder = SatRegions(
            dataset, oracle, use_arrangement_tree=True, max_hyperplanes=60, convex_layer_k=layer_k
        )
        started = time.perf_counter()
        hyperplanes = builder.build_hyperplanes()
        index = builder.run()
        results[f"{label}_seconds"] = time.perf_counter() - started
        results[f"{label}_hyperplanes"] = float(len(hyperplanes))
        results[f"{label}_satisfactory_regions"] = float(len(index.satisfactory_regions))
    return results
