"""The injectable monotonic-clock seam.

Observability code (:mod:`repro.obs`) must never call ``time.*`` directly —
the ``obs-clock`` contract rule (:mod:`repro.analysis.rules`) enforces that
every timestamp flows through an injectable clock so two identical runs under
:class:`repro.resilience.policy.FakeClock` export byte-identical traces and
metrics snapshots.  This module is the one place the real clock is named:
it lives *outside* ``repro.obs`` so the rule can stay absolute there.

``monotonic_clock`` is the production default (``time.monotonic`` — legal
under the ``determinism`` rule, which only bans wall-clock reads).  Tests and
replayers pass their own zero-argument ``() -> float`` callable instead.
"""

from __future__ import annotations

import time
from typing import Callable

#: Zero-argument callable returning monotonically non-decreasing seconds.
Clock = Callable[[], float]

#: The production clock; inject a ``FakeClock`` for deterministic runs.
monotonic_clock: Clock = time.monotonic

__all__ = ["Clock", "monotonic_clock"]
