"""Sharded parallel preprocessing, bit-identical to the serial path.

The serial preprocessing entry points already enumerate exchange pairs in
bounded-memory row blocks (:func:`repro.data.dominance.iter_exchange_pair_chunks`)
and construct hyperplanes per chunk
(:func:`repro.geometry.dual.hyperplanes_for_dataset`).  This module fans the
very same blocks out over a ``ProcessPoolExecutor``:

* every worker runs :func:`repro.data.dominance.exchange_pairs_for_block` —
  the exact kernel the serial generator runs — over the exact block bounds
  the serial chunking would use;
* per-pair construction (``hyperpolar_many`` / the scalar reference loop) is
  independent per pair, so constructing a whole block in a worker and taking
  a prefix in the parent equals constructing the prefix serially;
* the parent merges results **in chunk-submission order**, never in
  completion order, so the assembled list is bit-identical to the serial one
  regardless of worker count or scheduling;
* ``max_hyperplanes`` is honoured across shards: the parent truncates the
  merged list at the cap, then cancels every not-yet-started chunk.

Workers call :func:`repro.obs.trace.reset_stage_recorder` first thing (stage
spans degrade to no-ops in children) and re-seed their RNG from
:func:`repro.parallel.shards.derive_shard_seed` at the start of every chunk,
so no worker ever observes inherited recorder state or OS entropy.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.data.dominance import default_row_chunk_size, exchange_pairs_for_block
from repro.exceptions import ConfigurationError, DatasetError, GeometryError
from repro.geometry.dual import (
    HYPERPLANE_METHODS,
    _hyperpolar_unchecked,
    build_exchange_angles_2d,
    hyperpolar_many,
    hyperplanes_for_dataset,
)
from repro.geometry.hyperplane import Hyperplane
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import reset_stage_recorder, stage_span
from repro.parallel.shards import derive_shard_seed, plan_shards

__all__ = [
    "make_parallel_exchange_builder",
    "parallel_exchange_angles_2d",
    "parallel_hyperplanes_for_dataset",
]

# Worker-process globals, populated once per worker by the initializers below
# (pickled through ``initargs``; with a fork start method they are inherited
# copy-on-write, so large score matrices are not re-pickled per chunk).
_SCORES: np.ndarray | None = None
_RESTRICTED: np.ndarray | None = None
_INDICES: np.ndarray | None = None
_METHOD: str = "batched"
_BASE_SEED: int = 0
_RNG: np.random.Generator | None = None


def _require_workers(n_workers: int) -> int:
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


def _executor(n_workers: int, start_method: str | None, initializer, initargs):
    context = get_context(start_method) if start_method is not None else None
    return ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=context,
        initializer=initializer,
        initargs=initargs,
    )


# ---------------------------------------------------------------------- #
# d >= 3: sharded hyperplane construction
# ---------------------------------------------------------------------- #
def _init_hyperplane_worker(
    scores: np.ndarray,
    restricted: np.ndarray,
    indices: np.ndarray,
    method: str,
    base_seed: int,
) -> None:
    """Per-worker setup: detach inherited obs state, pin the shared inputs."""
    global _SCORES, _RESTRICTED, _INDICES, _METHOD, _BASE_SEED
    reset_stage_recorder()
    _SCORES = scores
    _RESTRICTED = restricted
    _INDICES = indices
    _METHOD = method
    _BASE_SEED = base_seed


def _hyperplane_chunk_task(chunk_index: int, start: int, stop: int) -> list[Hyperplane]:
    """Construct every hyperplane of one pair-enumeration block, uncapped.

    Runs in a worker process.  The parent applies the ``max_hyperplanes``
    prefix truncation while merging — construction is independent per pair,
    so block-then-prefix equals prefix-then-block.
    """
    global _RNG
    _RNG = np.random.default_rng(derive_shard_seed(_BASE_SEED, chunk_index))
    position_pairs = exchange_pairs_for_block(_RESTRICTED, start, stop)
    if position_pairs.shape[0] == 0:
        return []
    global_pairs = _INDICES[position_pairs]
    if _METHOD == "batched":
        return hyperpolar_many(_SCORES, global_pairs)
    return [
        _hyperpolar_unchecked(_SCORES[i], _SCORES[j], (i, j))
        for i, j in global_pairs.tolist()
    ]


def parallel_hyperplanes_for_dataset(
    dataset: Dataset,
    item_indices: np.ndarray | None = None,
    *,
    method: str = "batched",
    n_workers: int = 1,
    pair_chunk_size: int | None = None,
    max_hyperplanes: int | None = None,
    start_method: str | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
) -> list[Hyperplane]:
    """Sharded-parallel :func:`repro.geometry.dual.hyperplanes_for_dataset`.

    Returns a list bit-identical to the serial entry point for every
    combination of ``n_workers``, ``pair_chunk_size`` and ``max_hyperplanes``
    (see the module docstring for the argument).  ``n_workers=1`` simply
    delegates to the serial function.

    Extra parameters over the serial signature
    ------------------------------------------
    n_workers:
        Worker processes to fan the pair-enumeration blocks over.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); defaults to the platform default.
    seed:
        Base seed the per-chunk worker RNG re-seeding derives from.
    metrics:
        Optional registry; increments ``preprocess.parallel_chunks`` and
        ``preprocess.parallel_hyperplanes`` counters.
    """
    _require_workers(n_workers)
    if n_workers == 1:
        return hyperplanes_for_dataset(
            dataset,
            item_indices,
            method=method,
            pair_chunk_size=pair_chunk_size,
            max_hyperplanes=max_hyperplanes,
        )
    if dataset.n_attributes < 3:
        raise GeometryError("hyperplanes_for_dataset requires d >= 3")
    if method not in HYPERPLANE_METHODS:
        raise GeometryError(
            f"unknown hyperplane construction method {method!r}; "
            f"expected one of {HYPERPLANE_METHODS}"
        )
    if max_hyperplanes is not None and max_hyperplanes < 0:
        raise GeometryError("max_hyperplanes must be non-negative")
    if max_hyperplanes == 0:
        return []
    if item_indices is None:
        indices = np.arange(dataset.n_items)
    else:
        indices = np.asarray(item_indices, dtype=int)
    scores = dataset.scores
    restricted = scores[indices]
    m, d = restricted.shape
    row_chunk_size = (
        pair_chunk_size if pair_chunk_size is not None else default_row_chunk_size(m, d)
    )
    if row_chunk_size < 1:
        raise DatasetError("row_chunk_size must be >= 1")
    bounds = plan_shards(m, row_chunk_size)
    if not bounds:
        return []

    hyperplanes: list[Hyperplane] = []
    with _executor(
        min(n_workers, len(bounds)),
        start_method,
        _init_hyperplane_worker,
        (scores, restricted, indices, method, seed),
    ) as executor:
        futures = [
            executor.submit(_hyperplane_chunk_task, chunk_index, start, stop)
            for chunk_index, (start, stop) in enumerate(bounds)
        ]
        # Merge strictly in chunk-submission order: completion order never
        # influences the output, only how long the parent blocks per future.
        for chunk_index, future in enumerate(futures):
            with stage_span(
                "preprocess.parallel_chunk", chunk=chunk_index, n_workers=n_workers
            ) as span:
                chunk_planes = future.result()
                if max_hyperplanes is not None:
                    chunk_planes = chunk_planes[: max_hyperplanes - len(hyperplanes)]
                if span is not None:
                    span.set("n_hyperplanes", len(chunk_planes))
            hyperplanes.extend(chunk_planes)
            if metrics is not None:
                metrics.counter("preprocess.parallel_chunks").inc()
                metrics.counter("preprocess.parallel_hyperplanes").inc(len(chunk_planes))
            if max_hyperplanes is not None and len(hyperplanes) >= max_hyperplanes:
                for outstanding in futures[chunk_index + 1 :]:
                    outstanding.cancel()
                break
    return hyperplanes


# ---------------------------------------------------------------------- #
# d == 2: sharded exchange-angle enumeration
# ---------------------------------------------------------------------- #
def _init_angle_worker(scores: np.ndarray, base_seed: int) -> None:
    """Per-worker setup for the 2-D angle path."""
    global _SCORES, _BASE_SEED
    reset_stage_recorder()
    _SCORES = scores
    _BASE_SEED = base_seed


def _angle_chunk_task(
    chunk_index: int, start: int, stop: int
) -> list[tuple[float, int, int]]:
    """Enumerate one block's exchange angles; runs in a worker process."""
    global _RNG
    _RNG = np.random.default_rng(derive_shard_seed(_BASE_SEED, chunk_index))
    pairs = exchange_pairs_for_block(_SCORES, start, stop)
    if pairs.shape[0] == 0:
        return []
    differences = _SCORES[pairs[:, 0]] - _SCORES[pairs[:, 1]]
    # Same Eq. 2 kernel as build_exchange_angles_2d, applied block-wise.
    angles = np.arctan2(np.abs(differences[:, 0]), np.abs(differences[:, 1]))
    return [
        (float(angle), int(i), int(j))
        for angle, i, j in zip(
            angles.tolist(), pairs[:, 0].tolist(), pairs[:, 1].tolist()
        )
    ]


def parallel_exchange_angles_2d(
    dataset: Dataset,
    *,
    n_workers: int = 1,
    row_chunk_size: int | None = None,
    start_method: str | None = None,
    seed: int = 0,
) -> list[tuple[float, int, int]]:
    """Sharded-parallel :func:`repro.geometry.dual.build_exchange_angles_2d`.

    Concatenating block results in chunk order reproduces the serial triple
    list exactly (same pairs, same row-major order, same ``arctan2`` bits);
    ``n_workers=1`` delegates to the serial function.
    """
    _require_workers(n_workers)
    if n_workers == 1:
        return build_exchange_angles_2d(dataset)
    if dataset.n_attributes != 2:
        raise GeometryError("build_exchange_angles_2d requires a 2-attribute dataset")
    scores = dataset.scores
    n = dataset.n_items
    if row_chunk_size is None:
        row_chunk_size = default_row_chunk_size(n, 2)
    if row_chunk_size < 1:
        raise DatasetError("row_chunk_size must be >= 1")
    bounds = plan_shards(n, row_chunk_size)
    if not bounds:
        return []

    exchanges: list[tuple[float, int, int]] = []
    with _executor(
        min(n_workers, len(bounds)), start_method, _init_angle_worker, (scores, seed)
    ) as executor:
        futures = [
            executor.submit(_angle_chunk_task, chunk_index, start, stop)
            for chunk_index, (start, stop) in enumerate(bounds)
        ]
        for chunk_index, future in enumerate(futures):
            with stage_span(
                "preprocess.parallel_chunk", chunk=chunk_index, n_workers=n_workers
            ) as span:
                chunk = future.result()
                if span is not None:
                    span.set("n_exchanges", len(chunk))
            exchanges.extend(chunk)
    return exchanges


def make_parallel_exchange_builder(
    n_workers: int,
    *,
    row_chunk_size: int | None = None,
    start_method: str | None = None,
    seed: int = 0,
) -> Callable[[Dataset], list[tuple[float, int, int]]]:
    """Exchange-builder closure for :class:`repro.core.two_dim.TwoDRaySweep`.

    The ray sweep accepts any ``dataset -> [(angle, i, j), ...]`` callable as
    its ``exchange_builder`` seam; this wraps
    :func:`parallel_exchange_angles_2d` with a fixed worker count so
    ``TwoDEngine`` can inject sharded enumeration when
    ``preprocess_workers > 1``.
    """
    _require_workers(n_workers)

    def build(dataset: Dataset) -> list[tuple[float, int, int]]:
        return parallel_exchange_angles_2d(
            dataset,
            n_workers=n_workers,
            row_chunk_size=row_chunk_size,
            start_method=start_method,
            seed=seed,
        )

    return build
