"""Sharded parallel preprocessing and the process-pool serving engine.

Both halves of this package fan embarrassingly parallel work out over
``concurrent.futures.ProcessPoolExecutor`` while keeping the repository's
standing guarantee: the parallel result is **bit-identical** to the serial
reference, regardless of worker count, shard size or completion order.

* :mod:`repro.parallel.shards` — shard planning and the deterministic
  per-shard seed derivation every worker re-seeds from;
* :mod:`repro.parallel.preprocess` — the sharded preprocessing driver over
  :func:`repro.data.dominance.exchange_pairs_for_block` (the exact block
  kernel the serial :func:`~repro.data.dominance.iter_exchange_pair_chunks`
  generator runs), with deterministic chunk-order merging and
  ``max_hyperplanes`` early stop across shards;
* :mod:`repro.parallel.pool` — :class:`~repro.parallel.pool.PoolEngine`, a
  registered engine (name ``"pool"``, config
  :class:`~repro.parallel.pool.PoolConfig`) sharding ``suggest_many``
  batches across worker processes over one shared read-only index.

See ``docs/parallelism.md`` for the shard/merge protocol, the determinism
argument and the worker-failure semantics.
"""

from repro.parallel.pool import PoolConfig, PoolEngine
from repro.parallel.preprocess import (
    parallel_exchange_angles_2d,
    parallel_hyperplanes_for_dataset,
)
from repro.parallel.shards import derive_shard_seed, plan_shards

__all__ = [
    "PoolConfig",
    "PoolEngine",
    "derive_shard_seed",
    "parallel_exchange_angles_2d",
    "parallel_hyperplanes_for_dataset",
    "plan_shards",
]
