"""The engine pool: ``suggest_many`` sharded across worker processes.

:class:`PoolEngine` is a :class:`~repro.core.engine.QueryEngine` registered in
the ordinary engine registry (name ``"pool"``, configured by the typed
:class:`PoolConfig`) — per the PR-2 seam discipline it is a registered engine
*wrapping* a persistable inner engine, not a facade branch.  The offline
phase preprocesses the inner engine once in the parent and saves it through
:func:`repro.io.index_store.save_engine`; every worker process loads that one
read-only index file exactly once (in its pool initializer), after pinning
the file's checksum-envelope digest against the digest the parent recorded —
a worker that sees different index bytes refuses to serve.

Serving semantics:

* ``suggest_many`` splits the weight matrix into contiguous shards, fans the
  shards over the pool, and merges the per-shard answers **in shard order**
  — so the output is bit-identical to the serial engine's regardless of
  worker count or completion order;
* every worker serves through a single-tier
  :class:`~repro.resilience.fallback.FallbackEngine` chain around the loaded
  engine, so per-query faults come back as structured
  :class:`~repro.resilience.fallback.QueryFailure` records with exactly the
  tier labels a single-process chain would produce (the parent re-bases the
  shard-local failure indices to batch positions);
* a worker death (``BrokenProcessPool``) poisons only its own shard's
  queries: the affected shards are retried once, each in a fresh isolated
  single-worker executor, and a shard that kills its worker again
  deterministically comes back as :class:`QueryFailure` records for that
  shard alone — other shards' answers are unaffected;
* :class:`~repro.exceptions.NotPreprocessedError` and
  :class:`~repro.exceptions.NoSatisfactoryFunctionError` pass through from
  workers to the caller, exactly as the serial chain passes them through.

Observability: the parent increments ``pool.*`` counters on an injectable
:class:`~repro.obs.metrics.MetricsRegistry` and opens one ``pool.shard``
stage span per shard when a recorder is active; workers detach any inherited
recorder state (:func:`repro.obs.trace.reset_stage_recorder`) and re-seed
their RNG per shard from :func:`repro.parallel.shards.derive_shard_seed`.

``n_workers=1`` serves inline through the same single-tier chain in the
parent process — no worker processes, no pickling, identical results.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.engine import (
    EngineCapabilities,
    EngineConfig,
    create_engine,
    engine_name_for_config,
    get_engine,
    register_engine,
)
from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, NotPreprocessedError
from repro.fairness.oracle import FairnessOracle
from repro.io.index_store import load_engine, read_store_digest, save_engine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import reset_stage_recorder, stage_span
from repro.parallel.shards import derive_shard_seed, plan_shards, shard_size_for
from repro.ranking.scoring import LinearScoringFunction
from repro.resilience.fallback import _PASS_THROUGH, FallbackEngine, QueryFailure, TierError

__all__ = ["PoolConfig", "PoolEngine"]


@dataclass(frozen=True)
class PoolConfig:
    """Configuration of a process-pool serving engine.

    Attributes
    ----------
    inner:
        Typed config of the engine every worker serves with.  Must select a
        *persistable* registered engine (the index is shared through one
        saved file), which rules out the serving-layer composites —
        ``fallback``, ``instrumented`` and ``pool`` itself.  ``None`` selects
        the default for the dataset's dimensionality at construction time
        (the 2-D ray sweep in 2-D, the exact pipeline otherwise).
    n_workers:
        Worker processes in the pool (``1`` = serve inline, no processes).
    shard_size:
        Queries per shard; defaults to one contiguous slice per worker.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); defaults to the platform default.
    seed:
        Base seed for the deterministic per-shard worker RNG re-seeding.
    """

    inner: EngineConfig | None = None
    n_workers: int = 2
    shard_size: int | None = None
    start_method: str | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.inner is not None:
            _require_persistable_config(self.inner)


def _require_persistable_config(config: Any) -> str:
    """Resolve a config to its engine name, requiring a persistable engine."""
    name = engine_name_for_config(config)
    if not get_engine(name).capabilities().persistable:
        raise ConfigurationError(
            f"the pool's inner engine must be persistable (its index is shared "
            f"with the workers through one saved file); engine {name!r} is not"
        )
    return name


# ---------------------------------------------------------------------- #
# worker-process side
# ---------------------------------------------------------------------- #
_CHAIN: FallbackEngine | None = None
_ORACLE: FairnessOracle | None = None
_BASE_SEED: int = 0
_RNG: np.random.Generator | None = None


def _init_pool_worker(
    index_path: str,
    oracle: FairnessOracle,
    base_seed: int,
    expected_digest: str | None,
) -> None:
    """Load the shared index exactly once per worker process.

    The digest the parent recorded when it saved the index pins the exact
    bytes every worker must serve from; a mismatch means the file changed
    underneath the pool and the worker refuses to start (the resulting
    ``BrokenProcessPool`` surfaces the corruption loudly instead of serving
    silently divergent answers).
    """
    global _CHAIN, _ORACLE, _BASE_SEED
    reset_stage_recorder()
    if expected_digest is not None:
        digest = read_store_digest(index_path)
        if digest != expected_digest:
            from repro.exceptions import IndexIntegrityError

            raise IndexIntegrityError(
                f"the shared index at {index_path} changed underneath the pool "
                f"(expected digest {expected_digest[:12]}…, found "
                f"{str(digest)[:12]}…)",
                path=index_path,
            )
    engine = load_engine(index_path, oracle)
    _CHAIN = FallbackEngine.from_engines([engine]).preprocess()
    _ORACLE = oracle
    _BASE_SEED = base_seed


def _pool_worker_task(
    shard_index: int, rows: np.ndarray
) -> tuple[list, int | float]:
    """Serve one shard through the worker's single-tier chain.

    Returns ``(entries, oracle_calls_delta)`` where entries are
    :class:`SuggestionResult` / :class:`QueryFailure` records with
    *shard-local* indices (the parent re-bases them).  The two pass-through
    exception types propagate through the future to the parent.
    """
    global _RNG
    if _CHAIN is None:
        raise NotPreprocessedError("pool worker initialised without an index")
    _RNG = np.random.default_rng(derive_shard_seed(_BASE_SEED, shard_index))
    before = getattr(_ORACLE, "calls", None)
    entries = _CHAIN.suggest_many(rows)
    delta = (getattr(_ORACLE, "calls", 0) - before) if before is not None else 0
    return entries, delta


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
@register_engine("pool", PoolConfig)
class PoolEngine:
    """Process-pool serving over one persistable inner engine; see module docstring."""

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        config: PoolConfig | None = None,
        *,
        inner_engine: Any = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        config = config if config is not None else PoolConfig()
        if not isinstance(config, PoolConfig):
            raise ConfigurationError(
                f"PoolEngine expects a PoolConfig, got {type(config).__name__}"
            )
        self.dataset = dataset
        self.oracle = oracle
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if inner_engine is None:
            inner_config = (
                config.inner
                if config.inner is not None
                else self._default_inner(dataset)
            )
            _require_persistable_config(inner_config)
            config = PoolConfig(
                inner=inner_config,
                n_workers=config.n_workers,
                shard_size=config.shard_size,
                start_method=config.start_method,
                seed=config.seed,
            )
            inner_engine = create_engine(dataset, oracle, inner_config)
        else:
            _require_persistable_config(inner_engine.config)
        self.config = config
        self._inner = inner_engine
        self._executor: ProcessPoolExecutor | None = None
        self._local_chain: FallbackEngine | None = None
        self._tempdir: tempfile.TemporaryDirectory | None = None
        self._index_path: Path | None = None
        self._index_digest: str | None = None
        #: Cumulative oracle calls made inside worker processes (the parent
        #: oracle's own ``calls`` counter never sees them).
        self.remote_oracle_calls: int | float = 0

    @staticmethod
    def _default_inner(dataset: Dataset) -> EngineConfig:
        from repro.core.engine import ExactConfig, TwoDConfig

        if dataset.n_attributes == 2:
            return TwoDConfig()
        return ExactConfig()

    @classmethod
    def from_engine(
        cls,
        engine: Any,
        *,
        n_workers: int = 2,
        shard_size: int | None = None,
        start_method: str | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> "PoolEngine":
        """Wrap an already-constructed (typically preprocessed) engine in a pool.

        The engine's own typed config stays authoritative — it is what the
        workers rebuild from the shared index file.
        """
        return cls(
            engine.dataset,
            engine.oracle,
            PoolConfig(
                inner=engine.config,
                n_workers=n_workers,
                shard_size=shard_size,
                start_method=start_method,
                seed=seed,
            ),
            inner_engine=engine,
            metrics=metrics,
        )

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def preprocess(
        self, dataset: Dataset | None = None, oracle: FairnessOracle | None = None
    ) -> "PoolEngine":
        """Preprocess the inner engine (if needed) and publish its index file."""
        if dataset is not None:
            self.dataset = dataset
        if oracle is not None:
            self.oracle = oracle
        if not self._inner.is_preprocessed or dataset is not None or oracle is not None:
            self._inner.preprocess(dataset, oracle)
        self._publish_index()
        return self

    @property
    def is_preprocessed(self) -> bool:
        return self._inner.is_preprocessed

    @property
    def index(self) -> Any:
        """The inner engine's offline index."""
        return self._inner.index

    @property
    def inner_engine(self) -> Any:
        """The wrapped engine (answers single queries, owns the index)."""
        return self._inner

    @property
    def index_digest(self) -> str | None:
        """Checksum-envelope digest of the published shared index file."""
        return self._index_digest

    def _publish_index(self) -> None:
        """Save the inner engine to the pool-owned index file workers load."""
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-pool-")
        path = Path(self._tempdir.name) / "index.json"
        save_engine(self._inner, path)
        self._index_path = path
        self._index_digest = read_store_digest(path)
        # Workers of an existing pool hold the previous index: retire them.
        self._shutdown_executor()
        self._local_chain = None

    def _ensure_published(self) -> None:
        if self._index_path is None:
            if not self._inner.is_preprocessed:
                raise NotPreprocessedError("call preprocess() first")
            self._publish_index()

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: Any) -> Any:
        """Apply a dataset delta to the inner engine and republish its index.

        Republishing rewrites the pool-owned index file and re-pins its
        checksum digest, which retires the current executor: the next batch
        spins up fresh workers that load the maintained index.  The delta
        therefore propagates to every worker through the same digest-pinning
        mechanism that guards against index corruption — a worker can never
        serve from pre-delta bytes.
        """
        report = self._inner.apply_delta(delta)
        self.dataset = self._inner.dataset
        self.metrics.counter("pool.index_republished").inc()
        self._publish_index()
        return report

    def refresh(self) -> Any:
        """Refresh the inner engine's oracle-dependent stages and republish."""
        report = self._inner.refresh()
        self.metrics.counter("pool.index_republished").inc()
        self._publish_index()
        return report

    @property
    def journal(self) -> tuple:
        """The inner engine's applied-delta journal (pools serialise as it)."""
        return self._inner.journal

    @property
    def base_payload(self) -> dict | None:
        """The inner engine's pre-delta base snapshot, for journaled saves."""
        return self._inner.base_payload

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        """Answer one query on the inner engine in-process.

        A single query never amortises the IPC round-trip, so ``suggest``
        always serves locally — bit-identical to the unwrapped engine.
        """
        return self._inner.suggest(function)

    def suggest_many(self, weights_matrix: Any) -> list:
        """Answer a batch across the pool; see the module docstring for semantics."""
        matrix = np.asarray(weights_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dataset.n_attributes:
            raise ConfigurationError(
                f"suggest_many expects a (q, {self.dataset.n_attributes}) weight "
                f"matrix, got shape {matrix.shape}"
            )
        self._ensure_published()
        q = matrix.shape[0]
        self.metrics.counter("pool.batches").inc()
        self.metrics.counter("pool.queries").inc(q)
        if q == 0:
            return []
        if self.config.n_workers == 1:
            return self._ensure_local_chain().suggest_many(matrix)

        shard_size = (
            self.config.shard_size
            if self.config.shard_size is not None
            else shard_size_for(q, self.config.n_workers)
        )
        bounds = plan_shards(q, shard_size)
        self.metrics.counter("pool.shards").inc(len(bounds))

        results_by_shard: dict[int, list] = {}
        retry: list[int] = []
        executor = self._ensure_executor(len(bounds))
        futures: list[Future] = [
            executor.submit(_pool_worker_task, shard, matrix[lo:hi])
            for shard, (lo, hi) in enumerate(bounds)
        ]
        # Consume strictly in shard-submission order: completion order never
        # influences the merged output, only how long the parent blocks.
        for shard, ((lo, hi), future) in enumerate(zip(bounds, futures)):
            with stage_span("pool.shard", shard=shard, n_queries=hi - lo) as span:
                try:
                    entries, oracle_delta = future.result()
                except _PASS_THROUGH:
                    for outstanding in futures[shard + 1 :]:
                        outstanding.cancel()
                    raise
                except BrokenProcessPool:
                    # The executor is dead; every unfinished shard lands here
                    # too.  Completed shards keep their results.
                    self._shutdown_executor()
                    retry.append(shard)
                    if span is not None:
                        span.set("broken", True)
                    continue
                self._account_shard(shard, entries, oracle_delta, results_by_shard)
                if span is not None:
                    span.set("n_failures", _failure_count(entries))

        if retry:
            # Retry each affected shard once, isolated in its own fresh
            # single-worker executor: a shard whose queries deterministically
            # kill a worker fails alone instead of re-poisoning a shared pool.
            self.metrics.counter("pool.worker_restarts").inc(len(retry))
            for shard in retry:
                lo, hi = bounds[shard]
                with stage_span(
                    "pool.shard", shard=shard, n_queries=hi - lo, retry=True
                ) as span:
                    try:
                        entries, oracle_delta = self._run_isolated(
                            shard, matrix[lo:hi]
                        )
                    except _PASS_THROUGH:
                        raise
                    except BrokenProcessPool as error:
                        self.metrics.counter("pool.shard_failures").inc()
                        record = TierError(
                            "pool",
                            type(error).__name__,
                            f"shard {shard} killed its worker process twice; "
                            "its queries are unanswerable",
                        )
                        entries = [
                            QueryFailure(
                                row, tuple(matrix[lo + row].tolist()), (record,)
                            )
                            for row in range(hi - lo)
                        ]
                        oracle_delta = 0
                        if span is not None:
                            span.set("broken", True)
                    self._account_shard(
                        shard, entries, oracle_delta, results_by_shard
                    )

        output: list = []
        for shard, (lo, _) in enumerate(bounds):
            for entry in results_by_shard[shard]:
                if isinstance(entry, QueryFailure):
                    # Re-base the shard-local failure index to the batch row.
                    entry = QueryFailure(lo + entry.index, entry.weights, entry.errors)
                    self.metrics.counter("pool.query_failures").inc()
                output.append(entry)
        return output

    def _account_shard(
        self,
        shard: int,
        entries: list,
        oracle_delta: int | float,
        results_by_shard: dict[int, list],
    ) -> None:
        results_by_shard[shard] = entries
        self.remote_oracle_calls += oracle_delta
        if oracle_delta:
            self.metrics.counter("pool.oracle_calls").inc(oracle_delta)

    def _run_isolated(
        self, shard: int, rows: np.ndarray
    ) -> tuple[list, int | float]:
        """Run one shard in a throwaway single-worker executor."""
        with self._make_executor(1) as isolated:
            return isolated.submit(_pool_worker_task, shard, rows).result()

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #
    def _make_executor(self, max_workers: int) -> ProcessPoolExecutor:
        context = (
            get_context(self.config.start_method)
            if self.config.start_method is not None
            else None
        )
        return ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=context,
            initializer=_init_pool_worker,
            initargs=(
                str(self._index_path),
                self.oracle,
                self.config.seed,
                self._index_digest,
            ),
        )

    def _ensure_executor(self, n_shards: int) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = self._make_executor(
                min(self.config.n_workers, max(1, n_shards))
            )
        return self._executor

    def _ensure_local_chain(self) -> FallbackEngine:
        """The parent-process single-tier chain of the ``n_workers=1`` path.

        The same chain shape the workers build, so the inline path returns
        exactly the entries (and tier labels) a one-worker pool would.
        """
        if self._local_chain is None:
            self._local_chain = FallbackEngine.from_engines([self._inner]).preprocess()
        return self._local_chain

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Retire the worker pool and remove the published index file."""
        self._shutdown_executor()
        self._local_chain = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
            self._index_path = None
            self._index_digest = None

    def __enter__(self) -> "PoolEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter teardown is best-effort
            pass

    # ------------------------------------------------------------------ #
    # capabilities and persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            name="pool",
            exact=False,
            min_attributes=2,
            max_attributes=None,
            batched=True,
            persistable=False,
        )

    def to_payload(self) -> dict:
        """The *inner* engine's payload (a pool is serving topology, not state).

        Byte-identical to saving the unwrapped engine, which is exactly what
        the differential harness compares; loading it back yields the inner
        engine — re-wrap with :meth:`from_engine` to restore a pool.
        """
        return self._inner.to_payload()

    @classmethod
    def from_payload(cls, payload: dict, oracle: FairnessOracle) -> "PoolEngine":
        raise ConfigurationError(
            "a pool engine serialises as its inner engine; load the payload "
            "with load_engine()/engine_from_payload() and re-wrap the result "
            "with PoolEngine.from_engine()"
        )


def _failure_count(entries: list) -> int:
    return sum(1 for entry in entries if isinstance(entry, QueryFailure))
