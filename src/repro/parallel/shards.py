"""Shard planning and deterministic per-shard seeds.

A *shard* is a contiguous ``[start, stop)`` slice of work items — block rows
of the pair enumeration during preprocessing, query rows of a
``suggest_many`` batch during serving.  Shards are planned up front in the
parent, submitted in order, and merged in the same order, so the assembled
result never depends on which worker finished first.

Per-shard seeds are derived with a keyed BLAKE2b hash of the parent's base
seed and the shard index.  Workers re-seed their RNG from this derivation at
the start of every shard (the ``determinism`` contract-rule extension for
``src/repro/parallel/`` statically enforces that every pool passes an
``initializer=``), so any randomness a worker ever draws is a pure function
of the parent configuration — never of process ids, import order or OS
entropy.
"""

from __future__ import annotations

import hashlib

from repro.exceptions import ConfigurationError

__all__ = ["derive_shard_seed", "plan_shards", "shard_size_for"]

#: Domain-separation key of the shard-seed derivation (stable across runs).
_SEED_KEY = b"repro.parallel.shard-seed/v1"


def derive_shard_seed(base_seed: int, shard_index: int) -> int:
    """Deterministic 64-bit seed for one shard of a run seeded by ``base_seed``.

    >>> derive_shard_seed(0, 0) == derive_shard_seed(0, 0)
    True
    >>> derive_shard_seed(0, 0) != derive_shard_seed(0, 1)
    True
    """
    digest = hashlib.blake2b(
        f"{int(base_seed)}:{int(shard_index)}".encode("ascii"),
        key=_SEED_KEY,
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


def shard_size_for(n_items: int, n_workers: int) -> int:
    """Default rows per shard: one contiguous slice per worker (ceil division)."""
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return max(1, -(-max(1, n_items) // n_workers))


def plan_shards(n_items: int, shard_size: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` bounds covering ``range(n_items)`` in order.

    >>> plan_shards(7, 3)
    [(0, 3), (3, 6), (6, 7)]
    >>> plan_shards(0, 3)
    []
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(n_items, start + shard_size))
        for start in range(0, n_items, shard_size)
    ]
