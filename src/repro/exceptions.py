"""Exception hierarchy for the ``repro`` fair-ranking library.

Every error raised by the library derives from :class:`ReproError`, so callers
can guard a whole pipeline with a single ``except ReproError`` while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatasetError",
    "SchemaError",
    "ScoringFunctionError",
    "GeometryError",
    "InfeasibleRegionError",
    "NoSatisfactoryFunctionError",
    "NotPreprocessedError",
    "OracleError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class DatasetError(ReproError):
    """Raised when a dataset is malformed or used inconsistently."""


class SchemaError(DatasetError):
    """Raised when attribute names or types do not match the dataset schema."""


class ScoringFunctionError(ReproError):
    """Raised when a scoring function has invalid weights (negative, zero, NaN)."""


class GeometryError(ReproError):
    """Raised when a geometric construction fails (degenerate inputs, etc.)."""


class InfeasibleRegionError(GeometryError):
    """Raised when a region defined by half-space constraints has no interior point."""


class NoSatisfactoryFunctionError(ReproError):
    """Raised when no scoring function in the searched space satisfies the oracle."""


class NotPreprocessedError(ReproError):
    """Raised when an online query is issued before offline preprocessing ran."""


class OracleError(ReproError):
    """Raised when a fairness oracle is misconfigured or evaluated incorrectly."""


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are invalid."""
