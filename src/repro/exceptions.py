"""Exception hierarchy for the ``repro`` fair-ranking library.

Every error raised by the library derives from :class:`ReproError`, so callers
can guard a whole pipeline with a single ``except ReproError`` while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

from collections.abc import Sequence
from os import PathLike

__all__ = [
    "ReproError",
    "DatasetError",
    "SchemaError",
    "ScoringFunctionError",
    "GeometryError",
    "InfeasibleRegionError",
    "NoSatisfactoryFunctionError",
    "NotPreprocessedError",
    "OracleError",
    "TransientOracleError",
    "OracleTimeoutError",
    "OracleUnavailableError",
    "FallbackExhaustedError",
    "ConfigurationError",
    "IndexIntegrityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class DatasetError(ReproError):
    """Raised when a dataset is malformed or used inconsistently."""


class SchemaError(DatasetError):
    """Raised when attribute names or types do not match the dataset schema."""


class ScoringFunctionError(ReproError):
    """Raised when a scoring function has invalid weights (negative, zero, NaN)."""


class GeometryError(ReproError):
    """Raised when a geometric construction fails (degenerate inputs, etc.)."""


class InfeasibleRegionError(GeometryError):
    """Raised when a region defined by half-space constraints has no interior point."""


class NoSatisfactoryFunctionError(ReproError):
    """Raised when no scoring function in the searched space satisfies the oracle."""


class NotPreprocessedError(ReproError):
    """Raised when an online query is issued before offline preprocessing ran."""


class OracleError(ReproError):
    """Raised when a fairness oracle is misconfigured or evaluated incorrectly."""


class TransientOracleError(OracleError):
    """An oracle failure that may heal on retry (network blip, flaky service).

    The resilience layer (:mod:`repro.resilience`) retries these with
    exponential backoff; every other :class:`OracleError` is treated as
    permanent and surfaces immediately.
    """


class OracleTimeoutError(TransientOracleError):
    """Raised when an oracle call exceeded its configured deadline."""


class OracleUnavailableError(OracleError):
    """Raised when the oracle cannot be reached at all.

    Either the circuit breaker is open (too many consecutive failures) or a
    bounded retry loop exhausted its attempts.  ``last_error`` carries the
    failure that exhausted the budget, when there was one.
    """

    def __init__(self, message: str, last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.last_error = last_error


class FallbackExhaustedError(ReproError):
    """Raised when every tier of a fallback engine chain failed for a query.

    ``attempts`` holds one structured record per tier that was tried (see
    :class:`repro.resilience.fallback.TierError`).
    """

    def __init__(self, message: str, attempts: Sequence[object] = ()) -> None:
        super().__init__(message)
        self.attempts: tuple[object, ...] = tuple(attempts)


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are invalid."""


class IndexIntegrityError(ConfigurationError):
    """Raised when a persisted index/engine file fails its integrity checks.

    Subclasses :class:`ConfigurationError` so pre-checksum callers that guard
    loads with ``except ConfigurationError`` keep working.  ``hint`` carries
    an actionable recovery step (usually: rebuild the file), and is appended
    to the rendered message.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | PathLike[str] | None = None,
        hint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.path: str | PathLike[str] | None = path
        self.hint: str | None = hint

    def __str__(self) -> str:
        message = super().__str__()
        if self.hint:
            return f"{message} ({self.hint})"
        return message
