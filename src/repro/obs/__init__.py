"""Unified observability: tracing spans, metrics, workload recording.

The package splits into a *light* half and a *heavy* half:

- :mod:`repro.obs.trace` and :mod:`repro.obs.metrics` are dependency-free
  (only ``repro.clock`` and ``repro.exceptions``) and are imported eagerly —
  preprocessing hot paths in lower layers import
  :func:`~repro.obs.trace.stage_span` from here without pulling in the
  engine stack.
- :mod:`repro.obs.instrument` (the ``"instrumented"`` engine) and
  :mod:`repro.obs.workload` import the engine seam, so they are exposed
  **lazily** via module ``__getattr__`` (PEP 562).  Eager imports here would
  close an import cycle: ``core.engine`` → ``core.approx`` →
  ``geometry.dual`` → ``data.dominance`` → ``repro.obs`` (for the stage
  seam) → ``instrument`` → ``core.engine`` again, mid-definition.

Everything is deterministic by construction: no module under ``repro.obs``
may touch ``time.*`` (the ``obs-clock`` contract rule — clocks are injected,
:data:`repro.clock.monotonic_clock` by default), and all exports
(trace JSONL, ``repro.obs/v1`` metrics snapshots, workload logs) are
key-sorted so identical runs produce byte-identical bytes.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_FORMAT,
    MetricsRegistry,
    bucket_label,
)
from repro.obs.trace import (
    TRACE_FORMAT,
    Span,
    TraceRecorder,
    activated,
    active_recorder,
    parse_trace_jsonl,
    stage_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_FORMAT",
    "TRACE_FORMAT",
    "WORKLOAD_FORMAT",
    "InstrumentedConfig",
    "InstrumentedEngine",
    "InstrumentedOracle",
    "MetricsRegistry",
    "ReplayReport",
    "Span",
    "TraceRecorder",
    "WorkloadRecorder",
    "activated",
    "active_recorder",
    "bucket_label",
    "parse_trace_jsonl",
    "stage_span",
]

#: Heavy names resolved on first attribute access (PEP 562).
_LAZY = {
    "InstrumentedConfig": "repro.obs.instrument",
    "InstrumentedEngine": "repro.obs.instrument",
    "InstrumentedOracle": "repro.obs.instrument",
    "ReplayReport": "repro.obs.workload",
    "WorkloadRecorder": "repro.obs.workload",
    "WORKLOAD_FORMAT": "repro.obs.workload",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        # The one AttributeError the obs package raises: PEP 562 requires it
        # for unknown module attributes (allowlisted for typed-exceptions).
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
