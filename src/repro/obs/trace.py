"""Structured tracing spans on an injectable monotonic clock.

A :class:`Span` is one timed, named unit of work with key/value attributes
and a parent link; a :class:`TraceRecorder` collects spans into a bounded
in-memory buffer and exports them as JSONL (format ``repro.obs.trace/v1``,
one header line followed by one span per line, keys sorted — so two
identical runs on the same injected clock export byte-identical bytes).

Two APIs create spans:

- ``recorder.span(name, **attributes)`` — a context manager yielding a
  mutable handle (``handle.set(key, value)`` attaches attributes computed
  inside the body).  Nesting is tracked automatically: a span opened inside
  another becomes its child via ``parent_id``.
- ``recorder.traced(name)`` — a decorator wrapping a whole function call in
  a span.

The *stage seam* (:func:`stage_span` + :func:`activated`) lets preprocessing
hot paths (``data/dominance.py``, ``geometry/dual.py``, ``core/two_dim.py``,
``core/approx.py``) emit per-chunk spans without importing or owning a
recorder: :class:`repro.obs.instrument.InstrumentedEngine` activates its
recorder around the inner ``preprocess`` call, and ``stage_span`` is a
near-zero-cost no-op whenever no recorder is active — uninstrumented runs
pay one global read per stage.

Clock discipline: this module never touches ``time.*`` (the ``obs-clock``
contract rule); the default clock is :data:`repro.clock.monotonic_clock` and
any ``() -> float`` callable — e.g. ``resilience.policy.FakeClock`` — can be
injected for deterministic tests.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.clock import Clock, monotonic_clock
from repro.exceptions import ConfigurationError

__all__ = [
    "TRACE_FORMAT",
    "Span",
    "TraceRecorder",
    "activated",
    "active_recorder",
    "parse_trace_jsonl",
    "reset_stage_recorder",
    "stage_span",
]

#: Format tag stamped on the header line of every trace export.
TRACE_FORMAT = "repro.obs.trace/v1"


@dataclass(frozen=True)
class Span:
    """One completed, immutable span.

    ``attributes`` is stored as a key-sorted tuple of ``(key, value)`` pairs
    so equal spans hash equal and exports are deterministic.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    attributes: tuple[tuple[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict, one trace-export line per span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class _OpenSpan:
    """Mutable handle yielded while a span is open."""

    __slots__ = ("name", "attributes")

    def __init__(self, name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute computed inside the span body."""
        self.attributes[str(key)] = value


class TraceRecorder:
    """Bounded in-memory span collector.

    Completed spans are kept in completion order up to ``max_spans``; spans
    finishing after the buffer is full are counted in :attr:`n_dropped`
    instead of silently vanishing (span ids keep advancing, so parent links
    of surviving spans stay valid).
    """

    def __init__(self, clock: Clock | None = None, max_spans: int = 10_000) -> None:
        if max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        self._clock: Clock = clock if clock is not None else monotonic_clock
        self.max_spans = int(max_spans)
        self._spans: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1
        self.n_dropped = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[_OpenSpan]:
        """Record a span around the ``with`` body; yields a mutable handle."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        handle = _OpenSpan(str(name), dict(attributes))
        start = self._clock()
        try:
            yield handle
        finally:
            duration = self._clock() - start
            self._stack.pop()
            if len(self._spans) >= self.max_spans:
                self.n_dropped += 1
            else:
                self._spans.append(
                    Span(
                        span_id=span_id,
                        parent_id=parent_id,
                        name=handle.name,
                        start=start,
                        duration=duration,
                        attributes=tuple(sorted(handle.attributes.items())),
                    )
                )

    def traced(self, name: str | None = None) -> Callable:
        """Decorator: record one span (default name: the qualname) per call."""

        def decorate(function: Callable) -> Callable:
            label = name if name is not None else function.__qualname__

            @wraps(function)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(label):
                    return function(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------ #
    # inspection and export
    # ------------------------------------------------------------------ #
    @property
    def spans(self) -> tuple[Span, ...]:
        """Completed spans in completion order."""
        return tuple(self._spans)

    def span_names(self) -> tuple[str, ...]:
        """Names of completed spans, in completion order."""
        return tuple(span.name for span in self._spans)

    def clear(self) -> None:
        """Drop all completed spans and restart ids (open spans survive)."""
        self._spans.clear()
        self.n_dropped = 0

    def export_jsonl(self) -> str:
        """Serialize as JSONL: one header line, then one line per span."""
        header = {
            "format": TRACE_FORMAT,
            "n_spans": len(self._spans),
            "n_dropped": self.n_dropped,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(span.to_dict(), sort_keys=True) for span in self._spans)
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write :meth:`export_jsonl` to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.export_jsonl(), encoding="utf-8")
        return path


def parse_trace_jsonl(text: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a trace export back into ``(header, span_dicts)``.

    Raises :class:`~repro.exceptions.ConfigurationError` on an empty
    document or a header that does not carry :data:`TRACE_FORMAT`.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError("empty trace document (expected JSONL with a header line)")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ConfigurationError(
            f"not a {TRACE_FORMAT} trace export: header {lines[0]!r:.120}"
        )
    return header, [json.loads(line) for line in lines[1:]]


# ---------------------------------------------------------------------- #
# the stage seam: ambient recorder for preprocessing hot paths
# ---------------------------------------------------------------------- #
_ACTIVE: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    """The recorder stage spans currently flow to, or ``None``."""
    return _ACTIVE


@contextmanager
def activated(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Make ``recorder`` the ambient :func:`stage_span` target for the body.

    Nesting restores the previous recorder on exit, so instrumented engines
    can wrap one another without stealing each other's stage spans.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def reset_stage_recorder() -> None:
    """Detach the ambient recorder so :func:`stage_span` becomes a no-op.

    Worker processes forked while a recorder was :func:`activated` in the
    parent inherit the parent's ``_ACTIVE`` global; recording into that
    inherited copy would silently diverge from the parent's trace (and the
    recorder's injected clock may not even be picklable).  The pool and
    sharded-preprocessing initializers (:mod:`repro.parallel`) call this
    first thing in every child so stage spans degrade to no-ops there —
    parent-side spans are unaffected.
    """
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def stage_span(name: str, **attributes: Any) -> Iterator[_OpenSpan | None]:
    """Span against the ambient recorder; no-op (yields ``None``) when inactive."""
    recorder = _ACTIVE
    if recorder is None:
        yield None
        return
    with recorder.span(name, **attributes) as handle:
        yield handle
