"""Text summary reports over observability artifacts, and their CLI.

``python -m repro.obs report`` renders any combination of:

- ``--metrics snapshot.json`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot (format ``repro.obs/v1``),
- ``--trace trace.jsonl`` — a :class:`~repro.obs.trace.TraceRecorder`
  export (format ``repro.obs.trace/v1``), aggregated per span name,
- ``--workload workload.jsonl`` — a
  :class:`~repro.obs.workload.WorkloadRecorder` log (format
  ``repro.obs.workload/v1``), summarized per engine/tier/latency bucket.

Exit codes: 0 on success, 2 on bad arguments or an unreadable/mis-formatted
file (one actionable line on stderr, matching the main ``repro.cli``
convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.exceptions import ConfigurationError, ReproError
from repro.obs.metrics import METRICS_FORMAT
from repro.obs.trace import parse_trace_jsonl
from repro.obs.workload import WorkloadRecorder

__all__ = ["format_metrics", "format_trace", "format_workload", "main"]


def format_metrics(snapshot: dict[str, Any]) -> str:
    """Render a ``repro.obs/v1`` metrics snapshot as aligned text."""
    if snapshot.get("format") != METRICS_FORMAT:
        raise ConfigurationError(
            f"not a {METRICS_FORMAT} metrics snapshot "
            f"(format={snapshot.get('format')!r})"
        )
    lines = ["metrics:"]
    for series in snapshot.get("counters", ()):
        lines.append(f"  counter   {_series_label(series):44s} {series['value']}")
    for series in snapshot.get("gauges", ()):
        lines.append(f"  gauge     {_series_label(series):44s} {series['value']}")
    for series in snapshot.get("histograms", ()):
        mean = series["sum"] / series["count"] if series["count"] else 0.0
        lines.append(
            f"  histogram {_series_label(series):44s} "
            f"count={series['count']} mean={mean:.6f}s"
        )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


def _series_label(series: dict[str, Any]) -> str:
    labels = series.get("labels") or {}
    if not labels:
        return str(series["name"])
    rendered = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{series['name']}{{{rendered}}}"


def format_trace(text: str) -> str:
    """Aggregate a trace export per span name: count and total duration."""
    header, spans = parse_trace_jsonl(text)
    totals: dict[str, list[float]] = {}
    for span in spans:
        entry = totals.setdefault(span["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += span["duration"]
    lines = [
        f"trace: {header['n_spans']} spans ({header['n_dropped']} dropped at the "
        f"buffer bound)"
    ]
    for name in sorted(totals):
        count, duration = totals[name]
        lines.append(f"  {name:40s} n={int(count):<8d} total={duration:.6f}s")
    if not totals:
        lines.append("  (no spans)")
    return "\n".join(lines)


def format_workload(recorder: WorkloadRecorder) -> str:
    """Summarize a workload log per engine, tier and latency bucket."""
    records = recorder.records()
    by_engine: dict[str, int] = {}
    by_tier: dict[str, int] = {}
    by_bucket: dict[str, int] = {}
    n_satisfactory = 0
    n_failed = 0
    for record in records:
        by_engine[record["engine"]] = by_engine.get(record["engine"], 0) + 1
        tier = str(record.get("tier"))
        by_tier[tier] = by_tier.get(tier, 0) + 1
        bucket = record["latency_bucket"]
        by_bucket[bucket] = by_bucket.get(bucket, 0) + 1
        if record.get("failed"):
            n_failed += 1
        elif record["satisfactory"]:
            n_satisfactory += 1
    lines = [
        f"workload: {len(records)} queries "
        f"({n_satisfactory} already satisfactory, {n_failed} failed)"
    ]
    for label, counts in (("engine", by_engine), ("tier", by_tier), ("latency", by_bucket)):
        for key in sorted(counts):
            lines.append(f"  {label:8s} {key:40s} n={counts[key]}")
    if not records:
        lines.append("  (no queries)")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Reports over repro observability artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="render metrics / trace / workload files as a text summary"
    )
    report.add_argument("--metrics", metavar="PATH", help="repro.obs/v1 snapshot JSON")
    report.add_argument("--trace", metavar="PATH", help="repro.obs.trace/v1 JSONL export")
    report.add_argument(
        "--workload", metavar="PATH", help="repro.obs.workload/v1 JSONL log"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not (args.metrics or args.trace or args.workload):
        print(
            "nothing to report: pass at least one of --metrics / --trace / --workload",
            file=sys.stderr,
        )
        return 2
    sections: list[str] = []
    try:
        if args.metrics:
            sections.append(
                format_metrics(json.loads(Path(args.metrics).read_text(encoding="utf-8")))
            )
        if args.trace:
            sections.append(format_trace(Path(args.trace).read_text(encoding="utf-8")))
        if args.workload:
            sections.append(format_workload(WorkloadRecorder.load(args.workload)))
    except (OSError, json.JSONDecodeError, ReproError) as error:
        print(f"repro.obs report: {error}", file=sys.stderr)
        return 2
    print("\n\n".join(sections))
    return 0
