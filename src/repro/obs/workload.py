"""Replayable workload recording: capture the live query stream, play it back.

:class:`WorkloadRecorder` captures every served query — weights and angles,
the answering engine and tier, a latency bucket, and the oracle-call cost —
into a JSONL log (format ``repro.obs.workload/v1``: one header line, one
record per line, keys sorted).  This is the substrate the ROADMAP's
workload-aware autotuning item needs: record suggested-weight traffic, then
:meth:`replay` it through alternative engine configurations.

Recording is O(1) per batch on the serving path: ``record_batch`` stores one
``(weights matrix copy, results, metadata)`` tuple and per-query records are
materialized lazily at :meth:`records`/:meth:`save` time, so the hot
``suggest_many`` loop never builds dicts.  JSON floats round-trip exactly in
Python (shortest-repr), so a log written by one process replays to
**bit-identical** answers in another given the same dataset, oracle and
config — :meth:`replay` checks exactly that and reports mismatches.

Context (:meth:`set_context` — e.g. the :class:`~repro.core.session.DesignSession`
step and note) is attached copy-on-write: each batch keeps a reference to
the context dict current at record time, and updates replace the dict rather
than mutating it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.angles import to_angles
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, bucket_label

__all__ = ["WORKLOAD_FORMAT", "ReplayReport", "WorkloadRecorder"]

#: Format tag on the header line of every workload log.
WORKLOAD_FORMAT = "repro.obs.workload/v1"


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying a recorded workload through an engine."""

    n_queries: int
    n_skipped: int
    n_mismatched: int
    mismatched_indices: tuple[int, ...] = ()

    @property
    def bit_identical(self) -> bool:
        """True when every replayed answer matched the recording exactly."""
        return self.n_mismatched == 0


class _Batch:
    """One recorded ``suggest``/``suggest_many`` call, stored without copies
    beyond the defensive weights-matrix copy."""

    __slots__ = ("matrix", "results", "engine", "tiers", "elapsed", "oracle_calls", "context")

    def __init__(
        self,
        matrix: np.ndarray,
        results: list[Any],
        engine: str,
        tiers: Sequence[str | None] | None,
        elapsed: float,
        oracle_calls: int,
        context: dict[str, Any],
    ) -> None:
        self.matrix = matrix
        self.results = results
        self.engine = engine
        self.tiers = tiers
        self.elapsed = elapsed
        self.oracle_calls = oracle_calls
        self.context = context


class WorkloadRecorder:
    """Captures served queries; see the module docstring for the format."""

    def __init__(self) -> None:
        self._batches: list[_Batch] = []
        self._context: dict[str, Any] = {}
        self._loaded: list[dict[str, Any]] | None = None

    # ------------------------------------------------------------------ #
    # recording (hot path: O(1) per batch)
    # ------------------------------------------------------------------ #
    def set_context(self, **values: Any) -> None:
        """Attach key/values to every batch recorded from now on."""
        self._context = {**self._context, **values}

    def clear_context(self) -> None:
        self._context = {}

    def record_batch(
        self,
        weights_matrix: np.ndarray,
        results: Sequence[Any],
        *,
        engine: str,
        elapsed: float,
        oracle_calls: int,
        tiers: Sequence[str | None] | None = None,
    ) -> None:
        """Record one served batch (also used for single queries, q=1)."""
        matrix = np.array(weights_matrix, dtype=float, copy=True, ndmin=2)
        results = list(results)
        if matrix.shape[0] != len(results):
            raise ConfigurationError(
                f"recorded batch has {matrix.shape[0]} queries but {len(results)} results"
            )
        self._batches.append(
            _Batch(
                matrix=matrix,
                results=results,
                engine=str(engine),
                tiers=tiers,
                elapsed=float(elapsed),
                oracle_calls=int(oracle_calls),
                context=self._context,
            )
        )

    @property
    def n_queries(self) -> int:
        if self._loaded is not None:
            return len(self._loaded)
        return sum(len(batch.results) for batch in self._batches)

    # ------------------------------------------------------------------ #
    # materialization, save / load
    # ------------------------------------------------------------------ #
    def records(self) -> list[dict[str, Any]]:
        """Per-query records (materialized lazily, or as loaded from disk)."""
        if self._loaded is not None:
            return list(self._loaded)
        records: list[dict[str, Any]] = []
        for batch in self._batches:
            size = len(batch.results)
            per_query = batch.elapsed / size if size else 0.0
            bucket = bucket_label(per_query, DEFAULT_LATENCY_BUCKETS)
            for position, result in enumerate(batch.results):
                weights = [float(value) for value in batch.matrix[position]]
                tier = batch.tiers[position] if batch.tiers is not None else batch.engine
                record: dict[str, Any] = {
                    "index": len(records),
                    "weights": weights,
                    "angles": [float(value) for value in to_angles(np.asarray(weights))],
                    "engine": batch.engine,
                    "tier": tier,
                    "latency_bucket": bucket,
                    "batch_size": size,
                    "batch_elapsed": batch.elapsed,
                    "batch_oracle_calls": batch.oracle_calls,
                    "context": dict(batch.context),
                }
                if hasattr(result, "satisfactory"):
                    record["satisfactory"] = bool(result.satisfactory)
                    record["suggested_weights"] = [
                        float(value) for value in result.function.weights
                    ]
                    record["angular_distance"] = float(result.angular_distance)
                else:
                    record["failed"] = True
                records.append(record)
        return records

    def save(self, path: str | Path) -> Path:
        """Write the log as JSONL (header line + one record per line)."""
        records = self.records()
        header = {"format": WORKLOAD_FORMAT, "n_queries": len(records)}
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in records)
        path = Path(path)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadRecorder":
        """Read a log written by :meth:`save`; the result replays but does
        not record."""
        lines = [
            line for line in Path(path).read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if not lines:
            raise ConfigurationError(f"empty workload log: {path}")
        header = json.loads(lines[0])
        if not isinstance(header, dict) or header.get("format") != WORKLOAD_FORMAT:
            raise ConfigurationError(
                f"not a {WORKLOAD_FORMAT} workload log: {path} (header {lines[0]!r:.120})"
            )
        recorder = cls()
        recorder._loaded = [json.loads(line) for line in lines[1:]]
        if len(recorder._loaded) != int(header.get("n_queries", -1)):
            raise ConfigurationError(
                f"workload log {path} is truncated: header promises "
                f"{header.get('n_queries')} records, found {len(recorder._loaded)}"
            )
        return recorder

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay(self, engine: Any) -> ReplayReport:
        """Re-serve every recorded query through ``engine.suggest_many``.

        Failed records (queries no tier could answer at record time) are
        skipped.  A replayed answer *matches* when ``satisfactory``, the
        suggested weights and the angular distance are all exactly equal to
        the recording — bit-identical, not approximately equal.
        """
        records = [record for record in self.records() if not record.get("failed")]
        if not records:
            return ReplayReport(n_queries=0, n_skipped=self.n_queries, n_mismatched=0)
        matrix = np.asarray([record["weights"] for record in records], dtype=float)
        results = engine.suggest_many(matrix)
        mismatched: list[int] = []
        for record, result in zip(records, results):
            matches = (
                hasattr(result, "satisfactory")
                and bool(result.satisfactory) == record["satisfactory"]
                and [float(v) for v in result.function.weights] == record["suggested_weights"]
                and float(result.angular_distance) == record["angular_distance"]
            )
            if not matches:
                mismatched.append(record["index"])
        return ReplayReport(
            n_queries=len(records),
            n_skipped=self.n_queries - len(records),
            n_mismatched=len(mismatched),
            mismatched_indices=tuple(mismatched),
        )
