"""A dependency-free metrics registry: counters, gauges, latency histograms.

:class:`MetricsRegistry` hands out *labeled series* — one
:class:`Counter`/:class:`Gauge`/:class:`Histogram` per ``(name, labels)``
pair, created on first use and shared on every later lookup, so call sites
can cache the handle and pay one attribute bump on the hot path.  A metric
name has one kind for the life of the registry (and one bucket layout, for
histograms); mixing kinds raises
:class:`~repro.exceptions.ConfigurationError`.

Snapshot semantics: :meth:`MetricsRegistry.snapshot` returns a
JSON-compatible dict stamped ``repro.obs/v1`` with every series sorted by
``(name, labels)`` — two registries that saw the same operations snapshot to
byte-identical JSON regardless of creation order.  :meth:`~MetricsRegistry.merge`
adds another registry's counters and histograms into this one (gauges are
last-write-wins); :meth:`~MetricsRegistry.reset` zeroes every series in
place, keeping handles held by call sites valid.

Histograms are fixed-bucket: ``buckets`` is a strictly increasing tuple of
upper bounds with an implicit ``+inf`` overflow bucket, Prometheus-style
``value <= bound`` assignment (:func:`bucket_label` names the bucket a value
falls in, which is also the latency-bucket vocabulary of the workload
recorder).  No ``time.*`` anywhere: observations are durations handed in by
callers who timed them on an injectable clock.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ConfigurationError

__all__ = [
    "METRICS_FORMAT",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_label",
]

#: Format tag stamped on every metrics snapshot.
METRICS_FORMAT = "repro.obs/v1"

#: Default latency buckets (seconds): 100 µs .. 2.5 s, plus implicit +inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: One series key: the metric name plus its sorted ``(key, value)`` labels.
_SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def bucket_label(value: float, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> str:
    """Name of the bucket ``value`` falls in: ``"le=<bound>"`` or ``"le=+inf"``."""
    value = float(value)
    index = bisect_left(buckets, value)
    if index >= len(buckets):
        return "le=+inf"
    return f"le={buckets[index]!r}"


class Counter:
    """A monotonically increasing count (``inc`` rejects negative amounts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount}); use a gauge"
            )
        self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can move both ways (queue depths, buffer sizes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket distribution with ``value <= bound`` assignment."""

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: tuple[float, ...],
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0


class MetricsRegistry:
    """Get-or-create home of every labeled series; see the module docstring."""

    def __init__(self) -> None:
        self._kinds: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        self._counters: dict[_SeriesKey, Counter] = {}
        self._gauges: dict[_SeriesKey, Gauge] = {}
        self._histograms: dict[_SeriesKey, Histogram] = {}

    # ------------------------------------------------------------------ #
    # series accessors
    # ------------------------------------------------------------------ #
    def _claim(self, name: str, kind: str) -> str:
        name = str(name)
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise ConfigurationError(
                f"metric {name!r} is already registered as a {registered}, "
                f"cannot reuse it as a {kind}"
            )
        return name

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series for ``(name, labels)``, created on first use."""
        name = self._claim(name, "counter")
        key = (name, _label_key(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(name, key[1])
        return series

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series for ``(name, labels)``, created on first use."""
        name = self._claim(name, "gauge")
        key = (name, _label_key(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(name, key[1])
        return series

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram series for ``(name, labels)``, created on first use.

        Every series of one name shares one bucket layout; a differing
        ``buckets`` argument on a later call raises.
        """
        name = self._claim(name, "histogram")
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram buckets must be non-empty and strictly increasing, got {bounds}"
            )
        registered = self._buckets.setdefault(name, bounds)
        if registered != bounds:
            raise ConfigurationError(
                f"histogram {name!r} already uses buckets {registered}, got {bounds}"
            )
        key = (name, _label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(name, key[1], bounds)
        return series

    def counter_total(self, name: str) -> int | float:
        """Sum of one counter name across all of its label series."""
        return sum(series.value for series in self.counter_series(name))

    def counter_series(self, name: str) -> tuple[Counter, ...]:
        """All label series of one counter name, sorted by labels."""
        return tuple(
            series
            for key, series in sorted(self._counters.items())
            if key[0] == name
        )

    def _all_series(self) -> Iterator[Counter | Gauge | Histogram]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    # ------------------------------------------------------------------ #
    # snapshot / merge / reset
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible, fully sorted state dump (format ``repro.obs/v1``)."""
        counters = [
            {"name": series.name, "labels": dict(series.labels), "value": series.value}
            for _, series in sorted(self._counters.items())
        ]
        gauges = [
            {"name": series.name, "labels": dict(series.labels), "value": series.value}
            for _, series in sorted(self._gauges.items())
        ]
        histograms = [
            {
                "name": series.name,
                "labels": dict(series.labels),
                "buckets": list(series.buckets),
                "counts": list(series.counts),
                "count": series.count,
                "sum": series.sum,
            }
            for _, series in sorted(self._histograms.items())
        ]
        return {
            "format": METRICS_FORMAT,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self) -> str:
        """The snapshot as canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write :meth:`to_json` to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and histograms add; gauges take the other registry's value.
        Kind or bucket conflicts raise, leaving already-merged series merged
        (merge is not transactional).
        """
        for (name, _), series in other._counters.items():
            self.counter(name, **dict(series.labels)).value += series.value
        for (name, _), series in other._gauges.items():
            self.gauge(name, **dict(series.labels)).value = series.value
        for (name, _), series in other._histograms.items():
            mine = self.histogram(name, buckets=series.buckets, **dict(series.labels))
            mine.counts = [a + b for a, b in zip(mine.counts, series.counts)]
            mine.count += series.count
            mine.sum += series.sum

    def reset(self) -> None:
        """Zero every series in place; handles held by call sites stay valid."""
        for series in self._all_series():
            series._reset()
