"""The ``"instrumented"`` engine: spans, metrics and workload recording
around any inner engine, plus the matching :class:`InstrumentedOracle`.

:class:`InstrumentedEngine` registers through the :mod:`repro.core.engine`
seam (same composite pattern as
:class:`~repro.resilience.fallback.FallbackEngine` — a serving-layer
wrapper, not a facade branch), so
``FairRankingDesigner(dataset, oracle, InstrumentedConfig(inner=...))``
works unchanged.  It wraps the oracle in an :class:`InstrumentedOracle`
*before* building the inner engine, so the wrapped oracle is the one the
inner index stores and every oracle call — preprocessing and serving — is
counted and spanned.  Around the inner ``preprocess`` it activates its
:class:`~repro.obs.trace.TraceRecorder` as the ambient
:func:`~repro.obs.trace.stage_span` target, so the per-chunk hooks in
``data/dominance.py``, ``geometry/dual.py``, ``core/two_dim.py`` and
``core/approx.py`` land as children of the ``engine.preprocess`` span.

Call accounting is arithmetic-identical to
:class:`~repro.fairness.oracle.CountingOracle` (one per ``is_satisfactory``
or ``verdict``, ``q`` per ``is_satisfactory_many`` batch) and is
test-asserted equal.  The incremental protocol (``begin``/``apply_swap``/
``verdict``) is counted but deliberately *not* spanned per call: the 2-D
sweep applies O(n²) swaps, and a span per swap would cost more than the
sweep itself — ``begin`` gets a span, the per-swap traffic shows up as
counters.

Answers are bit-identical to the uninstrumented engine: instrumentation
only observes, and the oracle wrapper forwards verdicts unchanged.
Instrumented engines are not persistable (``to_payload`` raises — save the
inner engine and re-wrap on load, see :meth:`InstrumentedEngine.from_engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.clock import Clock, monotonic_clock
from repro.core.engine import (
    ApproxConfig,
    EngineCapabilities,
    TwoDConfig,
    create_engine,
    engine_name_for_config,
    register_engine,
)
from repro.exceptions import ConfigurationError, OracleError
from repro.fairness.batched import as_batched, evaluate_many, ordering_matrix
from repro.fairness.incremental import as_incremental
from repro.fairness.oracle import FairnessOracle
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder, activated
from repro.obs.workload import WorkloadRecorder
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["InstrumentedConfig", "InstrumentedEngine", "InstrumentedOracle"]


@dataclass(frozen=True)
class InstrumentedConfig:
    """Config of the ``"instrumented"`` engine.

    ``inner`` is any registered engine config (``None`` auto-picks
    :class:`TwoDConfig` for two scoring attributes, :class:`ApproxConfig`
    otherwise, mirroring the facade default).  ``max_spans`` bounds the
    trace buffer; ``record_workload`` turns on the
    :class:`~repro.obs.workload.WorkloadRecorder`.
    """

    inner: Any = None
    max_spans: int = 10_000
    record_workload: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.inner, InstrumentedConfig):
            raise ConfigurationError(
                "instrumentation does not nest: the inner config of an "
                "InstrumentedConfig cannot itself be an InstrumentedConfig"
            )
        if self.inner is not None:
            engine_name_for_config(self.inner)
        if self.max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {self.max_spans}")


class InstrumentedOracle(FairnessOracle):
    """Counts and spans every oracle call, forwarding verdicts unchanged.

    Call totals are arithmetic-identical to
    :class:`~repro.fairness.oracle.CountingOracle`: +1 per
    ``is_satisfactory`` / ``verdict``, +q per ``is_satisfactory_many``
    batch.  Batched and incremental capability mirror the inner oracle.
    """

    def __init__(
        self,
        inner: FairnessOracle,
        *,
        metrics: MetricsRegistry | None = None,
        recorder: TraceRecorder | None = None,
    ) -> None:
        if not isinstance(inner, FairnessOracle):
            raise OracleError(
                f"InstrumentedOracle wraps a FairnessOracle, got {type(inner).__name__}"
            )
        self.inner = inner
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.recorder = recorder
        self.calls = 0
        self._incremental_delegate = None
        self._scalar_calls = self.metrics.counter("oracle.calls", method="is_satisfactory")
        self._batched_calls = self.metrics.counter(
            "oracle.calls", method="is_satisfactory_many"
        )
        self._verdict_calls = self.metrics.counter("oracle.calls", method="verdict")
        self._swap_calls = self.metrics.counter("oracle.swaps")
        self._batches = self.metrics.counter("oracle.batches")

    # -- scalar and batched verdicts ------------------------------------ #
    def is_satisfactory(self, ordering: np.ndarray, dataset) -> bool:
        self.calls += 1
        self._scalar_calls.inc()
        if self.recorder is None:
            return self.inner.is_satisfactory(ordering, dataset)
        with self.recorder.span("oracle.is_satisfactory"):
            return self.inner.is_satisfactory(ordering, dataset)

    def is_satisfactory_many(self, orderings: np.ndarray, dataset) -> np.ndarray:
        orderings = ordering_matrix(orderings)
        self.calls += int(orderings.shape[0])
        self._batched_calls.inc(int(orderings.shape[0]))
        self._batches.inc()
        if self.recorder is None:
            return evaluate_many(self.inner, orderings, dataset)
        with self.recorder.span("oracle.is_satisfactory_many", q=int(orderings.shape[0])):
            return evaluate_many(self.inner, orderings, dataset)

    def batched_capable(self) -> bool:
        return as_batched(self.inner) is not None

    # -- incremental protocol (counted, not spanned per swap) ----------- #
    def incremental_capable(self) -> bool:
        return as_incremental(self.inner) is not None

    def _incremental_inner(self):
        if self._incremental_delegate is None:
            raise OracleError(
                f"{self.describe()} wraps a black-box oracle without the "
                "incremental protocol; call begin() on an incremental-capable "
                "oracle before apply_swap()/verdict()"
            )
        return self._incremental_delegate

    def begin(self, ordering: np.ndarray, dataset) -> None:
        delegate = as_incremental(self.inner)
        if delegate is None:
            raise OracleError(
                f"{self.describe()} wraps a black-box oracle without the "
                "incremental protocol"
            )
        self._incremental_delegate = delegate
        if self.recorder is None:
            delegate.begin(ordering, dataset)
            return
        with self.recorder.span("oracle.begin"):
            delegate.begin(ordering, dataset)

    def apply_swap(self, pos_i: int, pos_j: int) -> None:
        self._swap_calls.inc()
        self._incremental_inner().apply_swap(pos_i, pos_j)

    def verdict(self) -> bool:
        self.calls += 1
        self._verdict_calls.inc()
        return self._incremental_inner().verdict()

    # -- bookkeeping ----------------------------------------------------- #
    def reset(self) -> None:
        """Zero the plain call count (metrics counters are left cumulative)."""
        self.calls = 0

    def describe(self) -> str:
        return f"instrumented({self.inner.describe()})"


@register_engine("instrumented", InstrumentedConfig)
class InstrumentedEngine:
    """Observability wrapper around any inner engine; see the module docstring."""

    def __init__(
        self,
        dataset,
        oracle: FairnessOracle,
        config: InstrumentedConfig | None = None,
        *,
        engine=None,
        clock: Clock | None = None,
        recorder: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        config = config if config is not None else InstrumentedConfig()
        if not isinstance(config, InstrumentedConfig):
            raise ConfigurationError(
                f"InstrumentedEngine expects an InstrumentedConfig, "
                f"got {type(config).__name__}"
            )
        self.dataset = dataset
        self.oracle = oracle
        self._clock: Clock = clock if clock is not None else monotonic_clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.recorder = (
            recorder
            if recorder is not None
            else TraceRecorder(clock=self._clock, max_spans=config.max_spans)
        )
        self.instrumented_oracle = InstrumentedOracle(
            oracle, metrics=self.metrics, recorder=self.recorder
        )
        if engine is None:
            inner_config = config.inner
            if inner_config is None:
                inner_config = (
                    TwoDConfig() if dataset.n_attributes == 2 else ApproxConfig()
                )
                config = InstrumentedConfig(
                    inner=inner_config,
                    max_spans=config.max_spans,
                    record_workload=config.record_workload,
                )
            self.inner = create_engine(dataset, self.instrumented_oracle, inner_config)
        else:
            # Wrapping an already-built engine (from_engine): rebind its
            # oracle — and the one its index captured, when it captured one —
            # so oracle accounting keeps working on the load path.
            self.inner = engine
            engine.oracle = self.instrumented_oracle
            index = getattr(engine, "_index", None)
            if index is not None and hasattr(index, "oracle"):
                index.oracle = self.instrumented_oracle
        self.config = config
        self.workload: WorkloadRecorder | None = (
            WorkloadRecorder() if config.record_workload else None
        )
        self._unify_inner_telemetry()
        self._suggest_calls = self.metrics.counter("engine.suggest", engine=self.inner.name)
        self._suggest_many_calls = self.metrics.counter(
            "engine.suggest_many", engine=self.inner.name
        )
        self._query_count = self.metrics.counter("engine.queries", engine=self.inner.name)
        self._latency = self.metrics.histogram("engine.suggest_seconds")
        self._batch_latency = self.metrics.histogram("engine.suggest_many_seconds")

    def _unify_inner_telemetry(self) -> None:
        """Point a fallback inner's telemetry at this engine's registry.

        Done immediately after construction (the telemetry is still all
        zero), so the error budget and the obs report read one counter
        source instead of double counting.
        """
        if getattr(self.inner, "telemetry", None) is None:
            return
        from repro.resilience.fallback import FallbackTelemetry

        self.inner.telemetry = FallbackTelemetry(metrics=self.metrics)

    @classmethod
    def from_engine(
        cls,
        engine,
        *,
        record_workload: bool = False,
        max_spans: int = 10_000,
        clock: Clock | None = None,
        recorder: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "InstrumentedEngine":
        """Wrap an engine that already exists (e.g. one loaded from disk)."""
        config = InstrumentedConfig(
            inner=engine.config, max_spans=max_spans, record_workload=record_workload
        )
        return cls(
            engine.dataset,
            engine.oracle,
            config,
            engine=engine,
            clock=clock,
            recorder=recorder,
            metrics=metrics,
        )

    # ------------------------------------------------------------------ #
    # engine protocol
    # ------------------------------------------------------------------ #
    def preprocess(self, dataset=None, oracle=None) -> "InstrumentedEngine":
        if dataset is not None:
            self.dataset = dataset
        if oracle is not None:
            self.oracle = oracle
            self.instrumented_oracle = InstrumentedOracle(
                oracle, metrics=self.metrics, recorder=self.recorder
            )
        with activated(self.recorder):
            with self.recorder.span("engine.preprocess", engine=self.inner.name):
                self.inner.preprocess(
                    dataset, self.instrumented_oracle if oracle is not None else None
                )
        self.metrics.counter("engine.preprocess", engine=self.inner.name).inc()
        return self

    def suggest(self, function: LinearScoringFunction):
        function = self._as_function(function)
        calls_before = self.instrumented_oracle.calls
        started = self._clock()
        with activated(self.recorder):
            with self.recorder.span("engine.suggest", engine=self.inner.name):
                result = self.inner.suggest(function)
        elapsed = self._clock() - started
        self._suggest_calls.inc()
        self._query_count.inc()
        self._latency.observe(elapsed)
        if self.workload is not None:
            self.workload.record_batch(
                np.asarray(function.weights, dtype=float),
                [result],
                engine=self.inner.name,
                tiers=[self._answering_tier()],
                elapsed=elapsed,
                oracle_calls=self.instrumented_oracle.calls - calls_before,
            )
        return result

    def suggest_many(self, weights_matrix) -> list:
        matrix = np.asarray(weights_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dataset.n_attributes:
            raise ConfigurationError(
                f"suggest_many expects a (q, {self.dataset.n_attributes}) weight "
                f"matrix, got shape {matrix.shape}"
            )
        calls_before = self.instrumented_oracle.calls
        started = self._clock()
        with activated(self.recorder):
            with self.recorder.span(
                "engine.suggest_many", engine=self.inner.name, q=int(matrix.shape[0])
            ):
                results = self.inner.suggest_many(matrix)
        elapsed = self._clock() - started
        self._suggest_many_calls.inc()
        self._query_count.inc(int(matrix.shape[0]))
        self._batch_latency.observe(elapsed)
        if self.workload is not None:
            self.workload.record_batch(
                matrix,
                results,
                engine=self.inner.name,
                tiers=self._batch_tiers(len(results)),
                elapsed=elapsed,
                oracle_calls=self.instrumented_oracle.calls - calls_before,
            )
        return results

    def apply_delta(self, delta):
        """Forward a dataset delta to the inner engine, spanned and counted.

        ``maintenance.apply_delta`` counts every call; the per-strategy
        counters (``maintenance.incremental`` / ``maintenance.rebuild`` /
        ``maintenance.noop``) split them by what the inner engine actually
        did, and ``maintenance.items_changed`` accumulates the mutation
        volume.  Answers are untouched — instrumentation only observes.
        """
        with activated(self.recorder):
            with self.recorder.span(
                "maintenance.apply_delta",
                engine=self.inner.name,
                n_changes=delta.n_changes,
            ):
                report = self.inner.apply_delta(delta)
        self.dataset = self.inner.dataset
        self.metrics.counter("maintenance.apply_delta", engine=self.inner.name).inc()
        self.metrics.counter(
            f"maintenance.{report.strategy}", engine=self.inner.name
        ).inc()
        self.metrics.counter(
            "maintenance.items_changed", engine=self.inner.name
        ).inc(delta.n_changes)
        return report

    def refresh(self):
        """Forward a partial refresh to the inner engine, spanned and counted."""
        with activated(self.recorder):
            with self.recorder.span("maintenance.refresh", engine=self.inner.name):
                report = self.inner.refresh()
        self.metrics.counter("maintenance.refresh", engine=self.inner.name).inc()
        return report

    def _as_function(self, function) -> LinearScoringFunction:
        if isinstance(function, LinearScoringFunction):
            return function
        return LinearScoringFunction(tuple(np.asarray(function, dtype=float)))

    def _answering_tier(self) -> str | None:
        record = getattr(self.inner, "last_record", None)
        if record is not None:
            return record.tier
        return self.inner.name

    def _batch_tiers(self, size: int) -> Sequence[str | None]:
        report = getattr(self.inner, "last_report", None)
        if report is not None and len(report.records) == size:
            return [record.tier for record in report.records]
        return [self.inner.name] * size

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            name="instrumented",
            exact=False,
            min_attributes=2,
            max_attributes=None,
            batched=True,
            persistable=False,
        )

    def to_payload(self) -> dict:
        raise ConfigurationError(
            "an instrumented engine is a serving-layer wrapper and is not "
            "persistable as one payload; save the inner engine "
            "(engine.inner) and re-wrap after loading with "
            "InstrumentedEngine.from_engine()"
        )

    @classmethod
    def from_payload(cls, payload: dict, oracle: FairnessOracle):
        raise ConfigurationError(
            "instrumented engines are not persistable; load the inner engine "
            "and re-wrap it with InstrumentedEngine.from_engine()"
        )

    # ------------------------------------------------------------------ #
    # forwarded state
    # ------------------------------------------------------------------ #
    @property
    def index(self):
        return self.inner.index

    @property
    def is_preprocessed(self) -> bool:
        return self.inner.is_preprocessed

    @property
    def preprocessing_dataset(self):
        return self.inner.preprocessing_dataset

    @property
    def last_record(self):
        return getattr(self.inner, "last_record", None)

    @property
    def last_report(self):
        return getattr(self.inner, "last_report", None)

    @property
    def telemetry(self):
        return getattr(self.inner, "telemetry", None)

    @property
    def journal(self) -> tuple:
        return getattr(self.inner, "journal", ())

    @property
    def base_payload(self):
        return getattr(self.inner, "base_payload", None)
