"""Pareto dominance utilities.

The paper (footnote 4, §3.2) skips ordering exchanges between pairs of items
where one *dominates* the other: if ``t[i] >= t'[i]`` on every scoring
attribute and strictly greater on at least one, then no non-negative weight
vector can rank ``t'`` above ``t``, so the pair never swaps and contributes no
exchange hyperplane.  These helpers are used by both the 2-D ray sweep and the
multi-dimensional arrangement construction, and also power the skyline /
convex-layer optimisations in :mod:`repro.data.layers`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError

__all__ = ["dominates", "dominance_matrix", "skyline_indices", "non_dominated_pairs"]


def dominates(first: np.ndarray, second: np.ndarray) -> bool:
    """Return ``True`` if ``first`` Pareto-dominates ``second``.

    Dominance is component-wise ``>=`` with at least one strict ``>`` (paper
    footnote 4).  Equal vectors do not dominate each other.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise DatasetError("dominance requires vectors of equal dimension")
    return bool(np.all(first >= second) and np.any(first > second))


def dominance_matrix(scores: np.ndarray) -> np.ndarray:
    """Return a boolean matrix ``M`` with ``M[i, j]`` true iff item i dominates item j.

    Vectorised over all pairs; O(n^2 d) time, O(n^2) memory.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("dominance_matrix expects an (n, d) matrix")
    greater_equal = np.all(scores[:, None, :] >= scores[None, :, :], axis=2)
    strictly_greater = np.any(scores[:, None, :] > scores[None, :, :], axis=2)
    return greater_equal & strictly_greater


def skyline_indices(scores: np.ndarray) -> np.ndarray:
    """Return indices of the skyline (Pareto-optimal items, the first convex layer's superset).

    An item is on the skyline iff no other item dominates it.
    """
    matrix = dominance_matrix(scores)
    dominated = np.any(matrix, axis=0)
    return np.flatnonzero(~dominated)


def non_dominated_pairs(scores: np.ndarray) -> list[tuple[int, int]]:
    """Return all index pairs ``(i, j)`` with ``i < j`` where neither item dominates the other.

    These are exactly the pairs that produce an ordering-exchange hyperplane.
    """
    matrix = dominance_matrix(scores)
    n = matrix.shape[0]
    pairs: list[tuple[int, int]] = []
    for i in range(n - 1):
        for j in range(i + 1, n):
            if not matrix[i, j] and not matrix[j, i]:
                pairs.append((i, j))
    return pairs
