"""Pareto dominance utilities.

The paper (footnote 4, §3.2) skips ordering exchanges between pairs of items
where one *dominates* the other: if ``t[i] >= t'[i]`` on every scoring
attribute and strictly greater on at least one, then no non-negative weight
vector can rank ``t'`` above ``t``, so the pair never swaps and contributes no
exchange hyperplane.  These helpers are used by both the 2-D ray sweep and the
multi-dimensional arrangement construction, and also power the skyline /
convex-layer optimisations in :mod:`repro.data.layers`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.obs.trace import stage_span

__all__ = [
    "dominates",
    "dominance_matrix",
    "pairwise_close_matrix",
    "skyline_indices",
    "non_dominated_pairs",
    "exchange_pair_indices",
    "exchange_pairs_for_block",
    "exchange_pairs_touching",
    "default_row_chunk_size",
    "iter_exchange_pair_chunks",
]

#: Peak size (in float64 elements) of the broadcast difference block each
#: chunk of :func:`iter_exchange_pair_chunks` may allocate (~64 MB).
_CHUNK_BUDGET_ELEMENTS = 8_000_000


def dominates(first: np.ndarray, second: np.ndarray) -> bool:
    """Return ``True`` if ``first`` Pareto-dominates ``second``.

    Dominance is component-wise ``>=`` with at least one strict ``>`` (paper
    footnote 4).  Equal vectors do not dominate each other.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise DatasetError("dominance requires vectors of equal dimension")
    return bool(np.all(first >= second) and np.any(first > second))


def dominance_matrix(scores: np.ndarray) -> np.ndarray:
    """Return a boolean matrix ``M`` with ``M[i, j]`` true iff item i dominates item j.

    Vectorised over all pairs; O(n^2 d) time, O(n^2) memory.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("dominance_matrix expects an (n, d) matrix")
    greater_equal = np.all(scores[:, None, :] >= scores[None, :, :], axis=2)
    strictly_greater = np.any(scores[:, None, :] > scores[None, :, :], axis=2)
    return greater_equal & strictly_greater


def skyline_indices(scores: np.ndarray) -> np.ndarray:
    """Return indices of the skyline (Pareto-optimal items, the first convex layer's superset).

    An item is on the skyline iff no other item dominates it.
    """
    matrix = dominance_matrix(scores)
    dominated = np.any(matrix, axis=0)
    return np.flatnonzero(~dominated)


def pairwise_close_matrix(
    scores: np.ndarray, rtol: float = 1e-5, atol: float = 1e-8
) -> np.ndarray:
    """Return a boolean matrix ``C`` with ``C[i, j]`` true iff ``allclose(scores[i], scores[j])``.

    Uses the same (asymmetric) tolerance rule as :func:`numpy.allclose`,
    ``|a - b| <= atol + rtol * |b|`` with ``b = scores[j]``, so masking with
    this matrix is exactly equivalent to the per-pair ``np.allclose`` check of
    the scalar exchange-construction path.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("pairwise_close_matrix expects an (n, d) matrix")
    difference = np.abs(scores[:, None, :] - scores[None, :, :])
    tolerance = atol + rtol * np.abs(scores[None, :, :])
    return np.all(difference <= tolerance, axis=2)


def non_dominated_pairs(scores: np.ndarray) -> list[tuple[int, int]]:
    """Return all index pairs ``(i, j)`` with ``i < j`` where neither item dominates the other.

    These are exactly the pairs that produce an ordering-exchange hyperplane.
    Vectorised: the dominance matrix is masked and the surviving upper-triangle
    entries are enumerated with :func:`numpy.nonzero` (row-major, so the output
    order matches the historical nested-loop enumeration).
    """
    matrix = dominance_matrix(scores)
    mutual = ~matrix & ~matrix.T
    i_indices, j_indices = np.nonzero(np.triu(mutual, k=1))
    return list(zip(i_indices.tolist(), j_indices.tolist()))


def exchange_pair_indices(
    scores: np.ndarray, rtol: float = 1e-5, atol: float = 1e-8
) -> np.ndarray:
    """Return the ``(m, 2)`` array of row pairs that produce an ordering exchange.

    A pair exchanges iff the two rows are not near-identical (``allclose``) and
    neither dominates the other (§3.2, footnote 4).  This is the single
    vectorised pair-enumeration kernel shared by the 2-D ray sweep, the
    multi-dimensional arrangement construction and the approximate
    preprocessor; it replaces ~n²/2 scalar ``has_exchange`` calls with three
    broadcast comparisons.  O(n² d) time and O(n²) memory; pairs are returned
    with ``i < j`` in row-major (nested-loop) order.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("exchange_pair_indices expects an (n, d) matrix")
    # One shared (n, n, d) difference tensor feeds all three masks (IEEE
    # subtraction preserves comparison signs exactly, so `diff >= 0` matches
    # `scores[i] >= scores[j]` elementwise), roughly halving peak memory vs.
    # composing dominance_matrix + pairwise_close_matrix.
    difference = scores[:, None, :] - scores[None, :, :]
    greater_equal = np.all(difference >= 0.0, axis=2)
    strictly_greater = np.any(difference > 0.0, axis=2)
    dominates_matrix = greater_equal & strictly_greater
    close = np.all(
        np.abs(difference) <= atol + rtol * np.abs(scores[None, :, :]), axis=2
    )
    eligible = ~dominates_matrix & ~dominates_matrix.T & ~close
    i_indices, j_indices = np.nonzero(np.triu(eligible, k=1))
    return np.column_stack((i_indices, j_indices))


def default_row_chunk_size(n: int, d: int) -> int:
    """Rows per enumeration block that keep the broadcast slice near 64 MB.

    This is the default block size of :func:`iter_exchange_pair_chunks`,
    exposed so the sharded preprocessing driver (:mod:`repro.parallel`) can
    plan shard boundaries that coincide exactly with the serial chunking.
    """
    return max(1, _CHUNK_BUDGET_ELEMENTS // max(1, n * d))


def exchange_pairs_for_block(
    scores: np.ndarray,
    start: int,
    stop: int,
    rtol: float = 1e-5,
    atol: float = 1e-8,
) -> np.ndarray:
    """Exchange pairs ``(i, j)`` with ``start <= i < stop`` and ``j > i``.

    The block-row kernel of :func:`iter_exchange_pair_chunks`, shared with the
    parallel preprocessing workers (:mod:`repro.parallel.preprocess`) so the
    sharded path is bit-identical to the serial generator by construction —
    both run exactly this function over the same ``[start, stop)`` bounds.
    ``scores`` must be a float ``(n, d)`` matrix.
    """
    n = scores.shape[0]
    if not (0 <= start <= stop <= n):
        raise DatasetError(
            f"block bounds [{start}, {stop}) fall outside the {n}-row score matrix"
        )
    difference = scores[start:stop, None, :] - scores[None, :, :]
    forward = np.all(difference >= 0.0, axis=2) & np.any(difference > 0.0, axis=2)
    backward = np.all(difference <= 0.0, axis=2) & np.any(difference < 0.0, axis=2)
    close = np.all(
        np.abs(difference) <= atol + rtol * np.abs(scores[None, :, :]), axis=2
    )
    eligible = ~forward & ~backward & ~close
    # Keep only the strict upper triangle of the full matrix: j > i.
    eligible &= np.arange(n)[None, :] > np.arange(start, stop)[:, None]
    i_indices, j_indices = np.nonzero(eligible)
    return np.column_stack((i_indices + start, j_indices))


def exchange_pairs_touching(
    scores: np.ndarray,
    touched,
    rtol: float = 1e-5,
    atol: float = 1e-8,
) -> np.ndarray:
    """Exchange pairs ``(i, j)`` with ``i < j`` and at least one endpoint in ``touched``.

    The incremental-maintenance counterpart of :func:`exchange_pair_indices`:
    after a dataset delta, only the pairs touching a changed item need their
    eligibility re-derived, and this kernel derives exactly those.  The
    decisions are bit-identical to the full-matrix kernel's rows — the same
    subtraction, the same dominance masks, and the same *asymmetric* closeness
    tolerance ``|a - b| <= atol + rtol * |scores[j]|`` anchored at the pair's
    **larger** index ``j``, which is what the upper-triangle selection of the
    full kernel anchors it at.

    Parameters
    ----------
    scores:
        ``(n, d)`` score matrix (post-delta).
    touched:
        Iterable of row indices whose scores changed (inserted or updated
        items); pairs between untouched rows are not enumerated.

    Returns
    -------
    numpy.ndarray
        ``(m, 2)`` array of eligible pairs, deduplicated, with ``i < j`` in
        row-major order.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("exchange_pairs_touching expects an (n, d) matrix")
    n = scores.shape[0]
    rows = np.asarray(sorted(set(int(index) for index in touched)), dtype=int)
    if rows.size == 0:
        return np.empty((0, 2), dtype=int)
    if np.any(rows < 0) or np.any(rows >= n):
        raise DatasetError("touched indices fall outside the score matrix")
    difference = scores[rows, None, :] - scores[None, :, :]
    forward = np.all(difference >= 0.0, axis=2) & np.any(difference > 0.0, axis=2)
    backward = np.all(difference <= 0.0, axis=2) & np.any(difference < 0.0, axis=2)
    absolute = np.abs(difference)
    # The full kernel's closeness test anchors the tolerance at the pair's
    # larger index (the column of the upper triangle); reproduce that for
    # both orientations of each touched row.
    close_at_column = np.all(absolute <= atol + rtol * np.abs(scores[None, :, :]), axis=2)
    close_at_row = np.all(absolute <= atol + rtol * np.abs(scores[rows, None, :]), axis=2)
    column_is_larger = np.arange(n)[None, :] > rows[:, None]
    close = np.where(column_is_larger, close_at_column, close_at_row)
    eligible = ~forward & ~backward & ~close
    # Drop the diagonal explicitly (a row is trivially close to itself, but
    # keep the intent visible rather than relying on the tolerance).
    eligible &= np.arange(n)[None, :] != rows[:, None]
    row_positions, j_indices = np.nonzero(eligible)
    i_indices = rows[row_positions]
    pairs = np.column_stack(
        (np.minimum(i_indices, j_indices), np.maximum(i_indices, j_indices))
    )
    if pairs.shape[0] == 0:
        return pairs
    return np.unique(pairs, axis=0)


def iter_exchange_pair_chunks(
    scores: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-8,
    row_chunk_size: int | None = None,
):
    """Yield the rows of :func:`exchange_pair_indices` in bounded-memory chunks.

    The one-shot kernel materialises the full ``(n, n, d)`` difference tensor
    — 2.4 GB of float64 at ``n = 10⁴, d = 3``, and ~5–6 GB at peak counting
    the ``np.abs`` copy and the boolean comparison intermediates — and the
    cost grows quadratically from there, which caps the dataset sizes it can
    preprocess.  This generator enumerates
    the same pairs block-row by block-row: each step broadcasts only a
    ``(row_chunk_size, n, d)`` slice, so peak memory is ``O(chunk · n · d)``
    no matter how large ``n`` grows.

    Concatenating the yielded chunks reproduces ``exchange_pair_indices``
    exactly (same pairs, same row-major ``i < j`` order, bit-for-bit the same
    eligibility decisions: IEEE subtraction gives ``a - b == -(b - a)``, so the
    block-local dominance tests match the full-matrix ones elementwise).

    Parameters
    ----------
    scores:
        ``(n, d)`` score matrix.
    rtol, atol:
        Near-duplicate tolerances, as in :func:`exchange_pair_indices`.
    row_chunk_size:
        Rows per block; defaults to whatever keeps the broadcast block near
        64 MB (at least 1).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("iter_exchange_pair_chunks expects an (n, d) matrix")
    n, d = scores.shape
    if row_chunk_size is None:
        row_chunk_size = default_row_chunk_size(n, d)
    if row_chunk_size < 1:
        raise DatasetError("row_chunk_size must be >= 1")
    for start in range(0, n, row_chunk_size):
        stop = min(n, start + row_chunk_size)
        # The span closes before the yield so consumer time is not billed
        # to the chunk; it is a no-op unless an instrumented engine is
        # preprocessing (repro.obs.trace.activated).
        with stage_span("preprocess.pair_chunk", start=start, stop=stop) as span:
            pairs = exchange_pairs_for_block(scores, start, stop, rtol=rtol, atol=atol)
            if span is not None:
                span.set("n_pairs", int(pairs.shape[0]))
        yield pairs
