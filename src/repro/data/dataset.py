"""Dataset container used throughout the library.

The paper's data model (§2) is a set of *n* items, each carrying:

* ``d`` scalar, non-negative **scoring attributes** (larger is better), and
* zero or more categorical **type attributes** (protected features such as
  sex, race, or age group) that are consulted only by fairness oracles.

:class:`Dataset` wraps a dense ``numpy`` matrix of scoring attributes and a
dictionary of type-attribute columns, and provides the normalisation,
projection, sampling and validation primitives every other subsystem builds
on.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import DatasetError, SchemaError

__all__ = ["Dataset", "normalize_minmax"]


def normalize_minmax(values: np.ndarray) -> np.ndarray:
    """Min-max normalise a 1-D array to ``[0, 1]``.

    The paper normalises every scoring attribute as ``(val - min) / (max - min)``
    (§6.1).  A constant column maps to all zeros instead of dividing by zero.

    Parameters
    ----------
    values:
        One-dimensional numeric array.

    Returns
    -------
    numpy.ndarray
        Array of the same shape with values in ``[0, 1]``.
    """
    values = np.asarray(values, dtype=float)
    lo = float(np.min(values))
    hi = float(np.max(values))
    if hi == lo:
        return np.zeros_like(values)
    return (values - lo) / (hi - lo)


@dataclass
class Dataset:
    """An immutable table of items with scoring and type attributes.

    Parameters
    ----------
    scores:
        ``(n, d)`` array of non-negative scoring-attribute values.  Rows are
        items, columns are attributes; larger values are preferred.
    scoring_attributes:
        Names of the ``d`` scoring attributes, in column order.
    types:
        Mapping from type-attribute name to a length-``n`` sequence of
        categorical labels (any hashable values).
    name:
        Optional human-readable dataset name, used in reports.
    """

    scores: np.ndarray
    scoring_attributes: Sequence[str]
    types: Mapping[str, Sequence] = field(default_factory=dict)
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=float)
        if self.scores.ndim != 2:
            raise DatasetError(
                f"scores must be a 2-D array, got shape {self.scores.shape}"
            )
        n, d = self.scores.shape
        if n == 0 or d == 0:
            raise DatasetError("dataset must contain at least one item and one attribute")
        self.scoring_attributes = list(self.scoring_attributes)
        if len(self.scoring_attributes) != d:
            raise SchemaError(
                f"{d} scoring columns but {len(self.scoring_attributes)} attribute names"
            )
        if len(set(self.scoring_attributes)) != d:
            raise SchemaError("scoring attribute names must be unique")
        if not np.all(np.isfinite(self.scores)):
            raise DatasetError("scoring attributes must be finite")
        if np.any(self.scores < 0):
            raise DatasetError("scoring attributes must be non-negative (see paper §2)")
        self.types = {key: np.asarray(col) for key, col in dict(self.types).items()}
        for key, col in self.types.items():
            if len(col) != n:
                raise SchemaError(
                    f"type attribute {key!r} has {len(col)} values for {n} items"
                )

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def n_items(self) -> int:
        """Number of items (rows)."""
        return int(self.scores.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of scoring attributes ``d``."""
        return int(self.scores.shape[1])

    @property
    def type_attributes(self) -> list[str]:
        """Names of the categorical type attributes."""
        return list(self.types.keys())

    def __len__(self) -> int:
        return self.n_items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, n_items={self.n_items}, "
            f"scoring={list(self.scoring_attributes)}, types={self.type_attributes})"
        )

    # ------------------------------------------------------------------ #
    # attribute access
    # ------------------------------------------------------------------ #
    def column(self, attribute: str) -> np.ndarray:
        """Return one scoring-attribute column by name."""
        try:
            idx = list(self.scoring_attributes).index(attribute)
        except ValueError as exc:
            raise SchemaError(f"unknown scoring attribute {attribute!r}") from exc
        return self.scores[:, idx]

    def type_column(self, attribute: str) -> np.ndarray:
        """Return one type-attribute column by name."""
        if attribute not in self.types:
            raise SchemaError(f"unknown type attribute {attribute!r}")
        return np.asarray(self.types[attribute])

    def item(self, index: int) -> np.ndarray:
        """Return the scoring vector of a single item."""
        if not 0 <= index < self.n_items:
            raise DatasetError(f"item index {index} out of range [0, {self.n_items})")
        return self.scores[index]

    def group_proportions(self, attribute: str) -> dict:
        """Return the fraction of items carrying each value of a type attribute.

        Useful for stating proportionality constraints relative to the dataset
        composition, as the paper does ("at most 10% more than in D").
        """
        col = self.type_column(attribute)
        values, counts = np.unique(col, return_counts=True)
        total = float(len(col))
        return {value: count / total for value, count in zip(values.tolist(), counts.tolist())}

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[str], name: str | None = None) -> "Dataset":
        """Return a new dataset restricted to the given scoring attributes.

        Type attributes are carried over unchanged.  The paper's experiments
        repeatedly select 2, 3, ... 6 scoring attributes from COMPAS; this is
        the operation that performs that selection.
        """
        attributes = list(attributes)
        if not attributes:
            raise SchemaError("projection requires at least one attribute")
        columns = [self.column(a) for a in attributes]
        return Dataset(
            scores=np.column_stack(columns),
            scoring_attributes=attributes,
            types=self.types,
            name=name or f"{self.name}[{','.join(attributes)}]",
        )

    def take(self, indices: Iterable[int], name: str | None = None) -> "Dataset":
        """Return a new dataset containing only the items at ``indices``."""
        index_array = np.asarray(list(indices), dtype=int)
        if index_array.size == 0:
            raise DatasetError("cannot take an empty subset of a dataset")
        if np.any(index_array < 0) or np.any(index_array >= self.n_items):
            raise DatasetError("subset indices out of range")
        return Dataset(
            scores=self.scores[index_array],
            scoring_attributes=self.scoring_attributes,
            types={key: np.asarray(col)[index_array] for key, col in self.types.items()},
            name=name or f"{self.name}[subset:{index_array.size}]",
        )

    def head(self, count: int) -> "Dataset":
        """Return the first ``count`` items."""
        if count <= 0:
            raise DatasetError("head() requires a positive count")
        return self.take(range(min(count, self.n_items)), name=f"{self.name}[head:{count}]")

    def sample(self, size: int, seed: int | None = None, name: str | None = None) -> "Dataset":
        """Return ``size`` items sampled uniformly at random without replacement.

        This is the sampling primitive behind §5.4 ("Sampling for large-scale
        settings"): preprocess on a uniform sample, then validate on the full
        dataset.
        """
        if size <= 0:
            raise DatasetError("sample size must be positive")
        if size > self.n_items:
            raise DatasetError(
                f"cannot sample {size} items from a dataset of {self.n_items}"
            )
        rng = np.random.default_rng(seed)
        indices = rng.choice(self.n_items, size=size, replace=False)
        return self.take(indices, name=name or f"{self.name}[sample:{size}]")

    def normalized(self, invert: Sequence[str] = ()) -> "Dataset":
        """Return a copy with every scoring attribute min-max normalised to [0, 1].

        Parameters
        ----------
        invert:
            Attribute names for which *smaller* raw values are better (the paper
            inverts ``age`` in §6.1).  Those columns are normalised and then
            flipped as ``1 - x`` so that, as the data model requires, larger
            normalised values are preferred.
        """
        invert_set = set(invert)
        unknown = invert_set.difference(self.scoring_attributes)
        if unknown:
            raise SchemaError(f"cannot invert unknown attributes: {sorted(unknown)}")
        columns = []
        for position, attribute in enumerate(self.scoring_attributes):
            column = normalize_minmax(self.scores[:, position])
            if attribute in invert_set:
                column = 1.0 - column
            columns.append(column)
        return Dataset(
            scores=np.column_stack(columns),
            scoring_attributes=self.scoring_attributes,
            types=self.types,
            name=f"{self.name}[normalized]",
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_csv(self, path: str) -> None:
        """Write the dataset (scoring then type columns) to a CSV file."""
        header = list(self.scoring_attributes) + [f"type:{key}" for key in self.types]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            type_columns = [np.asarray(col) for col in self.types.values()]
            for row_index in range(self.n_items):
                row = [repr(float(v)) for v in self.scores[row_index]]
                row.extend(str(col[row_index]) for col in type_columns)
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path: str, name: str | None = None) -> "Dataset":
        """Read a dataset previously written by :meth:`to_csv`.

        Columns whose header starts with ``type:`` become type attributes; all
        other columns are parsed as float scoring attributes.
        """
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration as exc:
                raise DatasetError(f"CSV file {path!r} is empty") from exc
            rows = [row for row in reader if row]
        if not rows:
            raise DatasetError(f"CSV file {path!r} contains no data rows")
        scoring_names = [h for h in header if not h.startswith("type:")]
        type_names = [h[len("type:"):] for h in header if h.startswith("type:")]
        scoring_positions = [i for i, h in enumerate(header) if not h.startswith("type:")]
        type_positions = [i for i, h in enumerate(header) if h.startswith("type:")]
        scores = np.array(
            [[float(row[i]) for i in scoring_positions] for row in rows], dtype=float
        )
        types = {
            type_name: np.array([row[i] for row in rows])
            for type_name, i in zip(type_names, type_positions)
        }
        return cls(
            scores=scores,
            scoring_attributes=scoring_names,
            types=types,
            name=name or path,
        )
