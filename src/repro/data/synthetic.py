"""Synthetic datasets that stand in for the paper's COMPAS and DOT data.

The paper evaluates on two real datasets that are not available offline:

* **COMPAS** (ProPublica, 6,889 individuals): 7 scoring attributes
  (``c_days_from_compas``, ``juv_other_count``, ``days_b_screening_arrest``,
  ``start``, ``end``, ``age``, ``priors_count``) and type attributes ``sex``,
  ``race``, ``age_binary`` and ``age_bucketized`` (§6.1).
* **DOT** flight on-time performance (1,322,024 records, Q1 2016): delay and
  taxi attributes with a ``carrier`` type attribute used for the diversity /
  sampling experiment (§5.4, §6.4).

The generators below reproduce the properties the experiments actually rely
on — attribute names, value ranges after min-max normalisation, documented
group proportions (≈80 % male, ≈50 % African-American, the paper's age
buckets, the carrier market shares), and the mild correlation between scoring
attributes and protected groups that makes some orderings unfair and others
fair.  Absolute values differ from the originals, but every algorithm in the
library only consumes (numeric scoring attributes, categorical types), so the
code paths exercised are identical.  See DESIGN.md §4 for the substitution
rationale.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError

__all__ = [
    "COMPAS_SCORING_ATTRIBUTES",
    "DOT_SCORING_ATTRIBUTES",
    "DOT_CARRIER_SHARES",
    "make_compas_like",
    "make_dot_like",
    "make_admissions_like",
    "make_uniform_dataset",
    "make_correlated_dataset",
]

#: Scoring attributes of the COMPAS dataset, in the order the paper lists them
#: (§6.1).  Experiments that use ``d`` attributes take the first ``d`` names.
COMPAS_SCORING_ATTRIBUTES: tuple[str, ...] = (
    "c_days_from_compas",
    "juv_other_count",
    "days_b_screening_arrest",
    "start",
    "end",
    "age",
    "priors_count",
)

#: Scoring attributes used for the DOT experiment (§6.4).
DOT_SCORING_ATTRIBUTES: tuple[str, ...] = ("departure_delay", "arrival_delay", "taxi_in")

#: Approximate market shares of the four major US carriers in the DOT data,
#: with the remainder spread over ten smaller carriers.  The §6.4 constraint is
#: stated over the four majors (WN, DL, AA, UA).
DOT_CARRIER_SHARES: dict[str, float] = {
    "WN": 0.22,
    "DL": 0.17,
    "AA": 0.15,
    "UA": 0.10,
    "OO": 0.08,
    "EV": 0.07,
    "B6": 0.05,
    "AS": 0.04,
    "NK": 0.03,
    "MQ": 0.03,
    "F9": 0.02,
    "HA": 0.02,
    "VX": 0.01,
    "US": 0.01,
}


def _require_positive(n: int, argument: str = "n") -> None:
    if n <= 0:
        raise ConfigurationError(f"{argument} must be a positive integer, got {n}")


def _clip_unit(values: np.ndarray) -> np.ndarray:
    """Clip to [0, 1]; the data model requires non-negative scoring values."""
    return np.clip(values, 0.0, 1.0)


def make_compas_like(
    n: int = 6889,
    seed: int | None = 0,
    disparity: float = 0.09,
) -> Dataset:
    """Generate a COMPAS-like dataset.

    Parameters
    ----------
    n:
        Number of individuals; defaults to the size of the real dataset.
    seed:
        Seed for the random generator (deterministic by default).
    disparity:
        Size of the mean shift applied to the scoring attributes of the
        protected groups.  The default of 0.09 produces the behaviour the
        paper reports for the real COMPAS data: roughly half of random d=3
        queries violate the default FM1 constraint (the paper observed 48 of
        100), and satisfactory functions exist close to every query.

    Returns
    -------
    Dataset
        Normalised scores in [0, 1] with type attributes ``sex``, ``race``,
        ``age_binary`` and ``age_bucketized`` whose marginals follow §6.1:
        80 % male, 50 % African-American / 35 % Caucasian / 15 % other,
        ~60 % aged 35 or younger, and the 42 / 34 / 24 % age buckets.
    """
    _require_positive(n)
    if not 0.0 <= disparity <= 0.5:
        raise ConfigurationError("disparity must lie in [0, 0.5]")
    rng = np.random.default_rng(seed)

    sex = rng.choice(np.array(["male", "female"]), size=n, p=[0.80, 0.20])
    race = rng.choice(
        np.array(["African-American", "Caucasian", "Other"]), size=n, p=[0.50, 0.35, 0.15]
    )
    # Age in years; the binary split at 35 gives ~60% young as in §6.2, and the
    # bucketised split (<=30 / 31-40 / >40) approximates the 42/34/24 buckets.
    age_years = np.floor(18 + 42 * rng.beta(1.6, 2.6, size=n)).astype(int)
    age_binary = np.where(age_years <= 35, "35_or_younger", "over_35")
    age_bucketized = np.select(
        [age_years <= 30, age_years <= 40], ["30_or_younger", "31_to_40"], default="over_40"
    )

    protected_race = (race == "African-American").astype(float)
    protected_sex = (sex == "male").astype(float)
    young = (age_binary == "35_or_younger").astype(float)

    def skewed(base_alpha: float, base_beta: float, group: np.ndarray, shift: float) -> np.ndarray:
        """A [0, 1] column whose mean is shifted upward for members of ``group``."""
        raw = rng.beta(base_alpha, base_beta, size=n)
        return _clip_unit(raw + shift * group + rng.normal(0.0, 0.02, size=n))

    # Scoring attributes, already min-max shaped into [0, 1].  The protected
    # groups receive slightly higher "risk-like" scores so that weight vectors
    # emphasising those attributes over-select them at the top — the disparity
    # the paper's fairness constraints are designed to catch.
    c_days_from_compas = skewed(2.0, 5.0, protected_race, disparity)
    # Juvenile counts are mildly higher for the younger group and for the
    # protected race group (as in the real data), but mildly enough that a
    # ranking by juvenile counts alone stays close to the dataset composition.
    juv_other_count = skewed(1.5, 8.0, 0.25 * young + 0.35 * protected_race, disparity)
    days_b_screening = skewed(2.5, 2.5, protected_sex, disparity * 0.5)
    start = skewed(2.0, 3.0, protected_race, disparity * 0.2)
    end = skewed(3.0, 2.0, protected_race, -disparity * 0.4)
    # ``age`` is the raw age normalised; the paper inverts it (lower is better)
    # before ranking, which Dataset.normalized(invert=["age"]) reproduces.  We
    # store the already-inverted "youthfulness" so larger remains better.
    age_attr = _clip_unit(
        1.0 - (age_years - age_years.min()) / max(1, age_years.max() - age_years.min())
    )
    priors_count = skewed(1.8, 6.0, protected_race, disparity)

    scores = np.column_stack(
        [
            c_days_from_compas,
            juv_other_count,
            days_b_screening,
            start,
            end,
            age_attr,
            priors_count,
        ]
    )
    return Dataset(
        scores=scores,
        scoring_attributes=list(COMPAS_SCORING_ATTRIBUTES),
        types={
            "sex": sex,
            "race": race,
            "age_binary": age_binary,
            "age_bucketized": age_bucketized,
        },
        name=f"compas_like(n={n})",
    )


def make_dot_like(n: int = 1_322_024, seed: int | None = 0) -> Dataset:
    """Generate a DOT-like flight performance dataset.

    Scores are "on-time goodness" values in [0, 1] derived from exponential
    delay distributions (larger is better, i.e. smaller delay), with carriers
    drawn according to :data:`DOT_CARRIER_SHARES` and a small per-carrier
    performance offset so that carrier proportions at the top of a ranking
    deviate from their dataset shares — the condition the §6.4 diversity
    constraint checks.
    """
    _require_positive(n)
    rng = np.random.default_rng(seed)
    carriers = np.array(list(DOT_CARRIER_SHARES))
    shares = np.array(list(DOT_CARRIER_SHARES.values()))
    shares = shares / shares.sum()
    carrier = rng.choice(carriers, size=n, p=shares)

    # Per-carrier, per-attribute delay multipliers: a carrier that is punctual
    # at departure may be slow at taxi-in and vice versa, so different weight
    # vectors favour different carriers — the trade-off the §6.4 diversity
    # constraint exploits when looking for satisfactory functions.
    base_offsets = np.linspace(0.8, 1.3, len(carriers))
    offsets_per_attribute = {
        "departure": dict(zip(carriers, base_offsets)),
        "arrival": dict(zip(carriers, np.roll(base_offsets, 5))),
        "taxi": dict(zip(carriers, np.roll(base_offsets, 9))),
    }
    departure_multiplier = np.array([offsets_per_attribute["departure"][c] for c in carrier])
    arrival_multiplier = np.array([offsets_per_attribute["arrival"][c] for c in carrier])
    taxi_multiplier = np.array([offsets_per_attribute["taxi"][c] for c in carrier])

    departure_delay = rng.exponential(scale=0.18, size=n) * departure_multiplier
    arrival_delay = _clip_unit(
        rng.exponential(scale=0.15, size=n) * arrival_multiplier
        + 0.3 * departure_delay
    )
    taxi_in = rng.exponential(scale=0.15, size=n) * (0.7 + 0.3 * taxi_multiplier)

    scores = np.column_stack(
        [
            _clip_unit(1.0 - departure_delay),
            _clip_unit(1.0 - arrival_delay),
            _clip_unit(1.0 - taxi_in),
        ]
    )
    return Dataset(
        scores=scores,
        scoring_attributes=list(DOT_SCORING_ATTRIBUTES),
        types={"carrier": carrier},
        name=f"dot_like(n={n})",
    )


def make_admissions_like(n: int = 2000, seed: int | None = 0, gap: float = 0.08) -> Dataset:
    """Generate the college-admissions scenario of the paper's Example 1.

    Two scoring attributes, normalised ``gpa`` and ``sat``, and a binary
    ``gender`` type attribute.  Mirroring the SAT gender gap the paper cites,
    the ``sat`` column of the ``female`` group is shifted down by ``gap`` on
    the normalised scale while ``gpa`` is shifted slightly up, so functions
    that weight SAT heavily under-select women at the top.
    """
    _require_positive(n)
    rng = np.random.default_rng(seed)
    gender = rng.choice(np.array(["female", "male"]), size=n, p=[0.5, 0.5])
    female = (gender == "female").astype(float)
    gpa = _clip_unit(rng.beta(5.0, 2.0, size=n) + 0.03 * female)
    sat = _clip_unit(rng.beta(4.0, 2.5, size=n) - gap * female)
    return Dataset(
        scores=np.column_stack([gpa, sat]),
        scoring_attributes=["gpa", "sat"],
        types={"gender": gender},
        name=f"admissions_like(n={n})",
    )


def make_uniform_dataset(
    n: int,
    d: int,
    seed: int | None = 0,
    group_attribute: str = "group",
    group_labels: tuple[str, ...] = ("A", "B"),
    group_probabilities: tuple[float, ...] | None = None,
) -> Dataset:
    """Generate uniformly random scores with an independent group label.

    A convenient neutral workload for unit tests and micro-benchmarks where no
    particular disparity structure is wanted.
    """
    _require_positive(n)
    _require_positive(d, "d")
    if group_probabilities is None:
        group_probabilities = tuple(1.0 / len(group_labels) for _ in group_labels)
    if len(group_probabilities) != len(group_labels):
        raise ConfigurationError("group_probabilities must match group_labels in length")
    if abs(sum(group_probabilities) - 1.0) > 1e-9:
        raise ConfigurationError("group_probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    scores = rng.random((n, d))
    groups = rng.choice(np.array(group_labels), size=n, p=list(group_probabilities))
    return Dataset(
        scores=scores,
        scoring_attributes=[f"attr_{i}" for i in range(d)],
        types={group_attribute: groups},
        name=f"uniform(n={n}, d={d})",
    )


def make_correlated_dataset(
    n: int,
    d: int,
    seed: int | None = 0,
    disparity: float = 0.2,
    minority_share: float = 0.3,
) -> Dataset:
    """Generate scores correlated with a binary protected group.

    Members of the ``minority`` group have every attribute shifted down by
    ``disparity`` on average, producing datasets where many weight vectors are
    unfair — useful for stress-testing satisfactory-region discovery.
    """
    _require_positive(n)
    _require_positive(d, "d")
    if not 0.0 < minority_share < 1.0:
        raise ConfigurationError("minority_share must be in (0, 1)")
    rng = np.random.default_rng(seed)
    group = rng.choice(
        np.array(["minority", "majority"]), size=n, p=[minority_share, 1.0 - minority_share]
    )
    minority = (group == "minority").astype(float)[:, None]
    scores = _clip_unit(rng.random((n, d)) - disparity * minority)
    return Dataset(
        scores=scores,
        scoring_attributes=[f"attr_{i}" for i in range(d)],
        types={"group": group},
        name=f"correlated(n={n}, d={d}, disparity={disparity})",
    )
