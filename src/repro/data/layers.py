"""Convex layers ("onion technique") for top-k pruning.

Section 8 of the paper notes, as future work, that when the fairness oracle
only inspects the top-``k`` of the ordering, items outside the first ``k``
*convex layers* can never appear in the top-``k`` of any linear function, so
their ordering exchanges are irrelevant.  We implement that optimisation here
so it can be ablated in ``benchmarks/bench_ablation_layers.py``.

The convex layers of a point set are computed by repeatedly peeling the upper
convex hull (the portion of the hull that can be touched by a non-negative
linear maximisation); item indices are returned grouped by layer.
"""

from __future__ import annotations

import numpy as np

from repro.data.dominance import skyline_indices
from repro.exceptions import DatasetError

__all__ = ["upper_hull_indices", "convex_layers", "topk_candidate_indices"]


def _upper_hull_2d(points: np.ndarray) -> np.ndarray:
    """Return indices (into ``points``) of the 2-D upper-right convex hull.

    The hull is the maximal chain touched by maximising ``w1*x + w2*y`` over
    non-negative, not-both-zero weights.  Points are processed in decreasing
    ``x`` order, keeping a chain that turns consistently.
    """
    order = np.lexsort((points[:, 1], points[:, 0]))[::-1]
    chain: list[int] = []
    for index in order:
        point = points[index]
        while len(chain) >= 2:
            a = points[chain[-2]]
            b = points[chain[-1]]
            cross = (b[0] - a[0]) * (point[1] - a[1]) - (b[1] - a[1]) * (point[0] - a[0])
            if cross <= 0:
                chain.pop()
            else:
                break
        chain.append(int(index))
    # Keep only points that are not dominated within the chain: the chain built
    # above may include points below the staircase when x ties occur.
    keep: list[int] = []
    best_y = -np.inf
    for index in chain:
        y = points[index, 1]
        if y > best_y - 1e-15:
            keep.append(index)
            best_y = max(best_y, y)
    return np.asarray(sorted(set(keep)), dtype=int)


def upper_hull_indices(scores: np.ndarray) -> np.ndarray:
    """Return indices of items on the upper convex hull of the point set.

    In 2-D an exact upper-hull chain is used.  In higher dimensions we fall
    back to the skyline (a superset of the hull that preserves correctness of
    the pruning: anything achievable at rank 1 by a linear function lies on the
    skyline).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DatasetError("upper_hull_indices expects an (n, d) matrix")
    if scores.shape[1] == 2:
        return _upper_hull_2d(scores)
    return skyline_indices(scores)


def convex_layers(scores: np.ndarray, max_layers: int | None = None) -> list[np.ndarray]:
    """Peel the point set into convex layers.

    Parameters
    ----------
    scores:
        ``(n, d)`` matrix of scoring attributes.
    max_layers:
        Stop after this many layers (``None`` peels everything).

    Returns
    -------
    list of numpy.ndarray
        ``layers[i]`` holds the original item indices on layer ``i``.
    """
    scores = np.asarray(scores, dtype=float)
    remaining = np.arange(scores.shape[0])
    layers: list[np.ndarray] = []
    while remaining.size:
        if max_layers is not None and len(layers) >= max_layers:
            break
        hull_local = upper_hull_indices(scores[remaining])
        layer = remaining[hull_local]
        layers.append(np.sort(layer))
        mask = np.ones(remaining.size, dtype=bool)
        mask[hull_local] = False
        remaining = remaining[mask]
    return layers


def topk_candidate_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Return indices of all items that can appear in some top-``k``.

    The union of the first ``k`` convex layers is a superset of the items that
    any linear scoring function with non-negative weights can place in its
    top-``k`` (paper §8).  Restricting ordering-exchange construction to this
    set preserves the oracle verdict for top-``k`` oracles while shrinking the
    arrangement.
    """
    if k <= 0:
        raise DatasetError("k must be positive")
    scores = np.asarray(scores, dtype=float)
    if k >= scores.shape[0]:
        return np.arange(scores.shape[0])
    layers = convex_layers(scores, max_layers=k)
    if not layers:
        return np.arange(scores.shape[0])
    return np.sort(np.concatenate(layers))
