"""Loaders for the real datasets used in the paper's evaluation (§6.1).

The repository ships synthetic stand-ins (:mod:`repro.data.synthetic`) because
the real files cannot be redistributed and the build environment has no
network access.  Users who *do* have the originals can load them with the
functions here, which apply exactly the preparation the paper describes:

* **COMPAS** (`compas-scores-two-years.csv` from the ProPublica repository):
  the seven scoring attributes of §6.1, min-max normalised, with ``age``
  inverted (lower is better); the type attributes ``sex``, ``race``,
  ``age_binary`` (35 or younger vs older) and ``age_bucketized`` derived the
  way the paper describes.
* **DOT on-time performance** (the Bureau of Transportation Statistics
  on-time CSV): ``departure_delay``, ``arrival_delay`` and ``taxi_in`` as
  scoring attributes (delays inverted so that smaller raw delays score
  higher), with the carrier code as the type attribute.

Both loaders drop rows with missing or non-numeric values in the selected
columns and report how many rows were kept, so the preparation is transparent.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DatasetError, SchemaError

__all__ = [
    "LoadReport",
    "load_numeric_csv",
    "load_compas_csv",
    "load_dot_csv",
    "COMPAS_COLUMN_MAP",
    "DOT_COLUMN_MAP",
]

#: Scoring / type columns of the ProPublica COMPAS file, as used in §6.1.
COMPAS_COLUMN_MAP: Mapping[str, Sequence[str]] = {
    "scoring": (
        "c_days_from_compas",
        "juv_other_count",
        "days_b_screening_arrest",
        "start",
        "end",
        "age",
        "priors_count",
    ),
    "types": ("sex", "race"),
}

#: Scoring / type columns of the DOT on-time performance file (§6.4).
DOT_COLUMN_MAP: Mapping[str, Sequence[str]] = {
    "scoring": ("DEP_DELAY", "ARR_DELAY", "TAXI_IN"),
    "types": ("CARRIER",),
}


@dataclass(frozen=True)
class LoadReport:
    """Outcome of loading a raw CSV into a :class:`~repro.data.dataset.Dataset`.

    Attributes
    ----------
    dataset:
        The prepared dataset (normalised scoring attributes, derived types).
    n_rows_read:
        Number of data rows in the file.
    n_rows_kept:
        Rows that survived the missing-value / parse filter.
    dropped_columns_note:
        Human-readable note about any preparation applied (inversions, derived
        attributes), useful for experiment logs.
    """

    dataset: Dataset
    n_rows_read: int
    n_rows_kept: int
    dropped_columns_note: str = ""

    @property
    def fraction_kept(self) -> float:
        """Share of file rows that made it into the dataset."""
        if self.n_rows_read == 0:
            return 0.0
        return self.n_rows_kept / self.n_rows_read


def _read_csv_rows(path: str | Path) -> tuple[list[str], list[list[str]]]:
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DatasetError(f"CSV file {path!r} is empty") from exc
        rows = [row for row in reader if row]
    return header, rows


def load_numeric_csv(
    path: str | Path,
    scoring_columns: Sequence[str],
    type_columns: Sequence[str] = (),
    invert: Sequence[str] = (),
    normalize: bool = True,
    name: str | None = None,
) -> LoadReport:
    """Load selected columns of a raw CSV into a dataset.

    Rows where any selected scoring column is missing or not numeric are
    dropped.  Negative values are shifted to zero per column (the data model
    requires non-negative scores) before optional min-max normalisation.

    Parameters
    ----------
    path:
        CSV file with a header row.
    scoring_columns:
        Columns to use as scoring attributes, in order.
    type_columns:
        Columns to carry over as categorical type attributes.
    invert:
        Scoring columns for which smaller raw values are better; they are
        flipped during normalisation (requires ``normalize=True``).
    normalize:
        Min-max normalise every scoring column to ``[0, 1]`` (§6.1).
    name:
        Dataset name; defaults to the file name.
    """
    scoring_columns = list(scoring_columns)
    type_columns = list(type_columns)
    invert = list(invert)
    if not scoring_columns:
        raise SchemaError("at least one scoring column is required")
    unknown_invert = set(invert) - set(scoring_columns)
    if unknown_invert:
        raise SchemaError(f"invert lists non-scoring columns: {sorted(unknown_invert)}")
    if invert and not normalize:
        raise SchemaError("invert requires normalize=True (inversion is 1 - normalised value)")

    header, rows = _read_csv_rows(path)
    positions: dict[str, int] = {}
    for column in [*scoring_columns, *type_columns]:
        if column not in header:
            raise SchemaError(f"column {column!r} not found in {path}")
        positions[column] = header.index(column)

    kept_scores: list[list[float]] = []
    kept_types: dict[str, list[str]] = {column: [] for column in type_columns}
    for row in rows:
        values = []
        valid = True
        for column in scoring_columns:
            raw = row[positions[column]].strip() if positions[column] < len(row) else ""
            if raw == "":
                valid = False
                break
            try:
                values.append(float(raw))
            except ValueError:
                valid = False
                break
        if not valid:
            continue
        kept_scores.append(values)
        for column in type_columns:
            position = positions[column]
            kept_types[column].append(row[position].strip() if position < len(row) else "")

    if not kept_scores:
        raise DatasetError(f"no usable rows in {path} for columns {scoring_columns}")

    scores = np.asarray(kept_scores, dtype=float)
    # Shift any negative column so the data-model precondition (non-negative
    # scoring attributes) holds; delays in the DOT data are routinely negative.
    minima = scores.min(axis=0)
    scores = scores - np.minimum(minima, 0.0)

    dataset = Dataset(
        scores=scores,
        scoring_attributes=scoring_columns,
        types={column: np.asarray(values) for column, values in kept_types.items()},
        name=name or Path(path).name,
    )
    if normalize:
        dataset = dataset.normalized(invert=invert)
    note = f"normalized={normalize}; inverted={sorted(invert)}" if normalize else "raw values"
    return LoadReport(
        dataset=dataset,
        n_rows_read=len(rows),
        n_rows_kept=len(kept_scores),
        dropped_columns_note=note,
    )


def load_compas_csv(path: str | Path, age_threshold: int = 35) -> LoadReport:
    """Load the ProPublica COMPAS file with the paper's §6.1 preparation.

    The seven scoring attributes of §6.1 are selected and min-max normalised
    with ``age`` inverted (younger individuals receive higher normalised
    scores, matching the paper's triage framing).  Besides the file's ``sex``
    and ``race`` columns, the derived type attributes ``age_binary``
    (``{"35_or_younger", "over_35"}``) and ``age_bucketized``
    (``{"30_or_younger", "31_to_40", "over_40"}``) are added.

    Parameters
    ----------
    path:
        Path to ``compas-scores-two-years.csv`` (or a file with those columns).
    age_threshold:
        Cut-off for the binary age attribute (the paper uses 35).
    """
    # Load raw (unnormalised) values first so the categorical age attributes
    # can be derived from the same, already-filtered rows.
    raw = load_numeric_csv(
        path,
        scoring_columns=list(COMPAS_COLUMN_MAP["scoring"]),
        type_columns=list(COMPAS_COLUMN_MAP["types"]),
        normalize=False,
        name="compas",
    )
    ages = raw.dataset.column("age")
    age_binary = np.where(ages <= age_threshold, "35_or_younger", "over_35")
    age_bucketized = np.where(
        ages <= 30, "30_or_younger", np.where(ages <= 40, "31_to_40", "over_40")
    )
    types = dict(raw.dataset.types)
    types["age_binary"] = age_binary
    types["age_bucketized"] = age_bucketized
    dataset = Dataset(
        scores=raw.dataset.scores,
        scoring_attributes=raw.dataset.scoring_attributes,
        types=types,
        name="compas",
    ).normalized(invert=["age"])
    return LoadReport(
        dataset=dataset,
        n_rows_read=raw.n_rows_read,
        n_rows_kept=raw.n_rows_kept,
        dropped_columns_note=(
            "normalized=True; inverted=['age']; derived age_binary, age_bucketized"
        ),
    )


def load_dot_csv(path: str | Path) -> LoadReport:
    """Load the DOT on-time performance file with the paper's §6.4 preparation.

    Departure delay, arrival delay and taxi-in time are the scoring
    attributes; all three are inverted (shorter delays are better) after
    min-max normalisation, and the carrier code becomes the type attribute
    ``carrier``.
    """
    report = load_numeric_csv(
        path,
        scoring_columns=list(DOT_COLUMN_MAP["scoring"]),
        type_columns=list(DOT_COLUMN_MAP["types"]),
        invert=list(DOT_COLUMN_MAP["scoring"]),
        normalize=True,
        name="dot",
    )
    renamed = Dataset(
        scores=report.dataset.scores,
        scoring_attributes=["departure_delay", "arrival_delay", "taxi_in"],
        types={"carrier": report.dataset.type_column("CARRIER")},
        name="dot",
    )
    return LoadReport(
        dataset=renamed,
        n_rows_read=report.n_rows_read,
        n_rows_kept=report.n_rows_kept,
        dropped_columns_note=report.dropped_columns_note + "; delays inverted (shorter is better)",
    )
