"""Dataset substrate: containers, dominance, convex layers and synthetic data.

This package provides everything the paper's algorithms need from the data
side — the :class:`~repro.data.dataset.Dataset` container with normalisation
and sampling, Pareto-dominance tests used to skip useless ordering exchanges,
the convex-layer ("onion") pruning of §8, and synthetic stand-ins for the
COMPAS and DOT datasets used in the paper's evaluation.
"""

from repro.data.dataset import Dataset, normalize_minmax
from repro.data.loaders import LoadReport, load_compas_csv, load_dot_csv, load_numeric_csv
from repro.data.dominance import (
    dominance_matrix,
    dominates,
    exchange_pair_indices,
    iter_exchange_pair_chunks,
    non_dominated_pairs,
    pairwise_close_matrix,
    skyline_indices,
)
from repro.data.layers import convex_layers, topk_candidate_indices, upper_hull_indices
from repro.data.synthetic import (
    COMPAS_SCORING_ATTRIBUTES,
    DOT_CARRIER_SHARES,
    DOT_SCORING_ATTRIBUTES,
    make_admissions_like,
    make_compas_like,
    make_correlated_dataset,
    make_dot_like,
    make_uniform_dataset,
)

__all__ = [
    "Dataset",
    "normalize_minmax",
    "LoadReport",
    "load_numeric_csv",
    "load_compas_csv",
    "load_dot_csv",
    "dominates",
    "dominance_matrix",
    "pairwise_close_matrix",
    "skyline_indices",
    "non_dominated_pairs",
    "exchange_pair_indices",
    "iter_exchange_pair_chunks",
    "convex_layers",
    "upper_hull_indices",
    "topk_candidate_indices",
    "COMPAS_SCORING_ATTRIBUTES",
    "DOT_SCORING_ATTRIBUTES",
    "DOT_CARRIER_SHARES",
    "make_compas_like",
    "make_dot_like",
    "make_admissions_like",
    "make_uniform_dataset",
    "make_correlated_dataset",
]
