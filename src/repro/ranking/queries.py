"""Query workload generators.

The paper's validation and timing experiments (§6.2, §6.3) issue batches of
random scoring functions ("100 random queries", "30 random queries") against
the preprocessed index.  These helpers generate such workloads reproducibly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ranking.scoring import LinearScoringFunction, random_scoring_function

__all__ = ["random_queries", "perturbed_queries", "simplex_grid_queries"]


def random_queries(
    dimension: int, count: int, seed: int | None = 0
) -> list[LinearScoringFunction]:
    """Draw ``count`` scoring functions uniformly over directions."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rng = np.random.default_rng(seed)
    return [random_scoring_function(dimension, rng) for _ in range(count)]


def perturbed_queries(
    base: LinearScoringFunction, count: int, scale: float = 0.1, seed: int | None = 0
) -> list[LinearScoringFunction]:
    """Generate queries near a base function (a designer nudging weights).

    Each query adds zero-mean Gaussian noise of the given ``scale`` to the base
    weights and clips at zero, modelling the iterative tuning loop described in
    the paper's introduction.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    if scale < 0:
        raise ConfigurationError("scale must be non-negative")
    rng = np.random.default_rng(seed)
    base_weights = base.as_array()
    queries = []
    while len(queries) < count:
        candidate = np.clip(base_weights + rng.normal(scale=scale, size=base.dimension), 0.0, None)
        if np.any(candidate > 0):
            queries.append(LinearScoringFunction(tuple(candidate)))
    return queries


def simplex_grid_queries(dimension: int, resolution: int) -> list[LinearScoringFunction]:
    """Enumerate weight vectors on a regular grid of the probability simplex.

    Useful for exhaustively mapping which functions are satisfactory in low
    dimensions (the "layout" experiments of §6.2).
    """
    if dimension < 2:
        raise ConfigurationError("dimension must be >= 2")
    if resolution < 1:
        raise ConfigurationError("resolution must be >= 1")
    queries: list[LinearScoringFunction] = []

    def recurse(prefix: list[int], remaining: int, slots: int) -> None:
        if slots == 1:
            weights = prefix + [remaining]
            if any(weights):
                queries.append(
                    LinearScoringFunction(tuple(value / resolution for value in weights))
                )
            return
        for value in range(remaining + 1):
            recurse(prefix + [value], remaining - value, slots - 1)

    recurse([], resolution, dimension)
    return queries
