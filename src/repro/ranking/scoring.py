"""Linear scoring functions and the orderings they induce.

The paper's ranking model (§2) scores an item ``t`` as the weighted sum
``f(t) = Σ w_j · t[j]`` with non-negative weights, sorts items by decreasing
score and optionally truncates to the top-``k``.  A scoring function is
identified with the *ray* of its weight vector: positive scalings induce the
same ordering, so equality and distance between functions are defined on the
angle representation (see :mod:`repro.geometry.angles`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ScoringFunctionError
from repro.geometry.angles import angular_distance, to_angles, to_weights

__all__ = ["LinearScoringFunction", "order_many", "random_scoring_function"]


@dataclass(frozen=True)
class LinearScoringFunction:
    """A linear scoring function ``f(t) = Σ w_j · t[j]`` with non-negative weights.

    Instances are immutable and hashable; two functions compare equal exactly
    when their weight tuples are identical (use :meth:`same_ray` /
    :meth:`angular_distance_to` for scale-insensitive comparisons).
    """

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        weights = tuple(float(value) for value in self.weights)
        if len(weights) < 2:
            raise ScoringFunctionError("a scoring function needs at least two weights")
        if not all(np.isfinite(weights)):
            raise ScoringFunctionError("weights must be finite")
        if any(value < 0 for value in weights):
            raise ScoringFunctionError("weights must be non-negative (paper §2)")
        if all(value == 0 for value in weights):
            raise ScoringFunctionError("at least one weight must be positive")
        object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_angles(cls, angles: np.ndarray, radius: float = 1.0) -> "LinearScoringFunction":
        """Build a function from its angle-coordinate representation."""
        return cls(tuple(to_weights(np.asarray(angles, dtype=float), radius=radius)))

    @classmethod
    def _from_trusted(cls, weights: tuple[float, ...]) -> "LinearScoringFunction":
        """Construct from an already-validated tuple of Python floats.

        Batch query paths validate a whole weight matrix with one vectorised
        check (finite, non-negative, some positive entry per row), so the
        per-instance ``__post_init__`` re-validation would be pure overhead —
        at thousands of queries per call it dominates the batch runtime.  The
        caller guarantees the invariants; instances are indistinguishable
        (``==``, ``hash``, behaviour) from normally constructed ones.
        """
        function = object.__new__(cls)
        object.__setattr__(function, "weights", weights)
        return function

    @classmethod
    def uniform(cls, dimension: int) -> "LinearScoringFunction":
        """The equal-weights function ``(1/d, ..., 1/d)``."""
        if dimension < 2:
            raise ScoringFunctionError("dimension must be >= 2")
        return cls(tuple([1.0 / dimension] * dimension))

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of scoring attributes the function expects."""
        return len(self.weights)

    def as_array(self) -> np.ndarray:
        """Weights as a numpy array (memoized; the returned array is read-only).

        Scoring, ordering and angular-distance computations all start from
        this array, and sweep/arrangement code calls them in tight loops — so
        the conversion is done once per (immutable) function instance.
        """
        array = getattr(self, "_weights_array", None)
        if array is None:
            array = np.asarray(self.weights, dtype=float)
            array.setflags(write=False)
            object.__setattr__(self, "_weights_array", array)
        return array

    def normalized(self) -> "LinearScoringFunction":
        """The same ray with unit Euclidean norm."""
        array = self.as_array()
        return LinearScoringFunction(tuple(array / np.linalg.norm(array)))

    def to_angles(self) -> np.ndarray:
        """Angle-coordinate representation of the function's ray."""
        return to_angles(self.as_array())

    def angular_distance_to(self, other: "LinearScoringFunction") -> float:
        """Angular distance (radians) to another function's ray."""
        return angular_distance(self.as_array(), other.as_array())

    def same_ray(self, other: "LinearScoringFunction", tolerance: float = 1e-6) -> bool:
        """Return True if the two functions induce the same ordering on every dataset."""
        return self.angular_distance_to(other) <= tolerance

    # ------------------------------------------------------------------ #
    # scoring and ordering
    # ------------------------------------------------------------------ #
    def score(self, dataset: Dataset) -> np.ndarray:
        """Score every item of the dataset."""
        self._check_dataset(dataset)
        return dataset.scores @ self.as_array()

    def score_item(self, item: np.ndarray) -> float:
        """Score a single item vector."""
        item = np.asarray(item, dtype=float)
        if item.shape != (self.dimension,):
            raise ScoringFunctionError(
                f"item of dimension {item.shape} does not match function of dimension "
                f"{self.dimension}"
            )
        return float(np.dot(item, self.as_array()))

    def order(self, dataset: Dataset) -> np.ndarray:
        """Return item indices ordered by decreasing score.

        Ties are broken by ascending item index so the ordering is
        deterministic, which keeps oracle evaluations reproducible.
        """
        scores = self.score(dataset)
        # numpy's stable sort is ascending; sort by negative score to get a
        # descending order while preserving index order within ties.
        return np.argsort(-scores, kind="stable")

    def top_k(self, dataset: Dataset, k: int) -> np.ndarray:
        """Return the indices of the ``k`` highest-scoring items, in rank order."""
        if k <= 0:
            raise ScoringFunctionError("k must be positive")
        return self.order(dataset)[: min(k, dataset.n_items)]

    def _check_dataset(self, dataset: Dataset) -> None:
        if dataset.n_attributes != self.dimension:
            raise ScoringFunctionError(
                f"function has {self.dimension} weights but the dataset has "
                f"{dataset.n_attributes} scoring attributes"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        formatted = ", ".join(f"{value:.4g}" for value in self.weights)
        return f"LinearScoringFunction([{formatted}])"


def order_many(dataset: Dataset, weight_matrix: np.ndarray) -> np.ndarray:
    """Orderings induced by every row of a weight matrix, stacked as ``(q, n)``.

    The batched counterpart of :meth:`LinearScoringFunction.order`: row ``i``
    of the result is bit-identical to
    ``LinearScoringFunction(tuple(weight_matrix[i])).order(dataset)``.  The
    whole batch is scored with one stacked ``np.matmul`` over the
    ``(q, n, d) @ (q, d, 1)`` broadcast — the gufunc applies the identical
    per-matrix kernel that scores a single function, which is what keeps the
    scores (and therefore the stable argsort) exactly equal to the scalar
    path; a plain ``scores @ W.T`` GEMM accumulates in a different order and
    can drift by an ulp.  One stable axis-wise argsort then orders every row.

    Parameters
    ----------
    dataset:
        The dataset to order.
    weight_matrix:
        ``(q, d)`` matrix of non-negative weight rows, ``d`` matching the
        dataset's scoring attributes.

    Returns
    -------
    numpy.ndarray
        ``(q, n)`` integer matrix; row ``i`` lists item indices by decreasing
        score under ``weight_matrix[i]``, ties broken by ascending item index.

    Raises
    ------
    ScoringFunctionError
        If the matrix is not 2-D or its width does not match the dataset.
    """
    weight_matrix = np.asarray(weight_matrix, dtype=float)
    if weight_matrix.ndim != 2 or weight_matrix.shape[1] != dataset.n_attributes:
        raise ScoringFunctionError(
            f"order_many expects a (q, {dataset.n_attributes}) weight matrix, "
            f"got shape {weight_matrix.shape}"
        )
    score_matrix = np.matmul(
        dataset.scores[None, :, :], weight_matrix[:, :, None]
    )[..., 0]
    return np.argsort(-score_matrix, axis=1, kind="stable")


def random_scoring_function(
    dimension: int, rng: np.random.Generator | None = None
) -> LinearScoringFunction:
    """Draw a scoring function uniformly at random from the space of directions.

    The direction is uniform on the first orthant of the unit sphere (drawn
    from the absolute value of a standard Gaussian, then normalised), which is
    the natural "random query" distribution used in the paper's validation and
    timing experiments (§6.2–6.3).

    When no generator is passed, a fresh seed-0 generator is used, so repeated
    bare calls return the *same* function: every draw in this library is
    seeded, and callers who want a sequence of distinct functions pass their
    own generator (as :func:`repro.ranking.queries.random_queries` does).
    """
    if dimension < 2:
        raise ScoringFunctionError("dimension must be >= 2")
    rng = rng if rng is not None else np.random.default_rng(0)
    direction = np.abs(rng.normal(size=dimension))
    while not np.any(direction > 0):  # pragma: no cover - probability zero
        direction = np.abs(rng.normal(size=dimension))
    return LinearScoringFunction(tuple(direction / np.linalg.norm(direction)))
