"""Ranking model: linear scoring functions, orderings, top-k helpers and query workloads."""

from repro.ranking.queries import perturbed_queries, random_queries, simplex_grid_queries
from repro.ranking.scoring import LinearScoringFunction, order_many, random_scoring_function
from repro.ranking.topk import (
    group_counts_at_k,
    group_fraction_at_k,
    kendall_tau_distance,
    ordering_is_valid,
    resolve_k,
)

__all__ = [
    "LinearScoringFunction",
    "order_many",
    "random_scoring_function",
    "random_queries",
    "perturbed_queries",
    "simplex_grid_queries",
    "resolve_k",
    "group_counts_at_k",
    "group_fraction_at_k",
    "ordering_is_valid",
    "kendall_tau_distance",
]
