"""Helpers over ranked lists: prefixes, group counts and comparisons.

These utilities sit between the ranking model and the fairness layer: fairness
oracles and measures consume an *ordering* (an array of item indices) and need
to count protected-group members in prefixes of that ordering.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DatasetError

__all__ = [
    "resolve_k",
    "group_counts_at_k",
    "group_fraction_at_k",
    "ordering_is_valid",
    "kendall_tau_distance",
]


def resolve_k(dataset: Dataset, k: int | float) -> int:
    """Turn a top-``k`` specification into an item count.

    ``k`` may be an absolute count (``int >= 1``) or a fraction of the dataset
    (``0 < k < 1``), which is how the paper states several constraints ("the
    top-ranked 30 %").  The result is clamped to ``[1, n]``.
    """
    if isinstance(k, bool):
        raise DatasetError("k must be a count or a fraction, not a boolean")
    if isinstance(k, float) and not k.is_integer():
        if not 0.0 < k < 1.0:
            raise DatasetError("a fractional k must lie strictly between 0 and 1")
        return max(1, int(round(k * dataset.n_items)))
    count = int(k)
    if count < 1:
        raise DatasetError("k must be at least 1")
    return min(count, dataset.n_items)


def ordering_is_valid(ordering: np.ndarray, n_items: int) -> bool:
    """Return True if ``ordering`` is a permutation of ``0..n_items-1``."""
    ordering = np.asarray(ordering)
    if ordering.shape != (n_items,):
        return False
    return bool(np.array_equal(np.sort(ordering), np.arange(n_items)))


def group_counts_at_k(
    dataset: Dataset, ordering: np.ndarray, attribute: str, k: int
) -> dict:
    """Count the members of each group of a type attribute in the top-``k`` prefix."""
    ordering = np.asarray(ordering, dtype=int)
    if k < 1 or k > ordering.size:
        raise DatasetError(f"k={k} outside valid range 1..{ordering.size}")
    column = dataset.type_column(attribute)
    prefix = column[ordering[:k]]
    values, counts = np.unique(prefix, return_counts=True)
    return {value: int(count) for value, count in zip(values.tolist(), counts.tolist())}


def group_fraction_at_k(
    dataset: Dataset, ordering: np.ndarray, attribute: str, group, k: int
) -> float:
    """Fraction of the top-``k`` prefix belonging to one group (0 if absent)."""
    counts = group_counts_at_k(dataset, ordering, attribute, k)
    return counts.get(group, 0) / float(k)


def kendall_tau_distance(first: np.ndarray, second: np.ndarray) -> int:
    """Number of discordant pairs between two orderings of the same items.

    Used in tests to verify that orderings change exactly at ordering-exchange
    boundaries (one adjacent swap ⇒ Kendall distance 1).
    """
    first = np.asarray(first, dtype=int)
    second = np.asarray(second, dtype=int)
    if first.shape != second.shape:
        raise DatasetError("orderings must have the same length")
    n = first.size
    position_in_second = np.empty(n, dtype=int)
    position_in_second[second] = np.arange(n)
    mapped = position_in_second[first]
    # Count inversions of `mapped` with a merge-sort style O(n log n) pass.
    return _count_inversions(mapped.tolist())


def _count_inversions(values: list[int]) -> int:
    if len(values) <= 1:
        return 0
    middle = len(values) // 2
    left = values[:middle]
    right = values[middle:]
    inversions = _count_inversions(left) + _count_inversions(right)
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            inversions += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    values[:] = merged
    return inversions
