"""JSON round-trip for :class:`~repro.data.dataset.Dataset`.

CSV persistence (``Dataset.to_csv`` / ``from_csv``) is convenient for
interchange with spreadsheets; the JSON form here is what the index store uses
when an index file should be self-contained (carrying the exact dataset
snapshot it was built against), and it preserves the dataset name and the
distinction between scoring and type attributes without header conventions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DatasetError

__all__ = ["dataset_to_dict", "dataset_from_dict", "save_dataset_json", "load_dataset_json"]

#: Schema identifier written into every serialised dataset.
DATASET_FORMAT = "repro.dataset/v1"


def dataset_to_dict(dataset: Dataset) -> dict:
    """Serialise a dataset to a JSON-compatible dictionary."""
    return {
        "format": DATASET_FORMAT,
        "name": dataset.name,
        "scoring_attributes": list(dataset.scoring_attributes),
        "scores": dataset.scores.tolist(),
        "types": {
            key: np.asarray(column).tolist() for key, column in dataset.types.items()
        },
    }


def dataset_from_dict(payload: dict) -> Dataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output.

    Raises
    ------
    DatasetError
        If the payload is not a serialised dataset or is malformed.
    """
    if not isinstance(payload, dict) or payload.get("format") != DATASET_FORMAT:
        raise DatasetError(
            f"payload is not a serialised dataset (expected format {DATASET_FORMAT!r})"
        )
    try:
        return Dataset(
            scores=np.asarray(payload["scores"], dtype=float),
            scoring_attributes=list(payload["scoring_attributes"]),
            types={key: np.asarray(column) for key, column in payload.get("types", {}).items()},
            name=str(payload.get("name", "dataset")),
        )
    except KeyError as exc:
        raise DatasetError(f"serialised dataset is missing field {exc}") from exc


def save_dataset_json(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to a JSON file."""
    Path(path).write_text(json.dumps(dataset_to_dict(dataset)), encoding="utf-8")


def load_dataset_json(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path} does not contain valid JSON") from exc
    return dataset_from_dict(payload)
