"""Serialisation of offline indexes to JSON ("build once, query many times").

Three index kinds exist, one per pipeline:

* :class:`~repro.core.two_dim.TwoDIndex` — the sorted satisfactory angular
  intervals of ``2DRAYSWEEP``;
* :class:`~repro.core.multi_dim.MDExactIndex` — the satisfactory regions of
  ``SATREGIONS`` (each region is a conjunction of half-spaces);
* :class:`~repro.core.approx.MDApproxIndex` — the per-cell assignment of the
  §5 approximation pipeline.

The 2-D and exact indexes are fully self-contained.  The approximate index
needs the dataset and the fairness oracle at query time (``MDONLINE`` first
re-checks whether the query itself is satisfactory), so loading it requires
the caller to supply them — optionally the dataset snapshot can be embedded in
the file so only the oracle has to be reconstructed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.approx import MDApproxIndex, PreprocessingTimings
from repro.core.multi_dim import MDExactIndex, SatisfactoryRegion
from repro.core.two_dim import AngularInterval, TwoDIndex
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, GeometryError, IndexIntegrityError
from repro.fairness.oracle import FairnessOracle
from repro.geometry.hyperplane import HalfSpace, Hyperplane, Region
from repro.geometry.partition import AnglePartition, AnglePartitionProtocol, UniformGridPartition
from repro.geometry.angles import to_weights
from repro.io.dataset_json import dataset_from_dict, dataset_to_dict
from repro.ranking.scoring import LinearScoringFunction

__all__ = [
    "two_d_index_to_dict",
    "two_d_index_from_dict",
    "exact_index_to_dict",
    "exact_index_from_dict",
    "approx_index_to_dict",
    "approx_index_from_dict",
    "save_index",
    "load_index",
    "save_engine",
    "load_engine",
    "payload_checksum",
    "read_store_digest",
    "STORE_FORMAT",
    "ENGINE_JOURNAL_FORMAT",
]

#: Schema identifier written into every serialised index.
INDEX_FORMAT = "repro.index/v1"

#: Schema identifier of the file-level checksum envelope.
STORE_FORMAT = "repro.store/v1"

#: Hash algorithm the envelope records (and the only one this version reads).
_STORE_ALGORITHM = "sha256"

#: Schema identifier of a journaled engine payload (base snapshot + deltas).
ENGINE_JOURNAL_FORMAT = "repro.engine-journal/v1"


# --------------------------------------------------------------------------- #
# checksum envelope
# --------------------------------------------------------------------------- #
def payload_checksum(payload: dict) -> str:
    """Hex SHA-256 of a payload's canonical JSON form.

    Canonical means sorted keys and no whitespace, so the digest depends only
    on the payload's *content*, not on how the surrounding file was formatted.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _wrap_payload(payload: dict) -> dict:
    """Wrap an index/engine payload in the versioned checksum envelope."""
    return {
        "format": STORE_FORMAT,
        "algorithm": _STORE_ALGORITHM,
        "digest": payload_checksum(payload),
        "payload": payload,
    }


def read_store_digest(path: str | Path) -> str | None:
    """The checksum envelope's recorded digest of a store file, or ``None``.

    Returns the ``digest`` field of a :data:`STORE_FORMAT` envelope without
    reconstructing the payload — enough for a serving pool to pin the exact
    index bytes every worker must load (each worker compares this digest and
    the full :func:`load_engine` verification still runs on load).  Returns
    ``None`` for pre-envelope files; raises
    :class:`~repro.exceptions.IndexIntegrityError` for unreadable JSON.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IndexIntegrityError(
            f"{path} does not contain valid JSON — the file is corrupt or truncated",
            path=path,
            hint=_REBUILD_HINT,
        ) from exc
    if not isinstance(document, dict) or document.get("format") != STORE_FORMAT:
        return None
    digest = document.get("digest")
    return digest if isinstance(digest, str) else None


_REBUILD_HINT = "the file is unusable; rebuild and re-save the index to recover"


def _unwrap_payload(document, path):
    """Verify and strip the checksum envelope; pass legacy bare payloads through.

    Raises :class:`~repro.exceptions.IndexIntegrityError` — never returns a
    partially-validated payload — when the envelope announces a newer store
    version, an unknown algorithm, a malformed structure, or a digest that
    does not match the payload bytes.
    """
    if not isinstance(document, dict) or not str(document.get("format", "")).startswith(
        "repro.store/"
    ):
        # Pre-envelope file (or a bare payload dict): served unchanged so
        # indexes saved before checksumming keep loading.
        return document
    if document["format"] != STORE_FORMAT:
        raise IndexIntegrityError(
            f"{path} uses store format {document['format']!r} but this version "
            f"reads {STORE_FORMAT!r}",
            path=path,
            hint="upgrade the library, or rebuild and re-save the index",
        )
    algorithm = document.get("algorithm")
    if algorithm != _STORE_ALGORITHM:
        raise IndexIntegrityError(
            f"{path} declares unsupported checksum algorithm {algorithm!r}",
            path=path,
            hint=_REBUILD_HINT,
        )
    payload = document.get("payload")
    digest = document.get("digest")
    if not isinstance(payload, dict) or not isinstance(digest, str):
        raise IndexIntegrityError(
            f"{path} has a malformed checksum envelope "
            "(missing or mistyped 'payload'/'digest')",
            path=path,
            hint=_REBUILD_HINT,
        )
    actual = payload_checksum(payload)
    if actual != digest:
        raise IndexIntegrityError(
            f"{path} failed its integrity check: stored digest {digest[:12]}… "
            f"does not match the payload's {actual[:12]}… — the file was "
            "corrupted or hand-edited",
            path=path,
            hint=_REBUILD_HINT,
        )
    return payload


def _read_document(path: str | Path):
    """Read a JSON store file and return its verified payload."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise IndexIntegrityError(
            f"{path} does not contain valid JSON — the file is corrupt or truncated",
            path=path,
            hint=_REBUILD_HINT,
        ) from exc
    return _unwrap_payload(document, path)


# --------------------------------------------------------------------------- #
# 2-D index
# --------------------------------------------------------------------------- #
def two_d_index_to_dict(index: TwoDIndex) -> dict:
    """Serialise a 2-D ray-sweep index."""
    return {
        "format": INDEX_FORMAT,
        "index_kind": "2d",
        "intervals": [[interval.start, interval.end] for interval in index.intervals],
        "n_exchanges": index.n_exchanges,
        "oracle_calls": index.oracle_calls,
    }


def two_d_index_from_dict(payload: dict) -> TwoDIndex:
    """Rebuild a 2-D index from :func:`two_d_index_to_dict` output."""
    _check_payload(payload, "2d")
    return TwoDIndex(
        intervals=[AngularInterval(float(start), float(end)) for start, end in payload["intervals"]],
        n_exchanges=int(payload.get("n_exchanges", 0)),
        oracle_calls=int(payload.get("oracle_calls", 0)),
    )


# --------------------------------------------------------------------------- #
# exact multi-dimensional index
# --------------------------------------------------------------------------- #
def _half_space_to_dict(half_space: HalfSpace) -> dict:
    return {
        "coefficients": list(half_space.hyperplane.coefficients),
        "label": list(half_space.hyperplane.label) if half_space.hyperplane.label else None,
        "sign": half_space.sign,
    }


def _half_space_from_dict(payload: dict) -> HalfSpace:
    label = tuple(payload["label"]) if payload.get("label") else None
    hyperplane = Hyperplane(tuple(float(c) for c in payload["coefficients"]), label=label)
    return HalfSpace(hyperplane, int(payload["sign"]))


def exact_index_to_dict(index: MDExactIndex) -> dict:
    """Serialise a ``SATREGIONS`` index (regions, representatives and statistics)."""
    regions = []
    for satisfactory in index.satisfactory_regions:
        regions.append(
            {
                "half_spaces": [
                    _half_space_to_dict(half_space)
                    for half_space in satisfactory.region.half_spaces
                ],
                "representative_angles": list(satisfactory.representative_angles),
            }
        )
    return {
        "format": INDEX_FORMAT,
        "index_kind": "exact",
        "dimension": index.dimension,
        "satisfactory_regions": regions,
        "n_hyperplanes": index.n_hyperplanes,
        "n_regions": index.n_regions,
        "oracle_calls": index.oracle_calls,
    }


def exact_index_from_dict(payload: dict) -> MDExactIndex:
    """Rebuild an exact index from :func:`exact_index_to_dict` output."""
    _check_payload(payload, "exact")
    dimension = int(payload["dimension"])
    regions: list[SatisfactoryRegion] = []
    for entry in payload["satisfactory_regions"]:
        half_spaces = [_half_space_from_dict(item) for item in entry["half_spaces"]]
        angles = tuple(float(value) for value in entry["representative_angles"])
        regions.append(
            SatisfactoryRegion(
                region=Region(dimension, half_spaces),
                representative_angles=angles,
                representative=LinearScoringFunction(
                    tuple(to_weights(np.asarray(angles, dtype=float)))
                ),
            )
        )
    return MDExactIndex(
        dimension=dimension,
        satisfactory_regions=regions,
        n_hyperplanes=int(payload.get("n_hyperplanes", 0)),
        n_regions=int(payload.get("n_regions", 0)),
        oracle_calls=int(payload.get("oracle_calls", 0)),
    )


# --------------------------------------------------------------------------- #
# approximate (grid) index
# --------------------------------------------------------------------------- #
def _partition_to_dict(partition: AnglePartitionProtocol) -> dict:
    if isinstance(partition, UniformGridPartition):
        return {
            "kind": "uniform",
            "dimension": partition.dimension,
            "n_cells": partition.n_cells,
        }
    if isinstance(partition, AnglePartition):
        return {
            "kind": "angle",
            "dimension": partition.dimension,
            "target_cells": partition.target_cells,
        }
    raise ConfigurationError(
        f"cannot serialise partition of type {type(partition).__name__}; "
        "only the built-in uniform and angle partitions are supported"
    )


def _partition_from_dict(payload: dict) -> AnglePartitionProtocol:
    kind = payload.get("kind")
    dimension = int(payload["dimension"])
    if kind == "uniform":
        return UniformGridPartition(dimension, int(payload["n_cells"]))
    if kind == "angle":
        return AnglePartition(dimension, int(payload["target_cells"]))
    raise ConfigurationError(f"unknown serialised partition kind {kind!r}")


def approx_index_to_dict(index: MDApproxIndex, include_dataset: bool = False) -> dict:
    """Serialise an approximate (per-cell) index.

    Parameters
    ----------
    index:
        The preprocessed index.
    include_dataset:
        If True, embed the dataset snapshot the index was built against so
        loading only needs the fairness oracle.  The per-cell hyperplane
        assignment is not stored — it is a preprocessing artefact that online
        answering never touches.
    """
    payload = {
        "format": INDEX_FORMAT,
        "index_kind": "approx",
        "partition": _partition_to_dict(index.partition),
        "assigned_angles": [
            None if angles is None else np.asarray(angles, dtype=float).tolist()
            for angles in index.assigned_angles
        ],
        "marked": [bool(flag) for flag in index.marked],
        "n_hyperplanes": index.n_hyperplanes,
        "oracle_calls": index.oracle_calls,
        "timings": {
            "hyperplane_construction": index.timings.hyperplane_construction,
            "cell_plane_assignment": index.timings.cell_plane_assignment,
            "mark_cells": index.timings.mark_cells,
            "cell_coloring": index.timings.cell_coloring,
        },
    }
    if include_dataset:
        payload["dataset"] = dataset_to_dict(index.dataset)
    return payload


def approx_index_from_dict(
    payload: dict,
    oracle: FairnessOracle,
    dataset: Dataset | None = None,
) -> MDApproxIndex:
    """Rebuild an approximate index for online answering.

    Parameters
    ----------
    payload:
        Output of :func:`approx_index_to_dict`.
    oracle:
        The fairness oracle (``MDONLINE`` re-checks queries against it).
    dataset:
        The dataset to answer queries over.  May be omitted when the payload
        embeds the dataset (``include_dataset=True`` at save time).

    Raises
    ------
    ConfigurationError
        If no dataset is available, or the partition does not match the
        dataset's dimensionality, or the stored cell assignment does not match
        the reconstructed partition.
    """
    _check_payload(payload, "approx")
    if dataset is None:
        embedded = payload.get("dataset")
        if embedded is None:
            raise ConfigurationError(
                "loading an approximate index requires a dataset "
                "(none was supplied and none is embedded in the file)"
            )
        dataset = dataset_from_dict(embedded)
    partition = _partition_from_dict(payload["partition"])
    if partition.dimension != dataset.n_attributes - 1:
        raise ConfigurationError(
            f"index partition has dimension {partition.dimension} but the dataset has "
            f"{dataset.n_attributes} scoring attributes"
        )
    assigned_payload = payload["assigned_angles"]
    if len(assigned_payload) != partition.n_cells:
        raise GeometryError(
            f"stored assignment covers {len(assigned_payload)} cells but the reconstructed "
            f"partition has {partition.n_cells}"
        )
    assigned = [
        None if angles is None else np.asarray(angles, dtype=float) for angles in assigned_payload
    ]
    marked = [bool(flag) for flag in payload.get("marked", [False] * len(assigned))]
    timings_payload = payload.get("timings", {})
    timings = PreprocessingTimings(
        hyperplane_construction=float(timings_payload.get("hyperplane_construction", 0.0)),
        cell_plane_assignment=float(timings_payload.get("cell_plane_assignment", 0.0)),
        mark_cells=float(timings_payload.get("mark_cells", 0.0)),
        cell_coloring=float(timings_payload.get("cell_coloring", 0.0)),
    )
    return MDApproxIndex(
        dataset=dataset,
        oracle=oracle,
        partition=partition,
        assigned_angles=assigned,
        marked=marked,
        cell_plane_index=None,
        n_hyperplanes=int(payload.get("n_hyperplanes", 0)),
        oracle_calls=int(payload.get("oracle_calls", 0)),
        timings=timings,
    )


# --------------------------------------------------------------------------- #
# file-level helpers
# --------------------------------------------------------------------------- #
def save_index(
    index: TwoDIndex | MDExactIndex | MDApproxIndex,
    path: str | Path,
    include_dataset: bool = False,
) -> None:
    """Write any index kind to a JSON file.

    ``include_dataset`` only affects approximate indexes (the other kinds are
    self-contained).
    """
    if isinstance(index, TwoDIndex):
        payload = two_d_index_to_dict(index)
    elif isinstance(index, MDExactIndex):
        payload = exact_index_to_dict(index)
    elif isinstance(index, MDApproxIndex):
        payload = approx_index_to_dict(index, include_dataset=include_dataset)
    else:
        raise ConfigurationError(f"cannot serialise index of type {type(index).__name__}")
    Path(path).write_text(json.dumps(_wrap_payload(payload)), encoding="utf-8")


def load_index(
    path: str | Path,
    oracle: FairnessOracle | None = None,
    dataset: Dataset | None = None,
) -> TwoDIndex | MDExactIndex | MDApproxIndex:
    """Read an index file, dispatching on its stored kind.

    2-D and exact indexes ignore ``oracle`` and ``dataset``; approximate
    indexes require an oracle and either a dataset argument or an embedded
    dataset snapshot.

    Files written by this version carry a checksum envelope
    (:data:`STORE_FORMAT`); corruption — truncation, bit flips, hand edits —
    raises a typed :class:`~repro.exceptions.IndexIntegrityError` with a
    rebuild hint instead of surfacing as an arbitrary reconstruction error.
    Pre-envelope files still load.
    """
    payload = _read_document(path)
    kind = payload.get("index_kind") if isinstance(payload, dict) else None
    try:
        if kind == "2d":
            return two_d_index_from_dict(payload)
        if kind == "exact":
            return exact_index_from_dict(payload)
        if kind == "approx":
            if oracle is None:
                raise ConfigurationError(
                    "loading an approximate index requires a fairness oracle"
                )
            return approx_index_from_dict(payload, oracle=oracle, dataset=dataset)
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        # A verified checksum rules corruption out: the payload is malformed
        # at the schema level (likely hand-built or from a different tool).
        raise ConfigurationError(
            f"{path} holds a {kind!r} index whose payload is malformed: {exc}"
        ) from exc
    raise ConfigurationError(f"{path} is not a serialised repro index (kind={kind!r})")


# --------------------------------------------------------------------------- #
# engine-level persistence ("preprocess once, serve many")
# --------------------------------------------------------------------------- #
def save_engine(engine, path: str | Path, *, journaled: bool = False) -> None:
    """Write a preprocessed :class:`~repro.core.engine.QueryEngine` to a JSON file.

    The payload bundles the engine name, its typed configuration, the offline
    index, and the preprocessing dataset (the sample when sampling was used),
    so :func:`load_engine` restores an engine that answers queries
    bit-identically without re-preprocessing.  The payload is wrapped in the
    :data:`STORE_FORMAT` checksum envelope so :func:`load_engine` can detect
    corruption.

    With ``journaled=True`` the file instead records the engine's *base*
    snapshot (its payload from before the first ``apply_delta``) plus the
    serialised journal of every delta applied since
    (:data:`ENGINE_JOURNAL_FORMAT`).  Loading replays the journal through
    ``apply_delta``, reproducing the live engine bit-identically.  Engines
    that cannot journal soundly — sampled engines persist only the sample,
    which delta indices do not refer to — raise
    :class:`~repro.exceptions.ConfigurationError` once deltas exist.
    """
    if not journaled:
        Path(path).write_text(
            json.dumps(_wrap_payload(engine.to_payload())), encoding="utf-8"
        )
        return
    journal = tuple(getattr(engine, "journal", ()))
    if not journal:
        base = engine.to_payload()
    else:
        base = getattr(engine, "base_payload", None)
        if base is None:
            raise ConfigurationError(
                f"engine {getattr(engine, 'name', '?')!r} holds {len(journal)} "
                "journaled delta(s) but no base snapshot; journaled persistence "
                "needs a full-dataset, persistable engine (sampled engines "
                "persist snapshot-only — save with journaled=False)"
            )
    payload = {
        "format": ENGINE_JOURNAL_FORMAT,
        "base": base,
        "deltas": [delta.to_dict() for delta in journal],
    }
    Path(path).write_text(json.dumps(_wrap_payload(payload)), encoding="utf-8")


def load_engine(path: str | Path, oracle: FairnessOracle):
    """Read an engine file, dispatching on the engine name stored inside it.

    The fairness oracle is supplied by the caller (oracles are arbitrary code
    and are never serialised).  Raises :class:`ConfigurationError` when the
    file holds a bare index (see :func:`load_index`) or is not a serialised
    engine at all, and a typed :class:`~repro.exceptions.IndexIntegrityError`
    when the file's checksum envelope fails verification (see
    :func:`load_index`).
    """
    # Imported lazily: repro.core.engine imports this module's serialisers
    # inside its persistence hooks, so a module-level import would be cyclic.
    from repro.core.engine import ENGINE_FORMAT, engine_from_payload
    from repro.core.maintenance import DatasetDelta

    payload = _read_document(path)
    if isinstance(payload, dict) and payload.get("format") == INDEX_FORMAT:
        raise ConfigurationError(
            f"{path} holds a bare index (format {INDEX_FORMAT!r}); use load_index() "
            "for index files, or re-save through FairRankingDesigner.save()"
        )
    if isinstance(payload, dict) and payload.get("format") == ENGINE_JOURNAL_FORMAT:
        try:
            engine = engine_from_payload(payload["base"], oracle)
            for delta_payload in payload.get("deltas", ()):
                engine.apply_delta(DatasetDelta.from_dict(delta_payload))
            return engine
        except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
            raise ConfigurationError(
                f"{path} holds a journaled engine whose payload is malformed: {exc}"
            ) from exc
    if not isinstance(payload, dict) or payload.get("format") != ENGINE_FORMAT:
        raise ConfigurationError(
            f"{path} is not a serialised engine (expected format {ENGINE_FORMAT!r})"
        )
    try:
        return engine_from_payload(payload, oracle)
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise ConfigurationError(
            f"{path} holds a {payload.get('engine')!r} engine whose payload is "
            f"malformed: {exc}"
        ) from exc


def _check_payload(payload: dict, expected_kind: str) -> None:
    if not isinstance(payload, dict) or payload.get("format") != INDEX_FORMAT:
        raise ConfigurationError(
            f"payload is not a serialised index (expected format {INDEX_FORMAT!r})"
        )
    if payload.get("index_kind") != expected_kind:
        raise ConfigurationError(
            f"payload holds a {payload.get('index_kind')!r} index, expected {expected_kind!r}"
        )
