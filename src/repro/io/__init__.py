"""Persistence layer: JSON round-trips for datasets and offline indexes.

The paper's workflow separates an expensive offline phase (indexing the
satisfactory regions of weight space) from an interactive online phase
(answering queries against the index).  In a deployed system those phases run
at different times — often on different machines — so the index has to be
storable.  This package serialises every index kind produced by
:mod:`repro.core` (and the :class:`~repro.data.dataset.Dataset` itself) to
plain JSON, and reloads them for online use.
"""

from repro.io.dataset_json import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_json,
    save_dataset_json,
)
from repro.io.index_store import (
    approx_index_from_dict,
    approx_index_to_dict,
    exact_index_from_dict,
    exact_index_to_dict,
    load_engine,
    load_index,
    save_engine,
    save_index,
    two_d_index_from_dict,
    two_d_index_to_dict,
)

__all__ = [
    "dataset_to_dict",
    "dataset_from_dict",
    "save_dataset_json",
    "load_dataset_json",
    "two_d_index_to_dict",
    "two_d_index_from_dict",
    "exact_index_to_dict",
    "exact_index_from_dict",
    "approx_index_to_dict",
    "approx_index_from_dict",
    "save_index",
    "load_index",
    "save_engine",
    "load_engine",
]
