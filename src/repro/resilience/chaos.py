"""Deterministic fault injection for the chaos test suite.

Resilience claims are worthless untested, and testing them against real
flakiness is itself flaky.  :class:`ChaosOracle` and :class:`ChaosEngine`
inject failures, latency and wrong verdicts at configurable rates, **keyed by
a seeded hash of the call's payload** (the ordering for oracles, the weight
vector for engines) rather than by a call counter.  That choice makes
injection

* *deterministic* — the same seed and payload always produce the same fault,
  independent of ``PYTHONHASHSEED``;
* *path-independent* — a query that faults inside a ``suggest_many`` batch
  faults identically when the fallback layer retries it query-by-query, so a
  "poisoned" query stays poisoned on a tier and the per-query isolation
  invariants of :class:`~repro.resilience.fallback.FallbackEngine` can be
  asserted exactly.

Injected failures raise :class:`InjectedFault`, a
:class:`~repro.exceptions.TransientOracleError` subclass, so the default
classification in :class:`~repro.resilience.oracle.ResilientOracle` treats
them as retryable.  Injected latency advances an attached
:class:`~repro.resilience.policy.FakeClock` instead of sleeping, which makes
deadline handling testable in zero wall time.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, OracleError, TransientOracleError
from repro.fairness.oracle import FairnessOracle
from repro.resilience.policy import FakeClock

__all__ = ["InjectedFault", "ChaosOracle", "ChaosEngine"]


class InjectedFault(TransientOracleError):
    """The failure raised by chaos wrappers (transient, hence retryable)."""


def _roll(seed: int, salt: bytes, payload: bytes) -> float:
    """Deterministic uniform draw in [0, 1) keyed by (seed, salt, payload)."""
    digest = hashlib.blake2b(
        salt + seed.to_bytes(8, "little", signed=True) + payload, digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2**64


def _check_rate(name: str, rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {rate!r}")
    return float(rate)


class ChaosOracle(FairnessOracle):
    """A fairness oracle that misbehaves on purpose, deterministically.

    Parameters
    ----------
    inner:
        The well-behaved oracle being sabotaged.
    failure_rate:
        Probability (per distinct ordering) of raising :class:`InjectedFault`
        instead of answering.
    wrong_verdict_rate:
        Probability (per distinct ordering, drawn independently of failures)
        of flipping the inner verdict.
    latency:
        Simulated seconds added to ``clock`` per call (requires ``clock``).
    seed:
        Seed of every injection draw.
    clock:
        A :class:`~repro.resilience.policy.FakeClock` advanced by ``latency``
        so wrapped deadline checks observe the slowness.
    enabled:
        When False the wrapper forwards transparently — flip it on *after*
        preprocessing to model an oracle that degrades once serving starts.
    """

    def __init__(
        self,
        inner: FairnessOracle,
        *,
        failure_rate: float = 0.0,
        wrong_verdict_rate: float = 0.0,
        latency: float = 0.0,
        seed: int = 0,
        clock: FakeClock | None = None,
        enabled: bool = True,
    ) -> None:
        if not isinstance(inner, FairnessOracle):
            raise OracleError("ChaosOracle wraps a FairnessOracle")
        if latency and clock is None:
            raise ConfigurationError(
                "injecting latency requires a FakeClock to advance"
            )
        self.inner = inner
        self.failure_rate = _check_rate("failure_rate", failure_rate)
        self.wrong_verdict_rate = _check_rate("wrong_verdict_rate", wrong_verdict_rate)
        self.latency = float(latency)
        self.seed = int(seed)
        self.clock = clock
        self.enabled = enabled
        self.injected_failures = 0
        self.injected_flips = 0
        self.forwarded_calls = 0

    def would_fail(self, ordering: np.ndarray) -> bool:
        """True if a call with this ordering is injected to fail (seed-determined)."""
        payload = np.ascontiguousarray(ordering, dtype=np.int64).tobytes()
        return _roll(self.seed, b"oracle-fail", payload) < self.failure_rate

    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        if not self.enabled:
            self.forwarded_calls += 1
            return self.inner.is_satisfactory(ordering, dataset)
        if self.clock is not None and self.latency:
            self.clock.advance(self.latency)
        payload = np.ascontiguousarray(ordering, dtype=np.int64).tobytes()
        if _roll(self.seed, b"oracle-fail", payload) < self.failure_rate:
            self.injected_failures += 1
            raise InjectedFault("chaos: injected oracle failure")
        verdict = self.inner.is_satisfactory(ordering, dataset)
        if _roll(self.seed, b"oracle-flip", payload) < self.wrong_verdict_rate:
            self.injected_flips += 1
            return not verdict
        self.forwarded_calls += 1
        return bool(verdict)

    def describe(self) -> str:
        return (
            f"chaos({self.inner.describe()}, fail={self.failure_rate:g}, "
            f"flip={self.wrong_verdict_rate:g})"
        )


class ChaosEngine:
    """A query-engine wrapper that injects per-query faults and latency.

    Implements the :class:`~repro.core.engine.QueryEngine` online surface by
    forwarding to ``inner``; faults are keyed by each query's weight vector,
    so a poisoned query fails the same way in the batch path, the per-query
    path, and on retries (see module docstring).  ``suggest_many`` raises on
    the *first* poisoned query in the batch — exactly how one bad query used
    to take down a whole unprotected batch — which is the failure mode the
    fallback layer's per-query isolation is tested against.
    """

    def __init__(
        self,
        inner,
        *,
        failure_rate: float = 0.0,
        latency: float = 0.0,
        seed: int = 0,
        clock: FakeClock | None = None,
        enabled: bool = True,
    ) -> None:
        if latency and clock is None:
            raise ConfigurationError(
                "injecting latency requires a FakeClock to advance"
            )
        self.inner = inner
        self.failure_rate = _check_rate("failure_rate", failure_rate)
        self.latency = float(latency)
        self.seed = int(seed)
        self.clock = clock
        self.enabled = enabled
        self.injected_failures = 0

    # -- passthrough of the engine surface ------------------------------ #
    @property
    def name(self) -> str:
        return getattr(self.inner, "name", type(self.inner).__name__)

    @property
    def dataset(self):
        return self.inner.dataset

    @property
    def oracle(self):
        return self.inner.oracle

    @property
    def config(self):
        return self.inner.config

    @property
    def index(self):
        return self.inner.index

    @property
    def is_preprocessed(self) -> bool:
        return self.inner.is_preprocessed

    def capabilities(self):
        return self.inner.capabilities()

    def preprocess(self, dataset=None, oracle=None):
        self.inner.preprocess(dataset, oracle)
        return self

    # -- fault injection ------------------------------------------------- #
    def _weights_payload(self, weights) -> bytes:
        return np.ascontiguousarray(weights, dtype=float).tobytes()

    def would_fail(self, weights) -> bool:
        """True if a query with these weights is injected to fail."""
        return (
            _roll(self.seed, b"engine-fail", self._weights_payload(weights))
            < self.failure_rate
        )

    def _maybe_fault(self, weights) -> None:
        if self.clock is not None and self.latency:
            self.clock.advance(self.latency)
        if self.would_fail(weights):
            self.injected_failures += 1
            raise InjectedFault("chaos: injected engine failure")

    def suggest(self, function):
        if self.enabled:
            self._maybe_fault(function.weights)
        return self.inner.suggest(function)

    def suggest_many(self, weights_matrix):
        if self.enabled:
            matrix = np.asarray(weights_matrix, dtype=float)
            if matrix.ndim == 2:
                for row in matrix:
                    self._maybe_fault(row)
        return self.inner.suggest_many(weights_matrix)

    def to_payload(self) -> dict:
        return self.inner.to_payload()
