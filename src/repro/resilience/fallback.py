"""Graceful degradation at the engine seam: the ordered fallback chain.

A production serving layer cannot let one failing pipeline take down a whole
batch.  :class:`FallbackEngine` is a :class:`~repro.core.engine.QueryEngine`
registered in the ordinary engine registry (name ``"fallback"``, configured
by :class:`FallbackConfig`) — per the PR-2 seam discipline, it is a
registered engine *wrapping* other registered engines, not a facade branch.
It runs an ordered chain of tiers (e.g. exact → approximate) and advances on
failure or per-query deadline:

* ``suggest`` tries each tier in order and returns the first answer,
  recording which tier answered in :attr:`FallbackEngine.last_record`;
* ``suggest_many`` first tries the current tier's native batched path; if
  the *batch* call fails (one poisoned query used to kill the whole batch),
  the tier is retried **query by query**, so only genuinely faulted queries
  advance to the next tier.  Queries no tier could answer come back as
  structured :class:`QueryFailure` records — the call itself never raises
  for per-query faults;
* every batch leaves a :class:`BatchReport` (per-query tier attribution and
  error records) in :attr:`FallbackEngine.last_report`, and cumulative
  counters in :attr:`FallbackEngine.telemetry`, which
  :func:`repro.core.monitoring.error_budget_report` turns into an error
  budget.

Answers are produced by the tier engines themselves, so on non-faulted
queries they are bit-identical to the unwrapped engine — the chaos suite
(``tests/test_chaos.py``) asserts this invariant under seeded fault
injection.

Two deliberate pass-throughs: :class:`~repro.exceptions.NotPreprocessedError`
(a caller bug, not a dependency fault) and
:class:`~repro.exceptions.NoSatisfactoryFunctionError` (an *answer* about the
dataset — every tier would agree — not a failure to answer).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import (
    EngineCapabilities,
    create_engine,
    engine_name_for_config,
    register_engine,
)
from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.exceptions import (
    ConfigurationError,
    FallbackExhaustedError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.oracle import FairnessOracle
from repro.obs.metrics import MetricsRegistry
from repro.ranking.scoring import LinearScoringFunction

__all__ = [
    "FallbackConfig",
    "TierError",
    "QueryRecord",
    "QueryFailure",
    "BatchReport",
    "FallbackTelemetry",
    "FallbackEngine",
]

#: Exceptions that carry meaning, not failure — never absorbed by the chain.
_PASS_THROUGH = (NotPreprocessedError, NoSatisfactoryFunctionError)


@dataclass(frozen=True)
class FallbackConfig:
    """Configuration of a fallback chain.

    Attributes
    ----------
    tiers:
        Ordered engine configs, tried first to last.  Empty selects the
        default chain for the dataset's dimensionality at construction time:
        ``(TwoDConfig(),)`` in 2-D, ``(ExactConfig(), ApproxConfig())``
        otherwise (exact answers preferred, grid approximation as the
        degraded tier).
    per_query_deadline:
        Seconds a single query may take on a tier before the tier is
        considered failed for that query (checked post-hoc on the injected
        clock; enforced on the per-query isolation path).
    lenient_preprocess:
        When True (default), a tier whose *preprocessing* fails is dropped
        from the chain (recorded in ``preprocess_errors``) as long as at
        least one tier survives; when False any preprocessing failure raises.
    """

    tiers: tuple = ()
    per_query_deadline: float | None = None
    lenient_preprocess: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers", tuple(self.tiers))
        for tier in self.tiers:
            if isinstance(tier, FallbackConfig):
                raise ConfigurationError("fallback chains cannot nest")
            # Raises ConfigurationError for non-engine configs.
            engine_name_for_config(tier)
        if self.per_query_deadline is not None and self.per_query_deadline <= 0:
            raise ConfigurationError("per_query_deadline must be positive")


@dataclass(frozen=True)
class TierError:
    """One tier's failure for one query (or for preprocessing)."""

    tier: str
    error_type: str
    message: str


@dataclass(frozen=True)
class QueryRecord:
    """Per-query serving record: who answered, and what failed on the way.

    ``tier`` is the registry name of the tier that answered (``None`` when no
    tier could), and ``errors`` lists the failures collected while getting
    there — empty for a query answered cleanly by the first tier.
    """

    index: int
    tier: str | None
    errors: tuple[TierError, ...] = ()

    @property
    def faulted(self) -> bool:
        """True when at least one tier failed for this query."""
        return bool(self.errors)

    @property
    def answered(self) -> bool:
        """True when some tier produced an answer."""
        return self.tier is not None


@dataclass(frozen=True)
class QueryFailure:
    """The structured per-query error record returned for unanswerable queries.

    Takes the place of a :class:`~repro.core.result.SuggestionResult` in the
    ``suggest_many`` output when every tier failed for that query, so the
    batch call never raises for per-query faults and the caller can tell
    exactly which queries died and why.
    """

    index: int
    weights: tuple[float, ...]
    errors: tuple[TierError, ...]

    @property
    def answered(self) -> bool:
        return False


@dataclass(frozen=True)
class BatchReport:
    """Per-batch serving report: one :class:`QueryRecord` per query."""

    records: tuple[QueryRecord, ...]

    @property
    def n_queries(self) -> int:
        return len(self.records)

    @property
    def n_faulted(self) -> int:
        """Queries that saw at least one tier failure."""
        return sum(1 for record in self.records if record.faulted)

    @property
    def n_unanswered(self) -> int:
        """Queries no tier could answer."""
        return sum(1 for record in self.records if not record.answered)

    @property
    def tiers_used(self) -> dict:
        """Answered-query counts per tier name."""
        counts: Counter = Counter(
            record.tier for record in self.records if record.tier is not None
        )
        return dict(counts)


class _TierCounterView:
    """``collections.Counter``-like view over one tier-labeled metric family.

    Supports exactly what telemetry consumers use: ``view[tier] += n``,
    ``dict(view)`` and iteration.  Reads and writes go straight to the
    underlying :class:`~repro.obs.metrics.MetricsRegistry` series, so there
    is one counter source however many readers look at it.
    """

    def __init__(self, metrics: MetricsRegistry, name: str) -> None:
        self._metrics = metrics
        self._name = name

    def __getitem__(self, tier: str) -> int:
        return self._metrics.counter(self._name, tier=tier).value

    def __setitem__(self, tier: str, value: int) -> None:
        self._metrics.counter(self._name, tier=tier).value = int(value)

    def keys(self) -> list:
        return [
            dict(series.labels).get("tier")
            for series in self._metrics.counter_series(self._name)
        ]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({dict(self)!r})"


class FallbackTelemetry:
    """Cumulative serving counters across the life of a fallback engine.

    Since PR 8 the counters live in a
    :class:`~repro.obs.metrics.MetricsRegistry` (``fallback.queries``,
    ``fallback.failovers``, ``fallback.unanswered``, plus the tier-labeled
    ``fallback.answered`` / ``fallback.tier_failures`` families) — pass
    ``metrics=`` to share a registry with an instrumented engine so the
    error budget and ``python -m repro.obs report`` read one counter source.
    The public surface is unchanged:
    ``repro.core.monitoring.error_budget_report`` still duck-types on plain
    ``n_queries``/``n_failovers``/``n_unanswered`` ints and dict-able
    ``answered_by``/``tier_failures``.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queries = self.metrics.counter("fallback.queries")
        self._failovers = self.metrics.counter("fallback.failovers")
        self._unanswered = self.metrics.counter("fallback.unanswered")
        self.answered_by = _TierCounterView(self.metrics, "fallback.answered")
        self.tier_failures = _TierCounterView(self.metrics, "fallback.tier_failures")

    @property
    def n_queries(self) -> int:
        return self._queries.value

    @n_queries.setter
    def n_queries(self, value: int) -> None:
        self._queries.value = int(value)

    @property
    def n_failovers(self) -> int:
        return self._failovers.value

    @n_failovers.setter
    def n_failovers(self, value: int) -> None:
        self._failovers.value = int(value)

    @property
    def n_unanswered(self) -> int:
        return self._unanswered.value

    @n_unanswered.setter
    def n_unanswered(self, value: int) -> None:
        self._unanswered.value = int(value)

    def record_answer(self, tier: str, failover: bool) -> None:
        self.answered_by[tier] += 1
        if failover:
            self.n_failovers += 1

    def record_tier_failure(self, tier: str) -> None:
        self.tier_failures[tier] += 1

    def as_dict(self) -> dict:
        return {
            "n_queries": self.n_queries,
            "n_failovers": self.n_failovers,
            "n_unanswered": self.n_unanswered,
            "answered_by": dict(self.answered_by),
            "tier_failures": dict(self.tier_failures),
        }


@register_engine("fallback", FallbackConfig)
class FallbackEngine:
    """The ordered-chain engine; see the module docstring for semantics."""

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        config: FallbackConfig | None = None,
        *,
        engines=None,
        clock=None,
        metrics=None,
    ) -> None:
        config = config if config is not None else FallbackConfig()
        if not isinstance(config, FallbackConfig):
            raise ConfigurationError(
                f"FallbackEngine expects a FallbackConfig, got {type(config).__name__}"
            )
        self.dataset = dataset
        self.oracle = oracle
        self._clock = clock if clock is not None else time.monotonic
        if engines is None:
            tiers = config.tiers or self._default_tiers(dataset)
            config = FallbackConfig(
                tiers=tiers,
                per_query_deadline=config.per_query_deadline,
                lenient_preprocess=config.lenient_preprocess,
            )
            engines = tuple(create_engine(dataset, oracle, tier) for tier in tiers)
        engines = tuple(engines)
        if not engines:
            raise ConfigurationError("a fallback chain needs at least one tier")
        self.config = config
        self.engines = engines
        self._active: tuple[tuple[str, object], ...] | None = None
        self.preprocess_errors: tuple[TierError, ...] = ()
        self.telemetry = FallbackTelemetry(metrics=metrics)
        self.last_record: QueryRecord | None = None
        self._last_batch = None

    @staticmethod
    def _default_tiers(dataset: Dataset) -> tuple:
        from repro.core.engine import ApproxConfig, ExactConfig, TwoDConfig

        if dataset.n_attributes == 2:
            return (TwoDConfig(),)
        return (ExactConfig(), ApproxConfig())

    @staticmethod
    def _tier_label(position: int, engine) -> str:
        return f"{position}:{getattr(engine, 'name', type(engine).__name__)}"

    @classmethod
    def from_engines(
        cls,
        engines,
        *,
        per_query_deadline: float | None = None,
        lenient_preprocess: bool = True,
        clock=None,
        metrics=None,
    ) -> "FallbackEngine":
        """Build a chain over already-constructed (possibly wrapped) engines.

        The engines' own configs stay authoritative; the first engine supplies
        the chain's dataset and oracle.  This is how pre-preprocessed tiers,
        chaos-wrapped tiers, or tiers over different samples enter a chain.
        """
        engines = tuple(engines)
        if not engines:
            raise ConfigurationError("a fallback chain needs at least one tier")
        first = engines[0]
        return cls(
            first.dataset,
            first.oracle,
            FallbackConfig(
                per_query_deadline=per_query_deadline,
                lenient_preprocess=lenient_preprocess,
            ),
            engines=engines,
            clock=clock,
            metrics=metrics,
        )

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def preprocess(self, dataset: Dataset | None = None, oracle: FairnessOracle | None = None):
        """Preprocess every tier; drop tiers that fail when lenient."""
        if dataset is not None:
            self.dataset = dataset
        if oracle is not None:
            self.oracle = oracle
        active: list[tuple[str, object]] = []
        errors: list[TierError] = []
        for position, engine in enumerate(self.engines):
            label = self._tier_label(position, engine)
            try:
                if not getattr(engine, "is_preprocessed", False):
                    engine.preprocess(dataset, oracle)
                active.append((label, engine))
            except Exception as error:  # noqa: BLE001 — isolation is the point
                if not self.config.lenient_preprocess:
                    raise
                errors.append(TierError(label, type(error).__name__, str(error)))
        self.preprocess_errors = tuple(errors)
        if not active:
            raise ConfigurationError(
                "every tier of the fallback chain failed to preprocess: "
                + "; ".join(f"{e.tier}: {e.message}" for e in errors)
            )
        self._active = tuple(active)
        return self

    @property
    def is_preprocessed(self) -> bool:
        return self._active is not None

    @property
    def active_tiers(self) -> tuple[str, ...]:
        """Labels of the tiers that survived preprocessing, in chain order."""
        return tuple(label for label, _ in self._active_chain())

    @property
    def index(self):
        """The first active tier's index (the authoritative answer source)."""
        return self._active_chain()[0][1].index

    def _active_chain(self) -> tuple[tuple[str, object], ...]:
        if self._active is None:
            raise NotPreprocessedError("call preprocess() first")
        return self._active

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta):
        """Propagate a dataset delta to every active tier.

        Each tier maintains its own index through its own ``apply_delta``
        (incremental where supported, rebuild otherwise).  A tier whose
        maintenance fails is dropped from the chain when
        ``lenient_preprocess`` is set — the same isolation discipline as
        preprocessing — and recorded in :attr:`preprocess_errors`; with
        leniency off the failure raises.  The returned report is the primary
        (first surviving) tier's, with every tier's strategy in ``details``.
        """
        return self._maintain("apply_delta", lambda engine: engine.apply_delta(delta))

    def refresh(self):
        """Re-run the oracle-dependent stages of every active tier."""
        return self._maintain("refresh", lambda engine: engine.refresh())

    def _maintain(self, what: str, operation):
        survivors: list[tuple[str, object]] = []
        errors: list[TierError] = list(self.preprocess_errors)
        reports: list[tuple[str, object]] = []
        for label, engine in self._active_chain():
            try:
                reports.append((label, operation(engine)))
                survivors.append((label, engine))
            except _PASS_THROUGH:
                raise
            except Exception as error:  # noqa: BLE001 — isolation is the point
                if not self.config.lenient_preprocess:
                    raise
                errors.append(TierError(label, type(error).__name__, str(error)))
        if not survivors:
            raise ConfigurationError(
                f"every tier of the fallback chain failed to {what}: "
                + "; ".join(f"{e.tier}: {e.message}" for e in errors)
            )
        self.preprocess_errors = tuple(errors)
        self._active = tuple(survivors)
        self.dataset = survivors[0][1].dataset
        primary = reports[0][1]
        from repro.core.maintenance import MaintenanceReport

        return MaintenanceReport(
            engine="fallback",
            strategy=primary.strategy,
            n_inserted=primary.n_inserted,
            n_deleted=primary.n_deleted,
            n_updated=primary.n_updated,
            staleness_fraction=primary.staleness_fraction,
            details={
                "tiers": {label: report.strategy for label, report in reports},
            },
        )

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        """Answer one query through the chain; raises only when every tier fails."""
        deadline = self.config.per_query_deadline
        errors: list[TierError] = []
        self.telemetry.n_queries += 1
        for label, engine in self._active_chain():
            started = self._clock()
            try:
                result = engine.suggest(function)
            except _PASS_THROUGH:
                raise
            except Exception as error:  # noqa: BLE001 — isolation is the point
                errors.append(TierError(label, type(error).__name__, str(error)))
                self.telemetry.record_tier_failure(label)
                continue
            elapsed = self._clock() - started
            if deadline is not None and elapsed > deadline:
                errors.append(
                    TierError(
                        label,
                        "DeadlineExceeded",
                        f"query took {elapsed:.3f}s, exceeding the {deadline:g}s "
                        "per-query deadline",
                    )
                )
                self.telemetry.record_tier_failure(label)
                continue
            self.last_record = QueryRecord(0, label, tuple(errors))
            self.telemetry.record_answer(label, failover=bool(errors))
            return result
        self.telemetry.n_unanswered += 1
        self.last_record = QueryRecord(0, None, tuple(errors))
        raise FallbackExhaustedError(
            f"all {len(self._active_chain())} tier(s) failed for this query: "
            + "; ".join(f"{e.tier}: {e.error_type}" for e in errors),
            attempts=tuple(errors),
        )

    def suggest_many(self, weights_matrix):
        """Answer a batch with per-query fault isolation.

        Returns one entry per input row: a
        :class:`~repro.core.result.SuggestionResult` (bit-identical to what
        the answering tier's own ``suggest_many`` returns) or, for queries
        every tier failed on, a :class:`QueryFailure`.  Never raises for
        per-query faults; see the module docstring for the two pass-through
        exception types.
        """
        matrix = np.asarray(weights_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dataset.n_attributes:
            raise ConfigurationError(
                f"suggest_many expects a (q, {self.dataset.n_attributes}) weight "
                f"matrix, got shape {matrix.shape}"
            )
        chain = self._active_chain()
        q = matrix.shape[0]
        self.telemetry.n_queries += q

        # Happy path: the first tier answers the whole batch natively.  Kept
        # allocation-free beyond the call itself so wrapping an engine in a
        # single-tier chain costs O(1) on top of the raw batch call.
        first_label, first_engine = chain[0]
        try:
            answers = first_engine.suggest_many(matrix)
        except _PASS_THROUGH:
            raise
        except Exception:  # noqa: BLE001 — fall through to isolation below
            pass
        else:
            self.telemetry.answered_by[first_label] += q
            self._last_batch = (q, first_label)
            return answers

        # Isolation path: at least one query (or the tier itself) is bad.
        results: list = [None] * q
        errors: list[list[TierError]] = [[] for _ in range(q)]
        tiers_of: list[str | None] = [None] * q
        deadline = self.config.per_query_deadline

        # Rows that cannot even become scoring functions are poisoned input:
        # they fail identically on every tier, so record them once and skip.
        functions: list[LinearScoringFunction | None] = [None] * q
        pending: list[int] = []
        for row in range(q):
            try:
                functions[row] = LinearScoringFunction(tuple(matrix[row].tolist()))
                pending.append(row)
            except Exception as error:  # noqa: BLE001
                errors[row].append(TierError("query", type(error).__name__, str(error)))

        for tier_position, (label, engine) in enumerate(chain):
            if not pending:
                break
            if tier_position == 0:
                # The first tier's batch call already failed above — go
                # straight to query-by-query instead of repeating it.
                answers = None
            else:
                try:
                    answers = engine.suggest_many(matrix[np.asarray(pending)])
                except _PASS_THROUGH:
                    raise
                except Exception:  # noqa: BLE001 — retry query-by-query
                    answers = None
            if answers is not None:
                for position, answer in zip(pending, answers):
                    results[position] = answer
                    tiers_of[position] = label
                    self.telemetry.record_answer(label, failover=bool(errors[position]))
                pending = []
                break
            still_pending: list[int] = []
            for position in pending:
                started = self._clock()
                try:
                    answer = engine.suggest(functions[position])
                except _PASS_THROUGH:
                    raise
                except Exception as error:  # noqa: BLE001
                    errors[position].append(
                        TierError(label, type(error).__name__, str(error))
                    )
                    self.telemetry.record_tier_failure(label)
                    still_pending.append(position)
                    continue
                elapsed = self._clock() - started
                if deadline is not None and elapsed > deadline:
                    errors[position].append(
                        TierError(
                            label,
                            "DeadlineExceeded",
                            f"query took {elapsed:.3f}s, exceeding the "
                            f"{deadline:g}s per-query deadline",
                        )
                    )
                    self.telemetry.record_tier_failure(label)
                    still_pending.append(position)
                    continue
                results[position] = answer
                tiers_of[position] = label
                self.telemetry.record_answer(label, failover=bool(errors[position]))
            pending = still_pending

        output: list = []
        records: list[QueryRecord] = []
        for position in range(q):
            records.append(
                QueryRecord(position, tiers_of[position], tuple(errors[position]))
            )
            if results[position] is None:
                self.telemetry.n_unanswered += 1
                output.append(
                    QueryFailure(
                        position,
                        tuple(matrix[position].tolist()),
                        tuple(errors[position]),
                    )
                )
            else:
                output.append(results[position])
        self._last_batch = BatchReport(tuple(records))
        return output

    @property
    def last_report(self) -> BatchReport | None:
        """The per-query report of the most recent ``suggest_many`` batch.

        Materialised lazily: the happy path stores only ``(q, tier)`` and the
        full record tuple is built on first access.
        """
        if self._last_batch is None:
            return None
        if not isinstance(self._last_batch, BatchReport):
            q, label = self._last_batch
            self._last_batch = BatchReport(
                tuple(QueryRecord(position, label) for position in range(q))
            )
        return self._last_batch

    # ------------------------------------------------------------------ #
    # capabilities and persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            name="fallback",
            exact=False,
            min_attributes=2,
            max_attributes=None,
            batched=True,
            persistable=False,
        )

    def to_payload(self) -> dict:
        raise ConfigurationError(
            "a fallback engine is a serving-layer composite and is not "
            "persistable as one payload; save each tier engine individually "
            "and rebuild the chain with FallbackEngine.from_engines()"
        )

    @classmethod
    def from_payload(cls, payload: dict, oracle: FairnessOracle):
        raise ConfigurationError(
            "fallback engines are not persistable; load each tier engine and "
            "rebuild the chain with FallbackEngine.from_engines()"
        )
