"""Fault-tolerant oracle wrapper: deadlines, bounded retry, circuit breaking.

The serving stack calls the fairness oracle on every online query (line 1 of
``MDONLINE`` re-checks the query itself), so one flaky oracle call used to
kill an entire ``suggest_many`` batch.  :class:`ResilientOracle` wraps any
:class:`~repro.fairness.oracle.FairnessOracle` with the protections an
external dependency needs:

* a **deadline** per call — calls whose measured duration exceeds it count as
  :class:`~repro.exceptions.OracleTimeoutError` failures (the check is
  post-hoc: a call that hangs forever cannot be preempted from pure Python,
  but a slow oracle is detected, fails the attempt, and feeds the breaker);
* **bounded retry** with deterministic exponential backoff + jitter, driven
  by a :class:`~repro.resilience.policy.RetryPolicy`;
* **transient-vs-permanent classification** over the
  :class:`~repro.exceptions.OracleError` hierarchy (see
  :func:`~repro.resilience.policy.is_transient_failure`); permanent failures
  surface immediately instead of burning the retry budget;
* a **circuit breaker** that opens after N consecutive failures and raises a
  typed :class:`~repro.exceptions.OracleUnavailableError` instead of hanging
  the batch on a dependency that is known to be down.

The wrapper forwards the batched protocol
(:mod:`repro.fairness.batched`) when the inner oracle supports it, so the
vectorised ``suggest_many`` serving paths keep their one-matmul pre-check.
On the happy path it adds one circuit check and a few counter increments per
call; the clock is not even read unless a deadline is armed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import OracleError, OracleTimeoutError, OracleUnavailableError
from repro.fairness.batched import as_batched, evaluate_many, ordering_matrix
from repro.fairness.oracle import FairnessOracle
from repro.resilience.policy import CircuitBreaker, RetryPolicy, is_transient_failure

__all__ = ["OracleCallStats", "ResilientOracle"]


@dataclass
class OracleCallStats:
    """Mutable counters a :class:`ResilientOracle` keeps about its traffic.

    Attributes
    ----------
    calls:
        Attempted inner-oracle calls (each retry counts).
    successes:
        Calls that returned a verdict within the deadline.
    retries:
        Attempts beyond the first for some logical evaluation.
    transient_failures, permanent_failures, timeouts:
        Failure counts by classification (timeouts also count as transient).
    rejected_open:
        Evaluations rejected without calling the oracle because the circuit
        was open.
    exhausted:
        Evaluations that failed after the full retry budget.
    """

    calls: int = 0
    successes: int = 0
    retries: int = 0
    transient_failures: int = 0
    permanent_failures: int = 0
    timeouts: int = 0
    rejected_open: int = 0
    exhausted: int = 0

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (for monitoring dashboards)."""
        return {
            "calls": self.calls,
            "successes": self.successes,
            "retries": self.retries,
            "transient_failures": self.transient_failures,
            "permanent_failures": self.permanent_failures,
            "timeouts": self.timeouts,
            "rejected_open": self.rejected_open,
            "exhausted": self.exhausted,
        }


class ResilientOracle(FairnessOracle):
    """Wrap a fairness oracle with deadline, retry and circuit-breaker guards.

    Parameters
    ----------
    inner:
        The oracle to protect.  Composes with the library's other wrappers —
        a :class:`~repro.fairness.oracle.CountingOracle` can wrap a
        ``ResilientOracle`` (counting logical evaluations) or sit inside it
        (counting physical attempts).
    retry_policy:
        Backoff schedule; defaults to :class:`~repro.resilience.policy.RetryPolicy`
        (3 attempts, 50 ms base, deterministic jitter).
    circuit_breaker:
        Breaker instance; defaults to 5 consecutive failures / 30 s cooldown
        on the same injected clock.
    deadline:
        Per-call deadline in seconds (``None`` disables the check).
    classify:
        ``exception -> bool`` returning True for transient (retryable)
        failures; defaults to :func:`~repro.resilience.policy.is_transient_failure`.
    clock, sleep:
        Injectable time sources.  Pass a
        :class:`~repro.resilience.policy.FakeClock` and its ``advance`` bound
        method to test deadlines and cooldowns without real waiting.
    """

    def __init__(
        self,
        inner: FairnessOracle,
        *,
        retry_policy: RetryPolicy | None = None,
        circuit_breaker: CircuitBreaker | None = None,
        deadline: float | None = None,
        classify: Callable[[BaseException], bool] | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if not isinstance(inner, FairnessOracle):
            raise OracleError("ResilientOracle wraps a FairnessOracle")
        self.inner = inner
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._clock = clock if clock is not None else time.monotonic
        self.circuit_breaker = (
            circuit_breaker
            if circuit_breaker is not None
            else CircuitBreaker(clock=self._clock)
        )
        self.deadline = deadline
        self._classify = classify if classify is not None else is_transient_failure
        self._sleep = sleep if sleep is not None else time.sleep
        self.stats = OracleCallStats()

    # ------------------------------------------------------------------ #
    # the guarded call loop
    # ------------------------------------------------------------------ #
    def _guarded(self, call):
        """Run ``call`` under the circuit/deadline/retry discipline."""
        policy = self.retry_policy
        stats = self.stats
        breaker = self.circuit_breaker
        deadline = self.deadline
        last_error: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if not breaker.allow():
                stats.rejected_open += 1
                raise OracleUnavailableError(
                    f"oracle circuit is open after "
                    f"{breaker.consecutive_failures} consecutive "
                    f"failures; retry after the "
                    f"{breaker.recovery_time:g}s cooldown",
                    last_error=last_error,
                )
            if attempt > 1:
                stats.retries += 1
                self._sleep(policy.backoff(attempt - 1))
            stats.calls += 1
            # The clock is only read when a deadline is armed, keeping the
            # unguarded happy path down to the circuit check + counters.
            started = self._clock() if deadline is not None else 0.0
            try:
                value = call()
            except Exception as error:
                if not self._classify(error):
                    stats.permanent_failures += 1
                    breaker.record_failure()
                    raise
                stats.transient_failures += 1
                breaker.record_failure()
                last_error = error
                continue
            if deadline is not None:
                elapsed = self._clock() - started
                if elapsed > deadline:
                    timeout = OracleTimeoutError(
                        f"oracle call took {elapsed:.3f}s, exceeding the "
                        f"{deadline:g}s deadline"
                    )
                    stats.timeouts += 1
                    stats.transient_failures += 1
                    breaker.record_failure()
                    last_error = timeout
                    continue
            stats.successes += 1
            breaker.record_success()
            return value
        stats.exhausted += 1
        raise OracleUnavailableError(
            f"oracle still failing after {policy.max_attempts} attempt(s): "
            f"{last_error}",
            last_error=last_error,
        ) from last_error

    # ------------------------------------------------------------------ #
    # FairnessOracle interface
    # ------------------------------------------------------------------ #
    def is_satisfactory(self, ordering: np.ndarray, dataset: Dataset) -> bool:
        return bool(self._guarded(lambda: self.inner.is_satisfactory(ordering, dataset)))

    # ------------------------------------------------------------------ #
    # batched protocol: forward to the inner oracle under the same guards,
    # so the vectorised serving paths stay protected without losing their
    # one-matmul pre-check.  The whole batch is one guarded call: a transient
    # failure retries the batch, and the circuit sees one failure per batch.
    # ------------------------------------------------------------------ #
    def batched_capable(self) -> bool:
        return as_batched(self.inner) is not None

    def is_satisfactory_many(self, orderings: np.ndarray, dataset: Dataset) -> np.ndarray:
        matrix = ordering_matrix(orderings)
        return self._guarded(lambda: evaluate_many(self.inner, matrix, dataset))

    def describe(self) -> str:
        return f"resilient({self.inner.describe()})"
