"""Retry, backoff and circuit-breaker policies for flaky oracles and engines.

The paper treats the fairness oracle as an external black box — a human
expert, a policy service, an audit API — and external dependencies fail.
This module holds the *policy* half of the resilience layer: pure, clock-
injectable decision objects with no I/O of their own, so every behaviour is
deterministic under test.

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter (the jitter draw is seeded per attempt, so a retry
  schedule is reproducible run to run);
* :class:`CircuitBreaker` — opens after N consecutive failures, cools down
  for a configured period, then half-opens to probe the dependency;
* :class:`FakeClock` — a manual clock whose ``__call__`` returns simulated
  time and whose :meth:`FakeClock.advance` doubles as an instant "sleep",
  letting the chaos suite exercise timeouts and cooldowns without real delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, TransientOracleError

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "FakeClock",
    "is_transient_failure",
]


def is_transient_failure(error: BaseException) -> bool:
    """Default transient-vs-permanent classification of an oracle failure.

    Transient (worth retrying): the library's own
    :class:`~repro.exceptions.TransientOracleError` hierarchy (which includes
    :class:`~repro.exceptions.OracleTimeoutError`), plus the standard
    environmental failures a remote oracle realistically raises —
    ``TimeoutError``, ``ConnectionError`` and ``OSError``.  Everything else —
    misconfiguration, contract violations, wrong shapes — is permanent and
    should surface immediately rather than burn the retry budget.
    """
    return isinstance(
        error, (TransientOracleError, TimeoutError, ConnectionError, OSError)
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts, including the first call (1 = no retry).
    base_delay:
        Backoff before the second attempt, in seconds.
    multiplier:
        Exponential growth factor between consecutive backoffs.
    max_delay:
        Cap on the un-jittered backoff, in seconds.
    jitter:
        Fraction of the delay randomised symmetrically around it (0.1 means
        the delay lands in ``[0.9d, 1.1d]``).  The draw is seeded with
        ``(seed, attempt)``, so a schedule is fully deterministic.
    seed:
        Seed of the jitter draws.

    >>> RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0).backoff(2)
    0.2
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based).

        Deterministic: the same policy always yields the same schedule.
        """
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and delay > 0.0:
            draw = np.random.default_rng((self.seed, attempt)).random()
            delay *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return delay

    def schedule(self) -> tuple[float, ...]:
        """The full backoff schedule (one entry per retry-able failure).

        >>> len(RetryPolicy(max_attempts=4).schedule())
        3
        """
        return tuple(self.backoff(attempt) for attempt in range(1, self.max_attempts))


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures; probe after cooldown.

    States follow the classic pattern:

    * ``closed`` — calls flow; consecutive failures are counted;
    * ``open`` — calls are rejected without touching the dependency until
      ``recovery_time`` seconds (on the injected clock) have passed;
    * ``half_open`` — one or more trial calls are let through; a success
      closes the circuit, a failure re-opens it and restarts the cooldown.

    The clock is injectable so tests (and the chaos suite) drive state
    transitions with a :class:`FakeClock` instead of real waiting.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock=None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if recovery_time < 0:
            raise ConfigurationError("recovery_time must be non-negative")
        import time

        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock if clock is not None else time.monotonic
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.n_opens = 0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"`` or ``"half_open"``."""
        # Promote open -> half_open lazily once the cooldown elapsed.
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = "half_open"
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        return self._consecutive_failures

    def allow(self) -> bool:
        """True if a call may be attempted right now."""
        return self.state != "open"

    def record_success(self) -> None:
        """Note a successful call: resets the count and closes the circuit."""
        if self._consecutive_failures == 0 and self._state == "closed":
            return  # already clean — keep the happy path write-free
        self._consecutive_failures = 0
        self._state = "closed"
        self._opened_at = None

    def record_failure(self) -> None:
        """Note a failed call; trips the breaker at the threshold."""
        self._consecutive_failures += 1
        tripped_half_open = self._state == "half_open"
        if tripped_half_open or self._consecutive_failures >= self.failure_threshold:
            if self._state != "open":
                self.n_opens += 1
            self._state = "open"
            self._opened_at = self._clock()


class FakeClock:
    """A manual clock for deterministic timeout/cooldown tests.

    Calling the instance returns the current simulated time;
    :meth:`advance` moves it forward.  Pass the instance itself wherever a
    ``clock`` callable is expected and ``clock.advance`` wherever a ``sleep``
    callable is expected — "sleeping" then takes zero wall time while still
    moving simulated time, and a :class:`~repro.resilience.chaos.ChaosOracle`
    configured with the same clock makes injected latency observable to
    deadline checks.

    >>> clock = FakeClock()
    >>> clock.advance(1.5)
    >>> clock()
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move simulated time forward (doubles as an instant ``sleep``)."""
        if seconds < 0:
            raise ConfigurationError("the clock cannot move backwards")
        self._now += float(seconds)
