"""Resilient serving layer: fault-tolerant oracles, fallback chains, chaos.

The paper's oracle is an external dependency (a human expert, a policy
service) and the serving layer answers interactive queries against it — so
this package adds the protections a production deployment of the pipelines
needs, without touching their numerics:

* :mod:`repro.resilience.policy` — retry/backoff schedules, circuit breaker,
  and the injectable :class:`~repro.resilience.policy.FakeClock`;
* :mod:`repro.resilience.oracle` — :class:`ResilientOracle`, wrapping any
  fairness oracle with deadlines, bounded retry and circuit breaking;
* :mod:`repro.resilience.fallback` — :class:`FallbackEngine`, a registered
  query engine running an ordered tier chain with per-query fault isolation;
* :mod:`repro.resilience.chaos` — seeded, deterministic fault injection
  powering the ``chaos``-marked test suite.

See ``docs/robustness.md`` for the failure model and guarantees.
"""

from repro.resilience.chaos import ChaosEngine, ChaosOracle, InjectedFault
from repro.resilience.fallback import (
    BatchReport,
    FallbackConfig,
    FallbackEngine,
    FallbackTelemetry,
    QueryFailure,
    QueryRecord,
    TierError,
)
from repro.resilience.oracle import OracleCallStats, ResilientOracle
from repro.resilience.policy import (
    CircuitBreaker,
    FakeClock,
    RetryPolicy,
    is_transient_failure,
)

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "FakeClock",
    "is_transient_failure",
    "ResilientOracle",
    "OracleCallStats",
    "FallbackConfig",
    "FallbackEngine",
    "FallbackTelemetry",
    "TierError",
    "QueryRecord",
    "QueryFailure",
    "BatchReport",
    "ChaosOracle",
    "ChaosEngine",
    "InjectedFault",
]
