"""Assignment of exchange hyperplanes to the grid cells they cross (``CELLPLANE×``).

Section 5.1 of the paper observes that only the hyperplanes passing through a
cell can change the ordering inside it, so per-cell arrangements can be built
from a (usually small) subset of the full hyperplane set.  ``CELLPLANE×``
(Algorithm 7) finds those subsets by recursively halving the angle box and
pruning any sub-box the hyperplane misses — the box test is the corner test
implemented by :meth:`repro.geometry.hyperplane.Hyperplane.crosses_box`.

:func:`assign_hyperplanes_to_cells` reproduces that hierarchical pruning over
an arbitrary partition (uniform grid or adaptive), and
:func:`hyperplanes_through_cell` is the direct per-cell filter used in tests
as the brute-force reference.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.partition import AnglePartitionProtocol, Cell

__all__ = [
    "assign_hyperplanes_to_cells",
    "hyperplanes_through_cell",
    "merged_cell_plane_index",
    "CellPlaneIndex",
]


def hyperplanes_through_cell(cell: Cell, hyperplanes: list[Hyperplane]) -> list[int]:
    """Return indices of the hyperplanes that cross one cell (brute-force reference)."""
    low = np.asarray(cell.low)
    high = np.asarray(cell.high)
    return [
        index
        for index, hyperplane in enumerate(hyperplanes)
        if hyperplane.crosses_box(low, high)
    ]


class CellPlaneIndex:
    """Per-cell lists of crossing hyperplanes, as produced by ``CELLPLANE×``.

    Attributes
    ----------
    by_cell:
        ``by_cell[cell_index]`` is the list of hyperplane indices crossing it.
    box_tests:
        Number of hyperplane-box intersection tests performed (the quantity the
        hierarchical pruning is designed to reduce; reported in benchmarks).
    """

    def __init__(self, n_cells: int) -> None:
        self.by_cell: list[list[int]] = [[] for _ in range(n_cells)]
        self.box_tests: int = 0

    def add(self, cell_index: int, hyperplane_index: int) -> None:
        self.by_cell[cell_index].append(hyperplane_index)

    def counts(self) -> np.ndarray:
        """Number of hyperplanes crossing each cell (the series of paper Fig. 21)."""
        return np.asarray([len(entry) for entry in self.by_cell], dtype=int)


def _recurse(
    hyperplane: Hyperplane,
    hyperplane_index: int,
    cells: list[Cell],
    cell_indices: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    index: CellPlaneIndex,
) -> None:
    """Recursive divide-and-prune over a group of cells with a shared bounding box."""
    bounding_low = lows.min(axis=0)
    bounding_high = highs.max(axis=0)
    index.box_tests += 1
    if not hyperplane.crosses_box(bounding_low, bounding_high):
        return
    if cell_indices.size == 1:
        index.add(int(cell_indices[0]), hyperplane_index)
        return
    # Split the group of cells in half along the axis with the widest bounding
    # extent, mirroring the round-robin halving of Algorithm 7 while staying
    # agnostic to how the partition generated the cells.
    extents = bounding_high - bounding_low
    axis = int(np.argmax(extents))
    order = np.argsort(lows[:, axis], kind="stable")
    half = order.size // 2
    for chunk in (order[:half], order[half:]):
        if chunk.size == 0:
            continue
        _recurse(
            hyperplane,
            hyperplane_index,
            cells,
            cell_indices[chunk],
            lows[chunk],
            highs[chunk],
            index,
        )


def assign_hyperplanes_to_cells(
    partition: AnglePartitionProtocol, hyperplanes: list[Hyperplane]
) -> CellPlaneIndex:
    """Compute, for every cell, the hyperplanes passing through it (``CELLPLANE×``).

    Parameters
    ----------
    partition:
        Any partition implementing the common protocol (uniform or adaptive).
    hyperplanes:
        Exchange hyperplanes in angle space.

    Returns
    -------
    CellPlaneIndex
        Per-cell hyperplane lists plus the number of box tests performed.
    """
    cells = partition.cells()
    if not cells:
        raise GeometryError("partition has no cells")
    for hyperplane in hyperplanes:
        if hyperplane.dimension != partition.dimension:
            raise GeometryError("hyperplane dimension does not match the partition")
    index = CellPlaneIndex(len(cells))
    lows = np.asarray([cell.low for cell in cells], dtype=float)
    highs = np.asarray([cell.high for cell in cells], dtype=float)
    cell_indices = np.arange(len(cells))
    for hyperplane_index, hyperplane in enumerate(hyperplanes):
        _recurse(hyperplane, hyperplane_index, cells, cell_indices, lows, highs, index)
    return index


def merged_cell_plane_index(
    partition: AnglePartitionProtocol,
    old_index: CellPlaneIndex,
    position_map: dict[int, int],
    fresh_planes: list[Hyperplane],
    fresh_positions: list[int],
) -> CellPlaneIndex:
    """Incrementally maintain a ``CELLPLANE×`` index under a hyperplane delta.

    A hyperplane's cell membership is the purely geometric
    :meth:`~repro.geometry.hyperplane.Hyperplane.crosses_box` test against the
    cell's box, independent of every other hyperplane — so when a delta drops
    and adds hyperplanes, the retained planes keep their memberships verbatim
    and only the fresh planes run the divide-and-prune assignment.

    Parameters
    ----------
    partition:
        The (unchanged) angle-space partition.
    old_index:
        The pre-delta assignment.
    position_map:
        Old hyperplane-list position → new position, for the retained planes
        (as returned by :func:`repro.core.maintenance.maintain_hyperplanes`);
        planes absent from the map were dropped.
    fresh_planes:
        Newly constructed hyperplanes to assign geometrically.
    fresh_positions:
        New-list position of each fresh plane, aligned with ``fresh_planes``.

    Returns
    -------
    CellPlaneIndex
        Per-cell hyperplane lists identical — same members, same ascending
        order — to :func:`assign_hyperplanes_to_cells` on the merged
        hyperplane list.  ``box_tests`` accumulates on top of the old index's
        count (it tracks total assignment work, not one pass).
    """
    cells = partition.cells()
    if not cells:
        raise GeometryError("partition has no cells")
    if len(old_index.by_cell) != len(cells):
        raise GeometryError("cell-plane index does not match the partition")
    if len(fresh_planes) != len(fresh_positions):
        raise GeometryError("fresh_planes and fresh_positions must align")
    for hyperplane in fresh_planes:
        if hyperplane.dimension != partition.dimension:
            raise GeometryError("hyperplane dimension does not match the partition")
    merged = CellPlaneIndex(len(cells))
    merged.box_tests = old_index.box_tests
    lows = np.asarray([cell.low for cell in cells], dtype=float)
    highs = np.asarray([cell.high for cell in cells], dtype=float)
    cell_indices = np.arange(len(cells))
    for hyperplane, new_position in zip(fresh_planes, fresh_positions):
        _recurse(hyperplane, int(new_position), cells, cell_indices, lows, highs, merged)
    for cell_index, entries in enumerate(old_index.by_cell):
        retained = [
            position_map[position] for position in entries if position in position_map
        ]
        # The fresh additions and the remapped retained positions are each
        # ascending (the recursion processes planes in order; the position map
        # is monotone), so one sort restores the full-build list order.
        merged.by_cell[cell_index] = sorted(retained + merged.by_cell[cell_index])
    return merged
