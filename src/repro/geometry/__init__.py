"""Computational-geometry substrate: angles, dual space, arrangements, partitions.

This package contains everything the paper's algorithms need from
combinatorial geometry — the angle coordinate system for ranking functions,
the dual-space ordering exchanges and their ``HYPERPOLAR`` image in angle
space, hyperplane / half-space / region primitives backed by linear
programming, the incremental arrangement and the arrangement tree, the angle
space partitions of §5, and the cell-hyperplane assignment of ``CELLPLANE×``.
"""

from repro.geometry.angles import (
    HALF_PI,
    angular_distance,
    angular_distance_angles,
    clamp_angles,
    is_first_orthant_direction,
    to_angles,
    to_angles_many,
    to_weights,
)
from repro.geometry.arrangement import Arrangement
from repro.geometry.arrangement_tree import ArrangementTree, ArrangementTreeNode
from repro.geometry.cellplane import (
    CellPlaneIndex,
    assign_hyperplanes_to_cells,
    hyperplanes_through_cell,
)
from repro.geometry.dual import (
    build_exchange_angles_2d,
    build_exchange_angles_2d_reference,
    build_exchange_hyperplanes,
    build_exchange_hyperplanes_reference,
    exchange_angle_2d,
    exchange_normal,
    has_exchange,
    hyperplanes_for_dataset,
    hyperpolar,
    hyperpolar_many,
)
from repro.geometry.hyperplane import HalfSpace, Hyperplane, Region, angle_box_bounds
from repro.geometry.lp import LPResult, chebyshev_center, feasible_point, is_feasible
from repro.geometry.partition import (
    AnglePartition,
    Cell,
    UniformGridPartition,
    cell_gamma,
    theorem6_bound,
)

__all__ = [
    "HALF_PI",
    "to_angles",
    "to_angles_many",
    "to_weights",
    "angular_distance",
    "angular_distance_angles",
    "clamp_angles",
    "is_first_orthant_direction",
    "Arrangement",
    "ArrangementTree",
    "ArrangementTreeNode",
    "CellPlaneIndex",
    "assign_hyperplanes_to_cells",
    "hyperplanes_through_cell",
    "exchange_normal",
    "exchange_angle_2d",
    "has_exchange",
    "hyperpolar",
    "hyperpolar_many",
    "hyperplanes_for_dataset",
    "build_exchange_angles_2d",
    "build_exchange_angles_2d_reference",
    "build_exchange_hyperplanes",
    "build_exchange_hyperplanes_reference",
    "Hyperplane",
    "HalfSpace",
    "Region",
    "angle_box_bounds",
    "LPResult",
    "feasible_point",
    "chebyshev_center",
    "is_feasible",
    "Cell",
    "UniformGridPartition",
    "AnglePartition",
    "cell_gamma",
    "theorem6_bound",
]
