"""Ordering exchanges: dual transform and the ``HYPERPOLAR`` construction.

An *ordering exchange* of a pair of items ``t_i``, ``t_j`` is the set of
scoring functions that give both items the same score (§3.1).  For linear
functions this is the locus :math:`\\sum_k (t_i[k] - t_j[k])\\,w_k = 0` — a
hyperplane through the origin in weight space (Eq. 5).  Pairs in which one
item dominates the other never exchange (the hyperplane misses the first
orthant), so they are skipped.

Three views of the same object are provided here:

* in 2-D the exchange is a single ray, identified by its angle with the x-axis
  (Eq. 2) — used by the ray-sweep algorithm of §3;
* in weight space the exchange is described by its normal vector (Eq. 5) — the
  exact ground truth used by tests;
* in the angle coordinate system the exchange is represented, following the
  paper's ``HYPERPOLAR`` (Algorithm 3), by the hyperplane
  :math:`\\sum_k h[k]\\,θ_k = 1` through ``d-1`` points of the exchange locus.
  (The true locus is mildly curved in angle coordinates; fitting a hyperplane
  through ``d-1`` of its first-orthant points is precisely what Algorithm 3
  does, and the oracle evaluation at region representatives keeps the final
  labels correct.)

Batch construction is vectorised: instead of calling :func:`has_exchange` on
each of the ~n²/2 pairs (each call allocating arrays and re-running
``np.allclose`` plus two ``dominates`` checks), the eligible pairs are
enumerated in one shot by :func:`repro.data.dominance.exchange_pair_indices`
(three broadcast comparisons over the (n, n, d) difference tensor), and all
2-D exchange angles are then computed with a single vectorised ``arctan2``
over the pairwise score differences.  The historical scalar loops are retained
as ``build_exchange_angles_2d_reference`` / ``build_exchange_hyperplanes_reference``
so tests and benchmarks can assert the kernels are exactly equivalent.  Both
paths compute angles with the same ``np.arctan2`` primitive, so the produced
angles are bit-identical.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import null_space

from repro.data.dataset import Dataset
from repro.data.dominance import dominates, exchange_pair_indices
from repro.exceptions import GeometryError
from repro.geometry.angles import to_angles
from repro.geometry.hyperplane import Hyperplane

__all__ = [
    "exchange_normal",
    "exchange_angle_2d",
    "hyperpolar",
    "build_exchange_hyperplanes",
    "build_exchange_hyperplanes_reference",
    "build_exchange_angles_2d",
    "build_exchange_angles_2d_reference",
]


def exchange_normal(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Return the weight-space normal ``t_i - t_j`` of the pair's ordering exchange (Eq. 5).

    The exchange hyperplane in weight space is ``normal · w = 0``; weight
    vectors on its positive side rank ``first`` above ``second`` and vice
    versa.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape or first.ndim != 1:
        raise GeometryError("exchange_normal expects two vectors of the same dimension")
    return first - second


def has_exchange(first: np.ndarray, second: np.ndarray) -> bool:
    """Return True if the pair produces an ordering exchange inside the first orthant.

    Identical items and dominated pairs do not exchange anywhere in the space
    of non-negative weight vectors (§3.2, footnote 4).
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if np.allclose(first, second):
        return False
    return not dominates(first, second) and not dominates(second, first)


def exchange_angle_2d(first: np.ndarray, second: np.ndarray) -> float:
    """Return the angle (with the x-axis) of the 2-D ordering exchange of a pair (Eq. 2).

    Raises
    ------
    GeometryError
        If the items are not 2-dimensional or the pair has no exchange in the
        first quadrant (identical or dominated pair).
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != (2,) or second.shape != (2,):
        raise GeometryError("exchange_angle_2d expects 2-dimensional items")
    if not has_exchange(first, second):
        raise GeometryError("the pair has no ordering exchange in the first quadrant")
    dx = first[0] - second[0]
    dy = first[1] - second[1]
    # The exchange ray direction w satisfies dx*w1 + dy*w2 = 0 with w >= 0.
    # Because the pair is non-dominated, dx and dy have strictly opposite
    # signs, so the first-quadrant direction is (|dy|, |dx|).  np.arctan2 keeps
    # this bit-identical to the vectorised batch kernel.
    if dx > 0:
        weights = (-dy, dx)
    else:
        weights = (dy, -dx)
    return float(np.arctan2(weights[1], weights[0]))


def _strictly_positive_point_on(normal: np.ndarray) -> np.ndarray:
    """Return a strictly positive point ``x`` with ``normal · x = 0``.

    Balances the positive-coefficient mass against the negative-coefficient
    mass; zero-coefficient coordinates are set to 1.  Such a point exists
    exactly when ``normal`` has both positive and negative entries, which is
    guaranteed for non-dominated pairs.
    """
    positive = np.flatnonzero(normal > 0)
    negative = np.flatnonzero(normal < 0)
    if positive.size == 0 or negative.size == 0:
        raise GeometryError("the exchange hyperplane does not cross the first orthant")
    point = np.ones_like(normal, dtype=float)
    point[positive] = 1.0 / (normal[positive] * positive.size)
    point[negative] = 1.0 / (-normal[negative] * negative.size)
    return point


def hyperpolar(
    first: np.ndarray, second: np.ndarray, label: tuple[int, int] | None = None
) -> Hyperplane:
    """Map the ordering exchange of a pair into the angle coordinate system (Algorithm 3).

    Picks ``d-1`` linearly independent first-orthant points on the weight-space
    exchange hyperplane, converts each to its angle vector, and solves the
    linear system ``Θ · h = 1`` for the angle-space hyperplane coefficients.

    Parameters
    ----------
    first, second:
        Item scoring vectors of dimension ``d >= 3``.
    label:
        Optional pair identifier stored on the resulting hyperplane.

    Returns
    -------
    Hyperplane
        The exchange hyperplane ``h · θ = 1`` in the ``(d-1)``-dimensional
        angle space.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.ndim != 1 or first.shape != second.shape:
        raise GeometryError("hyperpolar expects two item vectors of equal dimension")
    d = first.size
    if d < 3:
        raise GeometryError("hyperpolar requires d >= 3; use exchange_angle_2d for d = 2")
    if not has_exchange(first, second):
        raise GeometryError("the pair has no ordering exchange in the first orthant")
    return _hyperpolar_unchecked(first, second, label)


def _hyperpolar_unchecked(
    first: np.ndarray, second: np.ndarray, label: tuple[int, int] | None
) -> Hyperplane:
    """Core of :func:`hyperpolar` for callers that already verified the exchange.

    The batch construction enumerates eligible pairs with the vectorised
    dominance kernel, so re-running ``has_exchange`` per pair here would undo
    that saving.
    """
    d = first.size
    normal = exchange_normal(first, second)
    base_point = _strictly_positive_point_on(normal)
    basis = null_space(normal[None, :])
    if basis.shape[1] != d - 1:
        raise GeometryError("degenerate exchange normal; cannot span the exchange hyperplane")

    for attempt in range(4):
        theta_rows = []
        for column in range(d - 1):
            direction = basis[:, column]
            negative_mask = direction < 0
            if np.any(negative_mask):
                step_limit = float(np.min(base_point[negative_mask] / -direction[negative_mask]))
            else:
                step_limit = 1.0
            step = 0.5 * step_limit / (attempt + 1.0) * (1.0 + 0.37 * column)
            sample = base_point + step * direction
            sample = np.clip(sample, 0.0, None)
            if not np.any(sample > 0):
                sample = base_point
            theta_rows.append(to_angles(sample))
        theta_matrix = np.asarray(theta_rows, dtype=float)
        try:
            coefficients = np.linalg.solve(theta_matrix, np.ones(d - 1))
        except np.linalg.LinAlgError:
            continue
        if np.all(np.isfinite(coefficients)) and np.any(np.abs(coefficients) > 1e-12):
            return Hyperplane(tuple(coefficients), label=label)
    # Last resort: least-squares fit through the sampled angle points.
    coefficients, *_ = np.linalg.lstsq(theta_matrix, np.ones(d - 1), rcond=None)
    if not np.all(np.isfinite(coefficients)) or np.all(np.abs(coefficients) < 1e-12):
        raise GeometryError("failed to construct the angle-space exchange hyperplane")
    return Hyperplane(tuple(coefficients), label=label)


def build_exchange_angles_2d(dataset: Dataset) -> list[tuple[float, int, int]]:
    """Return all 2-D ordering exchanges of a dataset as ``(angle, i, j)`` triples.

    Dominated and identical pairs are skipped, exactly as in Algorithm 1
    lines 2–8.  The list is *not* sorted; the ray-sweep sorts it.

    Vectorised: pair eligibility comes from one dominance-matrix kernel and
    all angles from a single ``arctan2`` over the pairwise score differences —
    no per-pair Python calls.  Output is identical (bit-for-bit) to
    :func:`build_exchange_angles_2d_reference`.
    """
    if dataset.n_attributes != 2:
        raise GeometryError("build_exchange_angles_2d requires a 2-attribute dataset")
    scores = dataset.scores
    pairs = exchange_pair_indices(scores)
    if pairs.shape[0] == 0:
        return []
    differences = scores[pairs[:, 0]] - scores[pairs[:, 1]]
    # Non-dominated 2-D pairs have dx, dy of strictly opposite signs; the
    # first-quadrant exchange direction is (|dy|, |dx|) (Eq. 2).
    angles = np.arctan2(np.abs(differences[:, 0]), np.abs(differences[:, 1]))
    return [
        (float(angle), int(i), int(j))
        for angle, i, j in zip(angles.tolist(), pairs[:, 0].tolist(), pairs[:, 1].tolist())
    ]


def build_exchange_angles_2d_reference(dataset: Dataset) -> list[tuple[float, int, int]]:
    """Scalar per-pair reference implementation of :func:`build_exchange_angles_2d`.

    Retained (not used on the hot path) so tests and benchmarks can verify the
    vectorised kernel produces exactly the same exchanges.
    """
    if dataset.n_attributes != 2:
        raise GeometryError("build_exchange_angles_2d requires a 2-attribute dataset")
    scores = dataset.scores
    exchanges: list[tuple[float, int, int]] = []
    n = dataset.n_items
    for i in range(n - 1):
        for j in range(i + 1, n):
            if not has_exchange(scores[i], scores[j]):
                continue
            exchanges.append((exchange_angle_2d(scores[i], scores[j]), i, j))
    return exchanges


def build_exchange_hyperplanes(
    dataset: Dataset, item_indices: np.ndarray | None = None
) -> list[Hyperplane]:
    """Construct the angle-space exchange hyperplanes of every non-dominated pair.

    Parameters
    ----------
    dataset:
        Dataset with ``d >= 3`` scoring attributes.
    item_indices:
        Optional subset of item indices to restrict the construction to (used
        by the convex-layer optimisation); defaults to all items.

    Returns
    -------
    list of Hyperplane
        One hyperplane per exchanging pair, labelled with the pair's original
        item indices.
    """
    if dataset.n_attributes < 3:
        raise GeometryError("build_exchange_hyperplanes requires d >= 3")
    if item_indices is None:
        indices = np.arange(dataset.n_items)
    else:
        indices = np.asarray(item_indices, dtype=int)
    scores = dataset.scores
    # One vectorised eligibility pass over the (possibly restricted) item set
    # replaces the per-pair has_exchange calls; hyperpolar's own recheck is
    # skipped via the unchecked core.
    pairs = exchange_pair_indices(scores[indices])
    hyperplanes: list[Hyperplane] = []
    for position_i, position_j in pairs.tolist():
        i = int(indices[position_i])
        j = int(indices[position_j])
        hyperplanes.append(_hyperpolar_unchecked(scores[i], scores[j], label=(i, j)))
    return hyperplanes


def build_exchange_hyperplanes_reference(
    dataset: Dataset, item_indices: np.ndarray | None = None
) -> list[Hyperplane]:
    """Scalar per-pair reference implementation of :func:`build_exchange_hyperplanes`.

    Retained so tests can verify the vectorised pair enumeration selects
    exactly the same pairs (and therefore the same hyperplanes).
    """
    if dataset.n_attributes < 3:
        raise GeometryError("build_exchange_hyperplanes requires d >= 3")
    if item_indices is None:
        indices = np.arange(dataset.n_items)
    else:
        indices = np.asarray(item_indices, dtype=int)
    scores = dataset.scores
    hyperplanes: list[Hyperplane] = []
    for position_i in range(indices.size - 1):
        i = int(indices[position_i])
        for position_j in range(position_i + 1, indices.size):
            j = int(indices[position_j])
            if not has_exchange(scores[i], scores[j]):
                continue
            hyperplanes.append(hyperpolar(scores[i], scores[j], label=(i, j)))
    return hyperplanes
