"""Ordering exchanges: dual transform and the ``HYPERPOLAR`` construction.

An *ordering exchange* of a pair of items ``t_i``, ``t_j`` is the set of
scoring functions that give both items the same score (§3.1).  For linear
functions this is the locus :math:`\\sum_k (t_i[k] - t_j[k])\\,w_k = 0` — a
hyperplane through the origin in weight space (Eq. 5).  Pairs in which one
item dominates the other never exchange (the hyperplane misses the first
orthant), so they are skipped.

Three views of the same object are provided here:

* in 2-D the exchange is a single ray, identified by its angle with the x-axis
  (Eq. 2) — used by the ray-sweep algorithm of §3;
* in weight space the exchange is described by its normal vector (Eq. 5) — the
  exact ground truth used by tests;
* in the angle coordinate system the exchange is represented, following the
  paper's ``HYPERPOLAR`` (Algorithm 3), by the hyperplane
  :math:`\\sum_k h[k]\\,θ_k = 1` through ``d-1`` points of the exchange locus.
  (The true locus is mildly curved in angle coordinates; fitting a hyperplane
  through ``d-1`` of its first-orthant points is precisely what Algorithm 3
  does, and the oracle evaluation at region representatives keeps the final
  labels correct.)

Batch construction is vectorised end to end: pair eligibility is decided by
the broadcast dominance kernels of :mod:`repro.data.dominance` (enumerated in
bounded-memory row blocks by :func:`~repro.data.dominance.iter_exchange_pair_chunks`
so the O(n²) broadcast never materialises the full difference tensor), all
2-D exchange angles come from a single vectorised ``arctan2``, and all d ≥ 3
exchange hyperplanes come from :func:`hyperpolar_many` — one batched SVD over
the ``(m, 1, d)`` stack of exchange normals for the nullspace bases, one
batched ``np.linalg.solve`` over the ``(m, d-1, d-1)`` angle matrices —
instead of m per-pair nullspace/solve calls.  The scalar routes are retained
(``build_exchange_angles_2d_reference`` / ``build_exchange_hyperplanes_reference``,
and ``method="scalar"`` on :func:`hyperplanes_for_dataset`) so tests and
benchmarks can assert the kernels are exactly equivalent.  Scalar and batched
paths share the same primitives — ``np.arctan2`` for angles, the numpy SVD
gufunc for nullspaces, the numpy solve gufunc for the linear systems — and
numpy gufuncs apply the identical per-matrix routine across the stacked batch,
so the produced angles and hyperplane coefficients are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.dominance import (
    dominates,
    exchange_pair_indices,
    iter_exchange_pair_chunks,
)
from repro.exceptions import GeometryError
from repro.geometry.angles import to_angles, to_angles_many
from repro.geometry.hyperplane import Hyperplane
from repro.obs.trace import stage_span

__all__ = [
    "exchange_normal",
    "exchange_angle_2d",
    "hyperpolar",
    "hyperpolar_many",
    "hyperplanes_for_dataset",
    "build_exchange_hyperplanes",
    "build_exchange_hyperplanes_reference",
    "build_exchange_angles_2d",
    "build_exchange_angles_2d_reference",
    "exchange_angles_for_pairs",
]

#: Methods accepted by :func:`hyperplanes_for_dataset`.
HYPERPLANE_METHODS = ("batched", "scalar")


def exchange_normal(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Return the weight-space normal ``t_i - t_j`` of the pair's ordering exchange (Eq. 5).

    The exchange hyperplane in weight space is ``normal · w = 0``; weight
    vectors on its positive side rank ``first`` above ``second`` and vice
    versa.

    >>> import numpy as np
    >>> exchange_normal(np.array([1.0, 2.0]), np.array([3.0, 1.0]))
    array([-2.,  1.])
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape or first.ndim != 1:
        raise GeometryError("exchange_normal expects two vectors of the same dimension")
    return first - second


def has_exchange(first: np.ndarray, second: np.ndarray) -> bool:
    """Return True if the pair produces an ordering exchange inside the first orthant.

    Identical items and dominated pairs do not exchange anywhere in the space
    of non-negative weight vectors (§3.2, footnote 4).

    >>> import numpy as np
    >>> has_exchange(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
    True
    >>> has_exchange(np.array([2.0, 2.0]), np.array([1.0, 1.0]))
    False
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if np.allclose(first, second):
        return False
    return not dominates(first, second) and not dominates(second, first)


def exchange_angle_2d(first: np.ndarray, second: np.ndarray) -> float:
    """Return the angle (with the x-axis) of the 2-D ordering exchange of a pair (Eq. 2).

    >>> import numpy as np
    >>> round(exchange_angle_2d(np.array([1.0, 2.0]), np.array([2.0, 1.0])), 6)
    0.785398

    Raises
    ------
    GeometryError
        If the items are not 2-dimensional or the pair has no exchange in the
        first quadrant (identical or dominated pair).
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != (2,) or second.shape != (2,):
        raise GeometryError("exchange_angle_2d expects 2-dimensional items")
    if not has_exchange(first, second):
        raise GeometryError("the pair has no ordering exchange in the first quadrant")
    dx = first[0] - second[0]
    dy = first[1] - second[1]
    # The exchange ray direction w satisfies dx*w1 + dy*w2 = 0 with w >= 0.
    # Because the pair is non-dominated, dx and dy have strictly opposite
    # signs, so the first-quadrant direction is (|dy|, |dx|).  np.arctan2 keeps
    # this bit-identical to the vectorised batch kernel.
    if dx > 0:
        weights = (-dy, dx)
    else:
        weights = (dy, -dx)
    return float(np.arctan2(weights[1], weights[0]))


def _strictly_positive_point_on(normal: np.ndarray) -> np.ndarray:
    """Return a strictly positive point ``x`` with ``normal · x = 0``.

    Balances the positive-coefficient mass against the negative-coefficient
    mass; zero-coefficient coordinates are set to 1.  Such a point exists
    exactly when ``normal`` has both positive and negative entries, which is
    guaranteed for non-dominated pairs.
    """
    positive = np.flatnonzero(normal > 0)
    negative = np.flatnonzero(normal < 0)
    if positive.size == 0 or negative.size == 0:
        raise GeometryError("the exchange hyperplane does not cross the first orthant")
    point = np.ones_like(normal, dtype=float)
    point[positive] = 1.0 / (normal[positive] * positive.size)
    point[negative] = 1.0 / (-normal[negative] * negative.size)
    return point


def hyperpolar(
    first: np.ndarray, second: np.ndarray, label: tuple[int, int] | None = None
) -> Hyperplane:
    """Map the ordering exchange of a pair into the angle coordinate system (Algorithm 3).

    Picks ``d-1`` linearly independent first-orthant points on the weight-space
    exchange hyperplane, converts each to its angle vector, and solves the
    linear system ``Θ · h = 1`` for the angle-space hyperplane coefficients.

    Parameters
    ----------
    first, second:
        Item scoring vectors of dimension ``d >= 3``.
    label:
        Optional pair identifier stored on the resulting hyperplane.

    Returns
    -------
    Hyperplane
        The exchange hyperplane ``h · θ = 1`` in the ``(d-1)``-dimensional
        angle space.

    >>> import numpy as np
    >>> plane = hyperpolar(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 1.0]), label=(0, 1))
    >>> plane.dimension, plane.label
    (2, (0, 1))
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.ndim != 1 or first.shape != second.shape:
        raise GeometryError("hyperpolar expects two item vectors of equal dimension")
    d = first.size
    if d < 3:
        raise GeometryError("hyperpolar requires d >= 3; use exchange_angle_2d for d = 2")
    if not has_exchange(first, second):
        raise GeometryError("the pair has no ordering exchange in the first orthant")
    return _hyperpolar_unchecked(first, second, label)


def _nullspace_of_normal(normal: np.ndarray) -> np.ndarray:
    """Return a ``(d, d-1)`` orthonormal basis of ``normal``'s nullspace via SVD.

    Same construction as ``scipy.linalg.null_space`` specialised to a single
    ``(1, d)`` row: the trailing right-singular vectors span the nullspace.
    Uses the numpy SVD gufunc so the scalar path is bit-identical to the
    batched stack in :func:`hyperpolar_many` (the gufunc applies the identical
    LAPACK routine per stacked matrix).
    """
    _, singular_values, vh = np.linalg.svd(normal[None, :], full_matrices=True)
    if singular_values[0] <= 0.0:
        return np.empty((normal.size, 0))
    return vh[1:].T


def _hyperpolar_unchecked(
    first: np.ndarray, second: np.ndarray, label: tuple[int, int] | None
) -> Hyperplane:
    """Core of :func:`hyperpolar` for callers that already verified the exchange.

    The batch construction enumerates eligible pairs with the vectorised
    dominance kernel, so re-running ``has_exchange`` per pair here would undo
    that saving.
    """
    d = first.size
    normal = exchange_normal(first, second)
    base_point = _strictly_positive_point_on(normal)
    basis = _nullspace_of_normal(normal)
    if basis.shape[1] != d - 1:
        raise GeometryError("degenerate exchange normal; cannot span the exchange hyperplane")

    for attempt in range(4):
        theta_rows = []
        for column in range(d - 1):
            direction = basis[:, column]
            negative_mask = direction < 0
            if np.any(negative_mask):
                step_limit = float(np.min(base_point[negative_mask] / -direction[negative_mask]))
            else:
                step_limit = 1.0
            step = 0.5 * step_limit / (attempt + 1.0) * (1.0 + 0.37 * column)
            sample = base_point + step * direction
            sample = np.clip(sample, 0.0, None)
            if not np.any(sample > 0):
                sample = base_point
            theta_rows.append(to_angles(sample))
        theta_matrix = np.asarray(theta_rows, dtype=float)
        try:
            coefficients = np.linalg.solve(theta_matrix, np.ones(d - 1))
        except np.linalg.LinAlgError:
            continue
        if np.all(np.isfinite(coefficients)) and np.any(np.abs(coefficients) > 1e-12):
            return Hyperplane(tuple(coefficients), label=label)
    # Last resort: least-squares fit through the sampled angle points.
    coefficients, *_ = np.linalg.lstsq(theta_matrix, np.ones(d - 1), rcond=None)
    if not np.all(np.isfinite(coefficients)) or np.all(np.abs(coefficients) < 1e-12):
        raise GeometryError("failed to construct the angle-space exchange hyperplane")
    return Hyperplane(tuple(coefficients), label=label)


def _strictly_positive_points_on_many(normals: np.ndarray) -> np.ndarray:
    """Batched :func:`_strictly_positive_point_on`: one strictly positive point per normal.

    ``normals`` is the ``(m, d)`` stack of exchange normals; every row must
    contain both positive and negative entries (guaranteed for non-dominated
    pairs, and validated by :func:`hyperpolar_many`).  Row ``k`` of the result
    is bit-identical to ``_strictly_positive_point_on(normals[k])`` — the same
    ``1 / (entry · count)`` expression evaluated elementwise.
    """
    positive = normals > 0
    negative = normals < 0
    positive_counts = positive.sum(axis=1)[:, None]
    negative_counts = negative.sum(axis=1)[:, None]
    points = np.ones_like(normals, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        points = np.where(positive, 1.0 / (normals * positive_counts), points)
        points = np.where(negative, 1.0 / (-normals * negative_counts), points)
    return points


def _hyperpolar_first_attempt_batch(
    normals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Run attempt 0 of the HYPERPOLAR sampling loop for a whole stack of normals.

    Returns ``(coefficients, ok)`` where ``coefficients`` is the ``(m, d-1)``
    solution stack and ``ok`` marks the rows whose attempt-0 system solved to
    finite, non-degenerate coefficients — exactly the acceptance test of the
    scalar loop's first iteration.  Rows with ``ok`` False must be re-run
    through the scalar path (which retries with smaller steps and a
    least-squares fallback); rows with ``ok`` True are bit-identical to what
    the scalar path would return, because every step — base point, SVD
    nullspace, step-limit minimisation, angle conversion, linear solve — uses
    the same primitive applied by a numpy gufunc or elementwise kernel over
    the stack.
    """
    m, d = normals.shape
    base_points = _strictly_positive_points_on_many(normals)
    # One batched SVD over the (m, 1, d) normal stack: rows 1..d-1 of each
    # ``vh`` span the exchange hyperplane, exactly as in _nullspace_of_normal.
    vh = np.linalg.svd(normals[:, None, :], full_matrices=True)[2]

    theta_stack = np.empty((m, d - 1, d - 1))
    failed = np.zeros(m, dtype=bool)
    for column in range(d - 1):
        directions = vh[:, 1 + column, :]
        negative_mask = directions < 0
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(negative_mask, base_points / -directions, np.inf)
        step_limits = np.where(
            np.any(negative_mask, axis=1), np.min(ratios, axis=1), 1.0
        )
        # attempt = 0 of the scalar loop, kept literally: / 1.0 is exact.
        steps = 0.5 * step_limits / 1.0 * (1.0 + 0.37 * column)
        samples = np.clip(base_points + steps[:, None] * directions, 0.0, None)
        dead = ~np.any(samples > 0, axis=1)
        if np.any(dead):
            samples[dead] = base_points[dead]
        # Rows whose samples are not valid first-orthant directions (possible
        # only for pathological normals, e.g. denormal entries) go through the
        # scalar path so they raise or recover exactly as hyperpolar would.
        invalid = ~np.all(np.isfinite(samples), axis=1)
        if np.any(invalid):
            failed |= invalid
            samples[invalid] = 1.0
        theta_stack[:, column, :] = to_angles_many(samples)

    ones = np.ones((m, d - 1, 1))
    try:
        solutions = np.linalg.solve(theta_stack, ones)[..., 0]
        solved = np.ones(m, dtype=bool)
    except np.linalg.LinAlgError:
        # At least one singular system in the stack: fall back to per-row
        # solves (the same gufunc, so still bit-identical) to find survivors.
        solutions = np.zeros((m, d - 1))
        solved = np.zeros(m, dtype=bool)
        for row in range(m):
            try:
                solutions[row] = np.linalg.solve(theta_stack[row], np.ones(d - 1))
                solved[row] = True
            except np.linalg.LinAlgError:
                continue
    ok = (
        solved
        & ~failed
        & np.all(np.isfinite(solutions), axis=1)
        & np.any(np.abs(solutions) > 1e-12, axis=1)
    )
    return solutions, ok


def hyperpolar_many(
    scores: np.ndarray,
    pairs: np.ndarray,
    labels: list[tuple[int, int]] | None = None,
) -> list[Hyperplane]:
    """Construct the angle-space exchange hyperplanes of many pairs at once.

    The batched counterpart of :func:`hyperpolar` (Algorithm 3): all pairwise
    exchange normals are stacked, their nullspace bases come from one batched
    SVD over the ``(m, 1, d)`` normal stack, the sampled angle points from the
    vectorised :func:`~repro.geometry.angles.to_angles_many`, and the
    hyperplane coefficients from one batched ``np.linalg.solve`` over the
    ``(m, d-1, d-1)`` angle matrices.  The rare pairs whose first sampling
    attempt yields a singular or degenerate system (the scalar loop retries
    those with smaller steps) are re-run through the scalar path, so the
    output is bit-identical to calling :func:`hyperpolar` per pair.

    Parameters
    ----------
    scores:
        ``(n, d)`` score matrix with ``d >= 3``.
    pairs:
        ``(m, 2)`` integer array of row-index pairs, each exchange-eligible
        (neither row dominates the other — e.g. the output of
        :func:`~repro.data.dominance.exchange_pair_indices`).
    labels:
        Optional per-pair labels; defaults to the ``(i, j)`` row indices.

    Returns
    -------
    list of Hyperplane
        One hyperplane per pair, in input order.

    Raises
    ------
    GeometryError
        If ``d < 3``, the pair array is malformed, or a pair is not
        exchange-eligible (its normal does not cross the first orthant).

    >>> import numpy as np
    >>> scores = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 1.0], [5.3, 1.0, 6.0]])
    >>> planes = hyperpolar_many(scores, np.array([[0, 1], [1, 2]]))
    >>> [plane.label for plane in planes]
    [(0, 1), (1, 2)]
    >>> planes[0] == hyperpolar(scores[0], scores[1], label=(0, 1))
    True
    """
    scores = np.asarray(scores, dtype=float)
    pairs = np.asarray(pairs, dtype=int)
    if scores.ndim != 2:
        raise GeometryError("hyperpolar_many expects an (n, d) score matrix")
    d = scores.shape[1]
    if d < 3:
        raise GeometryError("hyperpolar_many requires d >= 3; use exchange_angle_2d for d = 2")
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise GeometryError("hyperpolar_many expects an (m, 2) pair-index array")
    if pairs.shape[0] == 0:
        return []
    if labels is None:
        labels = [(int(i), int(j)) for i, j in pairs.tolist()]
    elif len(labels) != pairs.shape[0]:
        raise GeometryError("labels must match the number of pairs")

    first = scores[pairs[:, 0]]
    second = scores[pairs[:, 1]]
    normals = first - second
    if not np.all(np.any(normals > 0, axis=1) & np.any(normals < 0, axis=1)):
        raise GeometryError(
            "every pair must be exchange-eligible (neither item may dominate the other)"
        )
    coefficients, ok = _hyperpolar_first_attempt_batch(normals)

    hyperplanes: list[Hyperplane] = []
    for row, label in enumerate(labels):
        if ok[row]:
            hyperplanes.append(Hyperplane(tuple(coefficients[row]), label=label))
        else:
            hyperplanes.append(_hyperpolar_unchecked(first[row], second[row], label))
    return hyperplanes


def hyperplanes_for_dataset(
    dataset: Dataset,
    item_indices: np.ndarray | None = None,
    *,
    method: str = "batched",
    pair_chunk_size: int | None = None,
    max_hyperplanes: int | None = None,
) -> list[Hyperplane]:
    """Construct every exchange hyperplane of a dataset through one entry point.

    This is the preprocessing front door shared by the exact (``SATREGIONS``)
    and approximate (§5 grid) engines.  Pair eligibility always comes from the
    vectorised dominance kernel, enumerated in bounded-memory row blocks; the
    per-pair hyperplane construction is either the batched stacked-linear-
    algebra kernel (:func:`hyperpolar_many`, the default) or the scalar
    reference loop — both produce bit-identical hyperplanes, so the choice is
    purely a throughput knob.

    Parameters
    ----------
    dataset:
        Dataset with ``d >= 3`` scoring attributes.
    item_indices:
        Optional subset of item indices to restrict the construction to (used
        by the convex-layer optimisation); defaults to all items.
    method:
        ``"batched"`` (default) for the stacked kernel, ``"scalar"`` for the
        per-pair reference loop.
    pair_chunk_size:
        Rows per pair-enumeration block (see
        :func:`~repro.data.dominance.iter_exchange_pair_chunks`); defaults to
        an automatic bound that keeps the broadcast block near 64 MB.
    max_hyperplanes:
        Optional cap on the number of hyperplanes constructed.  The cap is
        honoured *inside* the chunked enumeration — construction stops as soon
        as the cap is reached, so a capped sweep never pays the full O(n²)
        construction cost — and yields exactly the first ``max_hyperplanes``
        hyperplanes of the uncapped enumeration order, identically for the
        scalar and batched paths.

    Returns
    -------
    list of Hyperplane
        One hyperplane per exchanging pair, labelled with the pair's original
        item indices, in the same order for both methods.

    >>> import numpy as np
    >>> from repro.data.dataset import Dataset
    >>> dataset = Dataset(
    ...     scores=np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 1.0], [5.3, 1.0, 6.0]]),
    ...     scoring_attributes=["x", "y", "z"],
    ... )
    >>> batched = hyperplanes_for_dataset(dataset)
    >>> scalar = hyperplanes_for_dataset(dataset, method="scalar")
    >>> batched == scalar
    True
    """
    if dataset.n_attributes < 3:
        raise GeometryError("hyperplanes_for_dataset requires d >= 3")
    if method not in HYPERPLANE_METHODS:
        raise GeometryError(
            f"unknown hyperplane construction method {method!r}; "
            f"expected one of {HYPERPLANE_METHODS}"
        )
    if max_hyperplanes is not None and max_hyperplanes < 0:
        raise GeometryError("max_hyperplanes must be non-negative")
    if max_hyperplanes == 0:
        return []
    if item_indices is None:
        indices = np.arange(dataset.n_items)
    else:
        indices = np.asarray(item_indices, dtype=int)
    scores = dataset.scores
    hyperplanes: list[Hyperplane] = []
    for position_pairs in iter_exchange_pair_chunks(
        scores[indices], row_chunk_size=pair_chunk_size
    ):
        if position_pairs.shape[0] == 0:
            continue
        if max_hyperplanes is not None:
            position_pairs = position_pairs[: max_hyperplanes - len(hyperplanes)]
        global_pairs = indices[position_pairs]
        # Per-chunk span around the stacked-SVD + batched-solve kernel (or
        # the scalar reference loop); no-op outside instrumented runs.
        with stage_span(
            "preprocess.hyperplane_chunk",
            method=method,
            n_pairs=int(global_pairs.shape[0]),
        ):
            if method == "batched":
                hyperplanes.extend(hyperpolar_many(scores, global_pairs))
            else:
                for i, j in global_pairs.tolist():
                    hyperplanes.append(
                        _hyperpolar_unchecked(scores[i], scores[j], label=(i, j))
                    )
        if max_hyperplanes is not None and len(hyperplanes) >= max_hyperplanes:
            break
    return hyperplanes


def build_exchange_angles_2d(dataset: Dataset) -> list[tuple[float, int, int]]:
    """Return all 2-D ordering exchanges of a dataset as ``(angle, i, j)`` triples.

    Dominated and identical pairs are skipped, exactly as in Algorithm 1
    lines 2–8.  The list is *not* sorted; the ray-sweep sorts it.

    Vectorised: pair eligibility comes from one dominance-matrix kernel and
    all angles from a single ``arctan2`` over the pairwise score differences —
    no per-pair Python calls.  Output is identical (bit-for-bit) to
    :func:`build_exchange_angles_2d_reference`.

    >>> import numpy as np
    >>> from repro.data.dataset import Dataset
    >>> dataset = Dataset(
    ...     scores=np.array([[1.0, 2.0], [2.0, 1.0]]), scoring_attributes=["x", "y"]
    ... )
    >>> build_exchange_angles_2d(dataset)
    [(0.7853981633974483, 0, 1)]
    """
    if dataset.n_attributes != 2:
        raise GeometryError("build_exchange_angles_2d requires a 2-attribute dataset")
    scores = dataset.scores
    pairs = exchange_pair_indices(scores)
    return exchange_angles_for_pairs(scores, pairs)


def exchange_angles_for_pairs(
    scores: np.ndarray, pairs: np.ndarray
) -> list[tuple[float, int, int]]:
    """The 2-D angle kernel of :func:`build_exchange_angles_2d` over explicit pairs.

    Elementwise, so running it over any subset of the eligible pairs (e.g. the
    pairs touching a dataset delta's changed items) yields triples bit-identical
    to the corresponding rows of the full construction — the property the
    incremental index maintenance of :mod:`repro.core.two_dim` relies on.
    ``pairs`` rows must be exchange-eligible ``(i, j)`` indices into ``scores``.
    """
    scores = np.asarray(scores, dtype=float)
    pairs = np.asarray(pairs, dtype=int)
    if pairs.shape[0] == 0:
        return []
    differences = scores[pairs[:, 0]] - scores[pairs[:, 1]]
    # Non-dominated 2-D pairs have dx, dy of strictly opposite signs; the
    # first-quadrant exchange direction is (|dy|, |dx|) (Eq. 2).
    angles = np.arctan2(np.abs(differences[:, 0]), np.abs(differences[:, 1]))
    return [
        (float(angle), int(i), int(j))
        for angle, i, j in zip(angles.tolist(), pairs[:, 0].tolist(), pairs[:, 1].tolist())
    ]


def build_exchange_angles_2d_reference(dataset: Dataset) -> list[tuple[float, int, int]]:
    """Scalar per-pair reference implementation of :func:`build_exchange_angles_2d`.

    Retained (not used on the hot path) so tests and benchmarks can verify the
    vectorised kernel produces exactly the same exchanges.
    """
    if dataset.n_attributes != 2:
        raise GeometryError("build_exchange_angles_2d requires a 2-attribute dataset")
    scores = dataset.scores
    exchanges: list[tuple[float, int, int]] = []
    n = dataset.n_items
    for i in range(n - 1):
        for j in range(i + 1, n):
            if not has_exchange(scores[i], scores[j]):
                continue
            exchanges.append((exchange_angle_2d(scores[i], scores[j]), i, j))
    return exchanges


def build_exchange_hyperplanes(
    dataset: Dataset, item_indices: np.ndarray | None = None
) -> list[Hyperplane]:
    """Construct the angle-space exchange hyperplanes of every non-dominated pair.

    A thin alias of :func:`hyperplanes_for_dataset` with the default batched
    method, kept for callers predating the unified entry point.

    Parameters
    ----------
    dataset:
        Dataset with ``d >= 3`` scoring attributes.
    item_indices:
        Optional subset of item indices to restrict the construction to (used
        by the convex-layer optimisation); defaults to all items.

    Returns
    -------
    list of Hyperplane
        One hyperplane per exchanging pair, labelled with the pair's original
        item indices.
    """
    return hyperplanes_for_dataset(dataset, item_indices, method="batched")


def build_exchange_hyperplanes_reference(
    dataset: Dataset, item_indices: np.ndarray | None = None
) -> list[Hyperplane]:
    """Scalar per-pair reference implementation of :func:`build_exchange_hyperplanes`.

    Retained so tests can verify the vectorised pair enumeration selects
    exactly the same pairs (and therefore the same hyperplanes).
    """
    if dataset.n_attributes < 3:
        raise GeometryError("build_exchange_hyperplanes requires d >= 3")
    if item_indices is None:
        indices = np.arange(dataset.n_items)
    else:
        indices = np.asarray(item_indices, dtype=int)
    scores = dataset.scores
    hyperplanes: list[Hyperplane] = []
    for position_i in range(indices.size - 1):
        i = int(indices[position_i])
        for position_j in range(position_i + 1, indices.size):
            j = int(indices[position_j])
            if not has_exchange(scores[i], scores[j]):
                continue
            hyperplanes.append(hyperpolar(scores[i], scores[j], label=(i, j)))
    return hyperplanes
