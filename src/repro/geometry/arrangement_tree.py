"""The arrangement tree (paper §4.2, Figure 10, Algorithms 5 and 9).

Inserting a hyperplane into a flat list of regions requires testing the
hyperplane against every region.  The *arrangement tree* stores the splits
hierarchically: every internal node carries one hyperplane, its left subtree
holds everything on the ``h⁻`` side and its right subtree everything on the
``h⁺`` side; the leaves are the regions of the arrangement.  When a new
hyperplane misses the region of an internal node, the whole subtree below it
is pruned from the search — the practical speed-up demonstrated in the paper's
Figure 18.

Each node keeps the :class:`~repro.geometry.hyperplane.Region` objects of its
two sides.  Because those objects persist across insertions, the feasibility
witnesses they cache make most of the hyperplane-vs-region tests a single
linear program (or none at all) instead of two.

Two insertion modes are provided:

* :meth:`ArrangementTree.insert` — the plain ``AT+`` of Algorithm 5;
* :meth:`ArrangementTree.insert_with_probe` — the ``ATC+`` of Algorithm 9,
  which evaluates a caller-supplied probe on every *newly created* leaf region
  and stops the whole insertion as soon as the probe returns a result (the
  early-stopping strategy used by ``MARKCELL``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import GeometryError, InfeasibleRegionError
from repro.geometry.hyperplane import Hyperplane, Region

__all__ = ["ArrangementTree", "ArrangementTreeNode"]

#: Probe callback: receives a freshly created leaf region, returns a result to
#: stop the insertion (any non-None value) or None to continue.
RegionProbe = Callable[[Region], object | None]


@dataclass
class ArrangementTreeNode:
    """One internal node of the arrangement tree: a hyperplane and its two sides.

    ``region`` is the convex region this node's hyperplane splits; the two side
    regions are materialised once and reused by every later insertion so their
    cached feasibility witnesses keep paying off.
    """

    hyperplane: Hyperplane
    region: Region
    left: "ArrangementTreeNode | None" = None
    right: "ArrangementTreeNode | None" = None
    left_region: Region = field(init=False)
    right_region: Region = field(init=False)

    def __post_init__(self) -> None:
        self.left_region, self.right_region = self.region.split(self.hyperplane)

    def sides(self) -> list[tuple[str, Region]]:
        """The two sides of this node as ``(attribute_name, region)`` pairs."""
        return [("left", self.left_region), ("right", self.right_region)]


@dataclass
class ArrangementTree:
    """Hierarchical index over the regions of an incrementally built arrangement.

    Parameters
    ----------
    dimension:
        Dimension of the angle space (``d - 1``).
    base_region:
        Region the whole arrangement lives in (a grid cell for ``MARKCELL``,
        or the full angle box).  Defaults to the whole angle box.
    """

    dimension: int
    base_region: Region | None = None
    root: ArrangementTreeNode | None = None
    n_hyperplanes: int = 0
    split_tests: int = field(default=0)

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise GeometryError("arrangement tree dimension must be >= 1")
        if self.base_region is None:
            self.base_region = Region.whole_space(self.dimension)
        if self.base_region.dimension != self.dimension:
            raise GeometryError("base region dimension mismatch")

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, hyperplane: Hyperplane) -> None:
        """Insert a hyperplane (Algorithm 5, ``AT+``)."""
        self._check_dimension(hyperplane)
        self.n_hyperplanes += 1
        if self.root is None:
            self.root = ArrangementTreeNode(hyperplane, self.base_region)
            return
        self._insert_recursive(self.root, hyperplane)

    def insert_with_probe(self, hyperplane: Hyperplane, probe: RegionProbe) -> object | None:
        """Insert a hyperplane, probing every new leaf region (Algorithm 9, ``ATC+``).

        Returns the first non-None value produced by ``probe`` (the insertion
        stops as soon as that happens), or None if the probe never fired.
        """
        self._check_dimension(hyperplane)
        self.n_hyperplanes += 1
        if self.root is None:
            self.root = ArrangementTreeNode(hyperplane, self.base_region)
            for region in (self.root.left_region, self.root.right_region):
                result = probe(region)
                if result is not None:
                    return result
            return None
        return self._insert_probe_recursive(self.root, hyperplane, probe)

    def _check_dimension(self, hyperplane: Hyperplane) -> None:
        if hyperplane.dimension != self.dimension:
            raise GeometryError("hyperplane dimension mismatch")

    def _insert_recursive(self, node: ArrangementTreeNode, hyperplane: Hyperplane) -> None:
        for side_name, side_region in node.sides():
            self.split_tests += 1
            if not side_region.intersects_hyperplane(hyperplane):
                continue
            child = getattr(node, side_name)
            if child is None:
                setattr(node, side_name, ArrangementTreeNode(hyperplane, side_region))
            else:
                self._insert_recursive(child, hyperplane)

    def _insert_probe_recursive(
        self,
        node: ArrangementTreeNode,
        hyperplane: Hyperplane,
        probe: RegionProbe,
    ) -> object | None:
        for side_name, side_region in node.sides():
            self.split_tests += 1
            if not side_region.intersects_hyperplane(hyperplane):
                continue
            child = getattr(node, side_name)
            if child is None:
                new_node = ArrangementTreeNode(hyperplane, side_region)
                setattr(node, side_name, new_node)
                for new_region in (new_node.left_region, new_node.right_region):
                    result = probe(new_region)
                    if result is not None:
                        return result
            else:
                result = self._insert_probe_recursive(child, hyperplane, probe)
                if result is not None:
                    return result
        return None

    # ------------------------------------------------------------------ #
    # region enumeration
    # ------------------------------------------------------------------ #
    def leaf_regions(self, skip_empty: bool = True) -> list[Region]:
        """Return the regions of the arrangement (the leaves of the tree)."""
        if self.root is None:
            return [self.base_region]
        regions = list(self._collect(self.root))
        if skip_empty:
            regions = [region for region in regions if not region.is_empty()]
        return regions

    def _collect(self, node: ArrangementTreeNode) -> Iterator[Region]:
        for side_name, side_region in node.sides():
            child = getattr(node, side_name)
            if child is None:
                yield side_region
            else:
                yield from self._collect(child)

    @property
    def n_regions(self) -> int:
        """Number of (possibly empty) leaves of the tree."""
        if self.root is None:
            return 1
        return self._count_leaves(self.root)

    def _count_leaves(self, node: ArrangementTreeNode) -> int:
        total = 0
        for child in (node.left, node.right):
            total += 1 if child is None else self._count_leaves(child)
        return total

    # ------------------------------------------------------------------ #
    # point location
    # ------------------------------------------------------------------ #
    def locate(self, point: np.ndarray) -> Region:
        """Return the leaf region containing ``point`` (ties resolved to the ``h⁻`` side)."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise GeometryError("point dimension mismatch")
        node = self.root
        region = self.base_region
        while node is not None:
            if node.hyperplane.evaluate(point) <= 0.0:
                region = node.left_region
                node = node.left
            else:
                region = node.right_region
                node = node.right
        return region
