"""Partitioning of the angle coordinate space into cells (paper §5, Appendix A.2).

The approximation pipeline of §5 divides the ``(d-1)``-dimensional angle box
``[0, π/2]^{d-1}`` into ``N`` cells, assigns a satisfactory function to each
cell during preprocessing, and answers online queries by locating the query's
cell.  The paper's guarantee (Theorem 6) only needs the *angular diameter* of
every cell — the largest angle between two ranking functions that fall in the
same cell — to be bounded by a user-controllable value.

Two interchangeable partitions are provided:

* :class:`UniformGridPartition` — an equal-width grid in angle coordinates.
  Simple, constant-time cell location and neighbour enumeration; this is the
  default backend of the approximation pipeline.
* :class:`AnglePartition` — the paper's adaptive, (approximately) equal-area
  partitioning (Algorithm 12): the width of a cell along axis ``i`` grows as
  the prefix angles approach the pole where that axis sweeps a smaller circle,
  so every cell has (approximately) the same surface area on the unit sphere
  and the same angular-diameter bound ``γ`` per axis.

Both expose the same protocol: ``cells``, ``locate``, ``neighbors``,
``cell_center`` and ``max_cell_diameter``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Protocol

import numpy as np

from repro.exceptions import ConfigurationError, GeometryError
from repro.geometry.angles import HALF_PI

__all__ = [
    "Cell",
    "AnglePartitionProtocol",
    "UniformGridPartition",
    "AnglePartition",
    "cell_gamma",
    "theorem6_bound",
    "locate_cells",
]


def cell_gamma(n_cells: int, d: int) -> float:
    """Per-axis angular width ``γ`` for an equal-area partition into ``n_cells`` (Eq. 14).

    ``d`` is the number of scoring attributes (so the angle space has ``d-1``
    dimensions).  The value is clamped to ``π/2`` because a single cell cannot
    be wider than the whole axis.
    """
    if n_cells < 1:
        raise ConfigurationError("n_cells must be >= 1")
    if d < 2:
        raise ConfigurationError("d must be >= 2")
    area = (math.pi ** (d / 2.0)) / (n_cells * (2.0 ** (d - 1)) * math.gamma(d / 2.0))
    side = area ** (1.0 / (d - 1))
    gamma = 2.0 * math.asin(min(1.0, side / 2.0))
    return min(gamma, HALF_PI)


def theorem6_bound(n_cells: int, d: int) -> float:
    """Worst-case extra angular distance of the grid approximation (Theorem 6).

    The function returned by ``MDONLINE`` is within ``θ_opt + theorem6_bound``
    of the query, where ``θ_opt`` is the distance to the true closest
    satisfactory function.
    """
    if n_cells < 1:
        raise ConfigurationError("n_cells must be >= 1")
    if d < 2:
        raise ConfigurationError("d must be >= 2")
    area = (math.pi ** (d / 2.0)) / (n_cells * (2.0 ** (d - 1)) * math.gamma(d / 2.0))
    side = area ** (1.0 / (d - 1))
    argument = min(1.0, (math.sqrt(d - 1) / 2.0) * side)
    return 4.0 * math.asin(argument)


@dataclass(frozen=True)
class Cell:
    """One cell of a partition: an axis-aligned box in angle coordinates."""

    index: int
    low: tuple[float, ...]
    high: tuple[float, ...]

    @property
    def dimension(self) -> int:
        return len(self.low)

    def center(self) -> np.ndarray:
        """Midpoint of the cell box."""
        return (np.asarray(self.low) + np.asarray(self.high)) / 2.0

    def contains(self, angles: np.ndarray, tolerance: float = 1e-12) -> bool:
        """Return True if the angle vector lies in the (closed) cell box."""
        angles = np.asarray(angles, dtype=float)
        return bool(
            np.all(angles >= np.asarray(self.low) - tolerance)
            and np.all(angles <= np.asarray(self.high) + tolerance)
        )

    def coordinate_extents(self) -> np.ndarray:
        """Per-axis widths of the cell box."""
        return np.asarray(self.high) - np.asarray(self.low)


class AnglePartitionProtocol(Protocol):
    """Common interface of the partition backends used by the approximation pipeline."""

    dimension: int

    @property
    def n_cells(self) -> int: ...

    def cells(self) -> list[Cell]: ...

    def locate(self, angles: np.ndarray) -> int: ...

    def neighbors(self, index: int) -> list[int]: ...

    def max_cell_diameter(self) -> float: ...


class UniformGridPartition:
    """Equal-width grid over the angle box.

    Parameters
    ----------
    dimension:
        Dimension of the angle space (``d - 1``), at least 1.
    n_cells:
        Target total number of cells; the per-axis division count is
        ``ceil(n_cells ** (1 / dimension))`` so the actual number of cells is
        the smallest power of the division count that reaches the target.
    """

    def __init__(self, dimension: int, n_cells: int) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        if n_cells < 1:
            raise ConfigurationError("n_cells must be >= 1")
        self.dimension = dimension
        self.divisions = max(1, math.ceil(n_cells ** (1.0 / dimension) - 1e-9))
        self.step = HALF_PI / self.divisions
        self._cells: list[Cell] | None = None

    @property
    def n_cells(self) -> int:
        """Actual number of cells in the grid."""
        return self.divisions**self.dimension

    def _multi_index(self, flat_index: int) -> tuple[int, ...]:
        if not 0 <= flat_index < self.n_cells:
            raise GeometryError(f"cell index {flat_index} out of range")
        indices = []
        remainder = flat_index
        for _ in range(self.dimension):
            indices.append(remainder % self.divisions)
            remainder //= self.divisions
        return tuple(indices)

    def _flat_index(self, multi_index: Iterable[int]) -> int:
        flat = 0
        for axis, value in reversed(list(enumerate(multi_index))):
            if not 0 <= value < self.divisions:
                raise GeometryError("multi-index component out of range")
            flat = flat * self.divisions + value
        return flat

    def cells(self) -> list[Cell]:
        """All cells, indexed consistently with :meth:`locate`."""
        if self._cells is None:
            cells = []
            for flat_index in range(self.n_cells):
                multi = self._multi_index(flat_index)
                low = tuple(i * self.step for i in multi)
                high = tuple(min(HALF_PI, (i + 1) * self.step) for i in multi)
                cells.append(Cell(flat_index, low, high))
            self._cells = cells
        return self._cells

    def cell(self, index: int) -> Cell:
        """Return one cell by index."""
        return self.cells()[index]

    def locate(self, angles: np.ndarray) -> int:
        """Return the index of the cell containing the angle vector."""
        angles = np.asarray(angles, dtype=float)
        if angles.shape != (self.dimension,):
            raise GeometryError("angle vector dimension mismatch")
        if np.any(angles < -1e-9) or np.any(angles > HALF_PI + 1e-9):
            raise GeometryError("angle vector outside the legal box [0, π/2]^k")
        multi = tuple(
            min(self.divisions - 1, int(np.clip(value, 0.0, HALF_PI) / self.step))
            for value in angles
        )
        return self._flat_index(multi)

    def locate_many(self, angle_matrix: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`locate` for a ``(q, dimension)`` matrix of angle vectors.

        Row ``i`` of the result equals ``locate(angle_matrix[i])`` exactly:
        the per-axis clip/divide/truncate and the flat-index accumulation are
        the same integer arithmetic, evaluated for the whole batch at once.
        """
        matrix = np.asarray(angle_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dimension:
            raise GeometryError("locate_many expects a (q, dimension) angle matrix")
        if np.any(matrix < -1e-9) or np.any(matrix > HALF_PI + 1e-9):
            raise GeometryError("angle vector outside the legal box [0, π/2]^k")
        multi = np.minimum(
            self.divisions - 1,
            (np.clip(matrix, 0.0, HALF_PI) / self.step).astype(np.int64),
        )
        strides = self.divisions ** np.arange(self.dimension, dtype=np.int64)
        return multi @ strides

    def neighbors(self, index: int) -> list[int]:
        """Indices of cells adjacent along any axis (face neighbours)."""
        multi = self._multi_index(index)
        result = []
        for axis in range(self.dimension):
            for delta in (-1, 1):
                value = multi[axis] + delta
                if 0 <= value < self.divisions:
                    moved = list(multi)
                    moved[axis] = value
                    result.append(self._flat_index(moved))
        return result

    def max_cell_diameter(self) -> float:
        """Upper bound on the angular distance between two rays in the same cell.

        Changing one angle coordinate by ``δ`` moves the unit direction along a
        circle of radius at most 1, so the geodesic displacement is at most
        ``δ``; summing over axes bounds the diameter by ``dimension * step``.
        """
        return self.dimension * self.step


class _PartitionNode:
    """Internal node of the adaptive partition tree: sorted boundaries + children."""

    __slots__ = ("boundaries", "children")

    def __init__(self, boundaries: list[float], children: list) -> None:
        self.boundaries = boundaries
        self.children = children  # list of _PartitionNode or of cell indices (at leaves)


class AnglePartition:
    """Adaptive equal-area partitioning of the angle space (Algorithm 12).

    The axis-``i`` width of a cell is ``γ / ρ`` where ``ρ`` is the radius of the
    circle swept by axis ``i`` given the cell's prefix angles (``Π sin θ_l`` at
    the prefix upper corner), so that the arc length of every cell edge — and
    hence the per-axis contribution to the angular diameter — stays below the
    target ``γ`` of Eq. 14.  Cells near the pole therefore get wider coordinate
    ranges, mirroring the paper's equal-area construction.

    Parameters
    ----------
    dimension:
        Dimension of the angle space (``d - 1``).
    n_cells:
        Target cell count used to derive ``γ``; the realised count is close to
        but not exactly ``n_cells`` (as in the paper).
    """

    _MIN_RADIUS = 1e-3

    def __init__(self, dimension: int, n_cells: int) -> None:
        if dimension < 1:
            raise ConfigurationError("dimension must be >= 1")
        if n_cells < 1:
            raise ConfigurationError("n_cells must be >= 1")
        self.dimension = dimension
        self.target_cells = n_cells
        self.gamma = cell_gamma(n_cells, dimension + 1)
        self._cells: list[Cell] = []
        self._root = self._build(prefix_high=(), level=0, prefix_low=())
        self._neighbor_cache: dict[int, list[int]] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _axis_step(self, prefix_high: tuple[float, ...]) -> float:
        radius = 1.0
        for angle in prefix_high:
            radius *= math.sin(angle)
        radius = max(radius, self._MIN_RADIUS)
        return min(HALF_PI, self.gamma / radius)

    def _build(
        self, prefix_low: tuple[float, ...], prefix_high: tuple[float, ...], level: int
    ) -> _PartitionNode:
        step = self._axis_step(prefix_high)
        boundaries = [0.0]
        while boundaries[-1] < HALF_PI - 1e-12:
            boundaries.append(min(HALF_PI, boundaries[-1] + step))
        children: list = []
        for low, high in zip(boundaries[:-1], boundaries[1:]):
            if level == self.dimension - 1:
                index = len(self._cells)
                self._cells.append(
                    Cell(index, prefix_low + (low,), prefix_high + (high,))
                )
                children.append(index)
            else:
                children.append(
                    self._build(prefix_low + (low,), prefix_high + (high,), level + 1)
                )
        return _PartitionNode(boundaries, children)

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #
    @property
    def n_cells(self) -> int:
        """Realised number of cells."""
        return len(self._cells)

    def cells(self) -> list[Cell]:
        """All cells in creation order (consistent with :meth:`locate`)."""
        return list(self._cells)

    def cell(self, index: int) -> Cell:
        """Return one cell by index."""
        if not 0 <= index < self.n_cells:
            raise GeometryError(f"cell index {index} out of range")
        return self._cells[index]

    def locate(self, angles: np.ndarray) -> int:
        """Find the cell containing ``angles`` by binary search level by level."""
        angles = np.asarray(angles, dtype=float)
        if angles.shape != (self.dimension,):
            raise GeometryError("angle vector dimension mismatch")
        if np.any(angles < -1e-9) or np.any(angles > HALF_PI + 1e-9):
            raise GeometryError("angle vector outside the legal box [0, π/2]^k")
        node: _PartitionNode | int = self._root
        for level in range(self.dimension):
            if not isinstance(node, _PartitionNode):
                raise GeometryError(
                    f"partition tree truncated at level {level}: expected an "
                    "internal node, found a leaf (corrupted construction)"
                )
            value = float(np.clip(angles[level], 0.0, HALF_PI))
            position = int(np.searchsorted(node.boundaries, value, side="right")) - 1
            position = min(max(position, 0), len(node.children) - 1)
            node = node.children[position]
        if not isinstance(node, int):
            raise GeometryError(
                f"partition tree deeper than its dimension {self.dimension}: "
                "descent ended on an internal node (corrupted construction)"
            )
        return node

    def neighbors(self, index: int) -> list[int]:
        """Cells whose boxes touch the given cell's box (computed once, then cached)."""
        if self._neighbor_cache is None:
            self._neighbor_cache = self._build_neighbor_cache()
        return self._neighbor_cache.get(index, [])

    def _build_neighbor_cache(self) -> dict[int, list[int]]:
        lows = np.asarray([cell.low for cell in self._cells])
        highs = np.asarray([cell.high for cell in self._cells])
        cache: dict[int, list[int]] = {index: [] for index in range(self.n_cells)}
        tolerance = 1e-9
        for index in range(self.n_cells):
            touching = np.all(
                (lows[index] <= highs + tolerance) & (lows <= highs[index] + tolerance), axis=1
            )
            touching[index] = False
            cache[index] = np.flatnonzero(touching).tolist()
        return cache

    def max_cell_diameter(self) -> float:
        """Angular diameter bound: each axis contributes at most ``γ`` of arc."""
        return self.dimension * self.gamma


def locate_cells(partition: AnglePartitionProtocol, angle_matrix: np.ndarray) -> np.ndarray:
    """Locate every row of a ``(q, dimension)`` angle matrix in one call.

    Uses the partition's vectorised ``locate_many`` when it has one (the
    uniform grid), and falls back to a per-row :meth:`locate` loop otherwise —
    either way row ``i`` equals ``partition.locate(angle_matrix[i])``.
    """
    locate_many = getattr(partition, "locate_many", None)
    if locate_many is not None:
        return np.asarray(locate_many(angle_matrix))
    matrix = np.asarray(angle_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] != partition.dimension:
        raise GeometryError("locate_cells expects a (q, dimension) angle matrix")
    return np.array([partition.locate(row) for row in matrix], dtype=np.int64)
