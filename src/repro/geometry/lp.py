"""Linear-programming helpers built on :func:`scipy.optimize.linprog`.

The arrangement algorithms of the paper (§4–5) repeatedly ask two questions
about a convex region described by linear inequalities over the angle
coordinates:

* *is the region non-empty*, i.e. does a point satisfying all constraints
  exist (used when inserting a hyperplane into the arrangement and when
  checking whether a hyperplane passes through a sub-tree / cell), and
* *give me a point inside the region*, used as the representative function
  whose ordering is handed to the fairness oracle.

Both are answered here.  Regions in the paper are open (they exclude their
bounding hyperplanes), so the feasibility routine supports a small interior
margin and the representative-point routine returns the Chebyshev centre,
the point deepest inside the region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import GeometryError, InfeasibleRegionError

__all__ = ["LPResult", "feasible_point", "chebyshev_center", "is_feasible"]


@dataclass(frozen=True)
class LPResult:
    """Outcome of a feasibility / centring linear program."""

    feasible: bool
    point: np.ndarray | None
    margin: float = 0.0


def _validate_system(
    a_ub: np.ndarray | None, b_ub: np.ndarray | None, bounds: list[tuple[float, float]]
) -> tuple[np.ndarray, np.ndarray, int]:
    if not bounds:
        raise GeometryError("bounds must describe at least one variable")
    dimension = len(bounds)
    if a_ub is None or len(a_ub) == 0:
        a_matrix = np.zeros((0, dimension), dtype=float)
        b_vector = np.zeros(0, dtype=float)
    else:
        a_matrix = np.asarray(a_ub, dtype=float)
        b_vector = np.asarray(b_ub, dtype=float)
        if a_matrix.ndim != 2 or a_matrix.shape[1] != dimension:
            raise GeometryError(
                f"constraint matrix has shape {a_matrix.shape}, expected (*, {dimension})"
            )
        if b_vector.shape != (a_matrix.shape[0],):
            raise GeometryError("right-hand side length must match the number of constraints")
    for low, high in bounds:
        if low > high:
            raise GeometryError(f"invalid bound ({low}, {high})")
    return a_matrix, b_vector, dimension


def is_feasible(
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    bounds: list[tuple[float, float]],
    margin: float = 0.0,
) -> bool:
    """Return True if ``A x <= b - margin`` has a solution within ``bounds``."""
    return feasible_point(a_ub, b_ub, bounds, margin=margin).feasible


def feasible_point(
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    bounds: list[tuple[float, float]],
    margin: float = 0.0,
) -> LPResult:
    """Find any point satisfying ``A x <= b - margin`` within box ``bounds``.

    Parameters
    ----------
    a_ub, b_ub:
        Inequality system ``A x <= b``; ``None`` means no linear constraints.
    bounds:
        Per-variable ``(low, high)`` box.
    margin:
        Require constraints to hold with this slack, which turns open regions
        of the arrangement into closed ones with a strictly interior witness.

    Returns
    -------
    LPResult
        ``feasible`` flag and the witness point (``None`` if infeasible).
    """
    a_matrix, b_vector, dimension = _validate_system(a_ub, b_ub, bounds)
    if margin < 0:
        raise GeometryError("margin must be non-negative")
    result = linprog(
        c=np.zeros(dimension),
        A_ub=a_matrix if a_matrix.size else None,
        b_ub=(b_vector - margin) if a_matrix.size else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return LPResult(feasible=False, point=None)
    return LPResult(feasible=True, point=np.asarray(result.x, dtype=float), margin=margin)


def chebyshev_center(
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    bounds: list[tuple[float, float]],
) -> LPResult:
    """Return the Chebyshev centre of ``{x : A x <= b, low <= x <= high}``.

    The Chebyshev centre maximises the radius of a ball contained in the
    region, so it is the most robust interior representative to hand to the
    fairness oracle: a tiny numerical perturbation cannot push it across a
    bounding hyperplane into a neighbouring region with a different ordering.

    Raises
    ------
    InfeasibleRegionError
        If the region is empty (no feasible point at all).
    """
    a_matrix, b_vector, dimension = _validate_system(a_ub, b_ub, bounds)
    # Augment with the box constraints so the inscribed ball respects them too.
    box_rows = []
    box_rhs = []
    for index, (low, high) in enumerate(bounds):
        row = np.zeros(dimension)
        row[index] = 1.0
        box_rows.append(row.copy())
        box_rhs.append(high)
        row_neg = np.zeros(dimension)
        row_neg[index] = -1.0
        box_rows.append(row_neg)
        box_rhs.append(-low)
    full_a = np.vstack([a_matrix, np.asarray(box_rows)]) if a_matrix.size else np.asarray(box_rows)
    full_b = (
        np.concatenate([b_vector, np.asarray(box_rhs)]) if a_matrix.size else np.asarray(box_rhs)
    )
    norms = np.linalg.norm(full_a, axis=1)
    # Degenerate all-zero rows (possible if a hyperplane has zero coefficients)
    # contribute nothing to the geometry; drop them to keep the LP well posed.
    keep = norms > 0
    full_a = full_a[keep]
    full_b = full_b[keep]
    norms = norms[keep]
    if full_a.shape[0] == 0:
        raise GeometryError("chebyshev_center requires at least one constraint")
    # Variables: (x, radius).  Maximise radius subject to A x + ||a_i|| r <= b.
    objective = np.zeros(dimension + 1)
    objective[-1] = -1.0
    augmented = np.hstack([full_a, norms[:, None]])
    lp_bounds = [(None, None)] * dimension + [(0.0, None)]
    result = linprog(
        c=objective, A_ub=augmented, b_ub=full_b, bounds=lp_bounds, method="highs"
    )
    if not result.success:
        raise InfeasibleRegionError("region has no interior point (empty or degenerate)")
    point = np.asarray(result.x[:dimension], dtype=float)
    radius = float(result.x[-1])
    if radius <= 0.0:
        # The region is non-empty but has an empty interior (lower dimensional).
        # Fall back to any feasible point so callers can still evaluate it.
        fallback = feasible_point(a_matrix if a_matrix.size else None, b_vector, bounds)
        if not fallback.feasible:
            raise InfeasibleRegionError("region is empty")
        return LPResult(feasible=True, point=fallback.point, margin=0.0)
    return LPResult(feasible=True, point=point, margin=radius)
