"""Hyperplanes, half-spaces and convex regions in the angle coordinate system.

Following the paper (§4.2), every ordering exchange is represented as a
hyperplane of the form :math:`\\sum_k h[k]\\,θ_k = 1` in the ``(d-1)``-dimensional
angle coordinate system.  The half-space :math:`\\sum h[k] θ_k \\le 1` is written
``h⁻`` and :math:`\\sum h[k] θ_k \\ge 1` is ``h⁺``; a convex region of the
arrangement is a conjunction of such half-spaces (Eq. 6), always intersected
with the legal angle box ``[0, π/2]^{d-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GeometryError, InfeasibleRegionError
from repro.geometry.angles import HALF_PI
from repro.geometry.lp import chebyshev_center, feasible_point

__all__ = ["Hyperplane", "HalfSpace", "Region", "angle_box_bounds"]

#: Default slack used when testing sidedness; absorbs LP and float round-off.
_SIDE_TOLERANCE = 1e-12


def angle_box_bounds(dimension: int) -> list[tuple[float, float]]:
    """Bounds of the legal angle box ``[0, π/2]^dimension``."""
    if dimension < 1:
        raise GeometryError("angle box needs at least one dimension")
    return [(0.0, HALF_PI)] * dimension


@dataclass(frozen=True)
class Hyperplane:
    """A hyperplane ``coefficients · θ = 1`` in angle space.

    Attributes
    ----------
    coefficients:
        Length ``d-1`` coefficient vector ``h``.
    label:
        Optional identifier, typically the item pair ``(i, j)`` whose ordering
        exchange this hyperplane represents.
    """

    coefficients: tuple[float, ...]
    label: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        coefficients = tuple(float(value) for value in self.coefficients)
        if len(coefficients) < 1:
            raise GeometryError("a hyperplane needs at least one coefficient")
        if not all(np.isfinite(coefficients)):
            raise GeometryError("hyperplane coefficients must be finite")
        if all(value == 0.0 for value in coefficients):
            raise GeometryError("hyperplane coefficients cannot all be zero")
        object.__setattr__(self, "coefficients", coefficients)

    @property
    def dimension(self) -> int:
        """Dimension of the ambient angle space (``d - 1``)."""
        return len(self.coefficients)

    def as_array(self) -> np.ndarray:
        """Coefficient vector as a numpy array."""
        return np.asarray(self.coefficients, dtype=float)

    def evaluate(self, point: np.ndarray) -> float:
        """Return ``h · point - 1`` (negative on the ``h⁻`` side)."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise GeometryError(
                f"point of dimension {point.shape} does not match hyperplane of dimension "
                f"{self.dimension}"
            )
        return float(np.dot(self.as_array(), point) - 1.0)

    def side(self, point: np.ndarray, tolerance: float = _SIDE_TOLERANCE) -> int:
        """Return -1, 0 or +1 for the side of ``point`` relative to the hyperplane."""
        value = self.evaluate(point)
        if value > tolerance:
            return 1
        if value < -tolerance:
            return -1
        return 0

    def negative(self) -> "HalfSpace":
        """The closed half-space ``h · θ <= 1`` (written ``h⁻`` in the paper)."""
        return HalfSpace(self, -1)

    def positive(self) -> "HalfSpace":
        """The closed half-space ``h · θ >= 1`` (written ``h⁺`` in the paper)."""
        return HalfSpace(self, +1)

    def crosses_box(self, low: np.ndarray, high: np.ndarray) -> bool:
        """Return True if the hyperplane intersects the axis-aligned box [low, high].

        This is the §5.1 test used by ``CELLPLANE×``: evaluate ``h · θ`` at the
        box corners minimising and maximising the linear form (picking the low
        or high coordinate per sign of the coefficient) and check that 1 lies
        between them.
        """
        low = np.asarray(low, dtype=float)
        high = np.asarray(high, dtype=float)
        if low.shape != (self.dimension,) or high.shape != (self.dimension,):
            raise GeometryError("box corners must match the hyperplane dimension")
        if np.any(low > high):
            raise GeometryError("box low corner must not exceed high corner")
        coefficients = self.as_array()
        minimum = float(np.sum(np.where(coefficients >= 0, coefficients * low, coefficients * high)))
        maximum = float(np.sum(np.where(coefficients >= 0, coefficients * high, coefficients * low)))
        return minimum <= 1.0 <= maximum


@dataclass(frozen=True)
class HalfSpace:
    """One side of a hyperplane: ``sign=-1`` is ``h · θ <= 1``, ``sign=+1`` is ``h · θ >= 1``."""

    hyperplane: Hyperplane
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (-1, 1):
            raise GeometryError("half-space sign must be -1 or +1")

    def contains(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Return True if ``point`` lies in the (closed) half-space."""
        value = self.hyperplane.evaluate(point)
        return value <= tolerance if self.sign < 0 else value >= -tolerance

    def as_inequality(self) -> tuple[np.ndarray, float]:
        """Return ``(a, b)`` such that the half-space is ``a · θ <= b``."""
        coefficients = self.hyperplane.as_array()
        if self.sign < 0:
            return coefficients, 1.0
        return -coefficients, -1.0

    def flipped(self) -> "HalfSpace":
        """The opposite side of the same hyperplane."""
        return HalfSpace(self.hyperplane, -self.sign)


@dataclass
class Region:
    """A convex region of the arrangement: an intersection of half-spaces.

    Every region is implicitly intersected with the legal angle box
    ``[0, π/2]^{d-1}``.  The class caches an interior representative point the
    first time one is requested, because the arrangement algorithms evaluate
    the fairness oracle exactly once per region at such a point.
    """

    dimension: int
    half_spaces: list[HalfSpace] = field(default_factory=list)
    _cached_interior: np.ndarray | None = field(default=None, repr=False, compare=False)
    _witness: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise GeometryError("a region needs a positive dimension")
        for half_space in self.half_spaces:
            if half_space.hyperplane.dimension != self.dimension:
                raise GeometryError("all half-spaces must live in the region's dimension")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def with_half_space(self, half_space: HalfSpace) -> "Region":
        """Return a new region further constrained by ``half_space``."""
        if half_space.hyperplane.dimension != self.dimension:
            raise GeometryError("half-space dimension mismatch")
        return Region(self.dimension, [*self.half_spaces, half_space])

    @classmethod
    def whole_space(cls, dimension: int) -> "Region":
        """The unconstrained region (the whole legal angle box)."""
        return cls(dimension, [])

    # ------------------------------------------------------------------ #
    # linear system view
    # ------------------------------------------------------------------ #
    def inequality_system(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(A, b)`` so that the region is ``{θ : A θ <= b}`` within the box."""
        if not self.half_spaces:
            return np.zeros((0, self.dimension)), np.zeros(0)
        rows = []
        rhs = []
        for half_space in self.half_spaces:
            a, b = half_space.as_inequality()
            rows.append(a)
            rhs.append(b)
        return np.asarray(rows, dtype=float), np.asarray(rhs, dtype=float)

    def bounds(self) -> list[tuple[float, float]]:
        """The legal angle box bounds for this region's dimension."""
        return angle_box_bounds(self.dimension)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def contains(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Return True if ``point`` lies in the region (and the angle box)."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise GeometryError("point dimension mismatch")
        if np.any(point < -tolerance) or np.any(point > HALF_PI + tolerance):
            return False
        return all(half_space.contains(point, tolerance) for half_space in self.half_spaces)

    def is_empty(self, margin: float = 0.0) -> bool:
        """Return True if no point of the angle box satisfies every half-space."""
        a_matrix, b_vector = self.inequality_system()
        return not feasible_point(a_matrix, b_vector, self.bounds(), margin=margin).feasible

    def intersects_hyperplane(self, hyperplane: Hyperplane, margin: float = 1e-12) -> bool:
        """Return True if ``hyperplane`` passes through the region (Eq. 6 LP test).

        A hyperplane splits the region iff both of its closed half-spaces have
        a non-empty intersection with the region: requiring both sides to be
        reachable avoids "splitting" a region the hyperplane merely touches.

        When an interior point of the region is already cached, the side it
        falls on is known to be reachable for free, so only the opposite side
        needs a feasibility LP — this halves the number of LPs solved during
        arrangement construction.
        """
        if hyperplane.dimension != self.dimension:
            raise GeometryError("hyperplane dimension mismatch")
        a_matrix, b_vector = self.inequality_system()
        sides = [hyperplane.negative(), hyperplane.positive()]
        certificate = self._cached_interior if self._cached_interior is not None else self._witness
        if certificate is not None:
            value = hyperplane.evaluate(certificate)
            if abs(value) > 1e-9:
                # The known feasible point certifies its own side; test only the other.
                sides = [hyperplane.positive() if value < 0 else hyperplane.negative()]
        for side in sides:
            a_extra, b_extra = side.as_inequality()
            a_full = np.vstack([a_matrix, a_extra]) if a_matrix.size else a_extra[None, :]
            b_full = (
                np.concatenate([b_vector, [b_extra]]) if a_matrix.size else np.asarray([b_extra])
            )
            result = feasible_point(a_full, b_full, self.bounds(), margin=margin)
            if not result.feasible:
                return False
            if self._witness is None and result.point is not None:
                # Any feasible point of (region ∧ side) also lies in the region;
                # remember it to certify sides of future hyperplanes for free.
                self._witness = result.point
        return True

    def interior_point(self) -> np.ndarray:
        """Return a point well inside the region (Chebyshev centre).

        Raises
        ------
        InfeasibleRegionError
            If the region is empty.
        """
        if self._cached_interior is not None:
            return self._cached_interior
        a_matrix, b_vector = self.inequality_system()
        if a_matrix.size == 0:
            centre = np.full(self.dimension, HALF_PI / 2.0)
            self._cached_interior = centre
            return centre
        result = chebyshev_center(a_matrix, b_vector, self.bounds())
        if not result.feasible or result.point is None:
            raise InfeasibleRegionError("region has no interior point")
        point = np.clip(result.point, 0.0, HALF_PI)
        self._cached_interior = point
        if self._witness is None:
            self._witness = point
        return point

    def split(self, hyperplane: Hyperplane) -> tuple["Region", "Region"]:
        """Split the region by a hyperplane into its ``h⁻`` and ``h⁺`` parts."""
        return self.with_half_space(hyperplane.negative()), self.with_half_space(
            hyperplane.positive()
        )

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def defining_hyperplanes(self) -> list[Hyperplane]:
        """The hyperplanes whose half-spaces define this region (with repeats removed)."""
        seen: list[Hyperplane] = []
        for half_space in self.half_spaces:
            if half_space.hyperplane not in seen:
                seen.append(half_space.hyperplane)
        return seen

    def __len__(self) -> int:
        return len(self.half_spaces)


def region_from_signs(
    hyperplanes: Sequence[Hyperplane], signs: Iterable[int], dimension: int
) -> Region:
    """Build a region from parallel lists of hyperplanes and side signs."""
    region = Region.whole_space(dimension)
    for hyperplane, sign in zip(hyperplanes, signs):
        half_space = hyperplane.negative() if sign < 0 else hyperplane.positive()
        region = region.with_half_space(half_space)
    return region
