"""Incremental construction of the arrangement of hyperplanes.

The satisfactory regions of §4.2 are unions of cells of the *arrangement* of
the ordering-exchange hyperplanes in angle space: inside one cell of the
arrangement no pair of items swaps, so the induced ordering — and therefore
the fairness-oracle verdict — is constant.

:class:`Arrangement` implements the incremental algorithm at the core of
``SATREGIONS`` (Algorithm 4, lines 9–19): hyperplanes are inserted one at a
time; each insertion scans the current regions, and every region the new
hyperplane passes through is split into its ``h⁻`` and ``h⁺`` parts.  The
companion :class:`~repro.geometry.arrangement_tree.ArrangementTree` provides
the hierarchical pruning variant (Algorithm 5) that avoids the full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import GeometryError
from repro.geometry.hyperplane import Hyperplane, Region

__all__ = ["Arrangement"]


@dataclass
class Arrangement:
    """The set of convex regions induced by a growing set of hyperplanes.

    Parameters
    ----------
    dimension:
        Dimension of the ambient angle space (``d - 1``).
    base_region:
        Optional region to restrict the arrangement to (used by ``MARKCELL``
        to build per-cell arrangements); defaults to the whole angle box.
    """

    dimension: int
    base_region: Region | None = None
    regions: list[Region] = field(default_factory=list)
    hyperplanes: list[Hyperplane] = field(default_factory=list)
    split_tests: int = 0

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise GeometryError("arrangement dimension must be >= 1")
        if self.base_region is None:
            self.base_region = Region.whole_space(self.dimension)
        if self.base_region.dimension != self.dimension:
            raise GeometryError("base region dimension mismatch")
        if not self.regions:
            self.regions = [self.base_region]

    @property
    def n_regions(self) -> int:
        """Number of regions currently in the arrangement."""
        return len(self.regions)

    @property
    def n_hyperplanes(self) -> int:
        """Number of hyperplanes inserted so far."""
        return len(self.hyperplanes)

    def insert(self, hyperplane: Hyperplane) -> int:
        """Insert one hyperplane, splitting every region it passes through.

        Returns
        -------
        int
            The number of regions that were split by this insertion.
        """
        if hyperplane.dimension != self.dimension:
            raise GeometryError("hyperplane dimension mismatch")
        new_regions: list[Region] = []
        splits = 0
        for region in self.regions:
            self.split_tests += 1
            if region.intersects_hyperplane(hyperplane):
                below, above = region.split(hyperplane)
                new_regions.append(below)
                new_regions.append(above)
                splits += 1
            else:
                new_regions.append(region)
        self.regions = new_regions
        self.hyperplanes.append(hyperplane)
        return splits

    def insert_all(self, hyperplanes: Iterable[Hyperplane]) -> None:
        """Insert a sequence of hyperplanes in order."""
        for hyperplane in hyperplanes:
            self.insert(hyperplane)

    def non_empty_regions(self) -> list[Region]:
        """Return the regions that have a non-empty interior.

        Splitting keeps both sides even when one of them is a sliver clipped
        away by the angle box, so a final filter is occasionally useful before
        evaluating the oracle on representatives.
        """
        kept: list[Region] = []
        for region in self.regions:
            if not region.is_empty():
                kept.append(region)
        return kept

    @classmethod
    def build(
        cls,
        hyperplanes: Sequence[Hyperplane],
        dimension: int,
        base_region: Region | None = None,
    ) -> "Arrangement":
        """Construct the arrangement of ``hyperplanes`` from scratch."""
        arrangement = cls(dimension=dimension, base_region=base_region)
        arrangement.insert_all(hyperplanes)
        return arrangement
