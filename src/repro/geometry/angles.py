"""Angle coordinate system for linear ranking functions.

A linear scoring function with non-negative weights is a ray from the origin
in :math:`R^d`; two weight vectors that are positive scalings of each other
induce the same ordering, so the natural space of ranking functions is the set
of *directions* in the first orthant.  The paper (§4.1, Appendix A.1)
parameterises directions by ``d-1`` angles, each in ``[0, π/2]``.

This module implements that parameterisation with standard hyperspherical
coordinates:

.. math::

   w_1 &= r\\,\\cos θ_1 \\\\
   w_2 &= r\\,\\sin θ_1 \\cos θ_2 \\\\
   &\\;\\;\\vdots \\\\
   w_{d-1} &= r\\,\\sin θ_1 \\cdots \\sin θ_{d-2} \\cos θ_{d-1} \\\\
   w_d &= r\\,\\sin θ_1 \\cdots \\sin θ_{d-2} \\sin θ_{d-1}

For ``d = 2`` this reduces to the paper's §3 convention, ``θ = arctan(w_2/w_1)``,
the angle of the ray with the x-axis.  All conversions below are exact inverses
of each other on the first orthant, and the angular distance between two rays
is the arc-cosine of the cosine similarity of their weight vectors (paper
Eq. 9–10).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GeometryError

__all__ = [
    "HALF_PI",
    "to_angles",
    "to_angles_many",
    "to_weights",
    "angular_distance",
    "angular_distance_angles",
    "is_first_orthant_direction",
    "clamp_angles",
]

#: Upper bound of every angle coordinate (the first orthant spans [0, π/2]).
HALF_PI: float = math.pi / 2.0


def is_first_orthant_direction(weights: np.ndarray) -> bool:
    """Return True if ``weights`` is a usable direction: non-negative, finite, not all zero."""
    weights = np.asarray(weights, dtype=float)
    return bool(
        weights.ndim == 1
        and weights.size >= 1
        and np.all(np.isfinite(weights))
        and np.all(weights >= 0)
        and np.any(weights > 0)
    )


def to_angles(weights: np.ndarray) -> np.ndarray:
    """Convert a weight vector to its ``d-1`` hyperspherical angles.

    Parameters
    ----------
    weights:
        Non-negative weight vector of length ``d >= 2`` with at least one
        positive entry.  The magnitude is irrelevant (a ray is scale free).

    Returns
    -------
    numpy.ndarray
        Angle vector ``Θ`` of length ``d - 1`` with every entry in ``[0, π/2]``.

    Raises
    ------
    GeometryError
        If the weights are negative, all zero, non-finite, or shorter than 2.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size < 2:
        raise GeometryError("to_angles expects a 1-D weight vector of length >= 2")
    if not is_first_orthant_direction(weights):
        raise GeometryError(
            "weights must be finite, non-negative and not all zero to define a ray"
        )
    d = weights.size
    angles = np.empty(d - 1, dtype=float)
    # tail[k] = sqrt(w_{k+1}^2 + ... + w_d^2)
    tail = np.sqrt(np.cumsum(weights[::-1] ** 2)[::-1])
    # np.arctan2 (not math.atan2, whose bits can differ) so the scalar path is
    # bit-identical to the row-wise kernel in to_angles_many.
    for k in range(d - 2):
        angles[k] = np.arctan2(tail[k + 1], weights[k])
    angles[d - 2] = np.arctan2(weights[d - 1], weights[d - 2])
    return clamp_angles(angles)


def to_angles_many(weight_matrix: np.ndarray) -> np.ndarray:
    """Convert a stack of weight vectors to their hyperspherical angles at once.

    The batched counterpart of :func:`to_angles`: row ``k`` of the result is
    bit-identical to ``to_angles(weight_matrix[k])``.  Both paths share the
    same primitives (``np.cumsum`` of the reversed squares, ``np.sqrt``,
    ``np.arctan2``, ``np.clip``) applied in the same order, which is what makes
    the batched exchange-hyperplane construction reproduce the scalar one
    exactly.

    Parameters
    ----------
    weight_matrix:
        ``(m, d)`` matrix of non-negative weight vectors, each with at least
        one positive entry, ``d >= 2``.

    Returns
    -------
    numpy.ndarray
        ``(m, d - 1)`` matrix of angle vectors, every entry in ``[0, π/2]``.

    Raises
    ------
    GeometryError
        If the matrix is not 2-D, has fewer than 2 columns, or any row fails
        the first-orthant-direction requirements of :func:`to_angles`.
    """
    weight_matrix = np.asarray(weight_matrix, dtype=float)
    if weight_matrix.ndim != 2 or weight_matrix.shape[1] < 2:
        raise GeometryError("to_angles_many expects an (m, d) weight matrix with d >= 2")
    if not (
        np.all(np.isfinite(weight_matrix))
        and np.all(weight_matrix >= 0)
        and np.all(np.any(weight_matrix > 0, axis=1))
    ):
        raise GeometryError(
            "every row must be finite, non-negative and not all zero to define a ray"
        )
    d = weight_matrix.shape[1]
    # tail[:, k] = sqrt(w_{k+1}^2 + ... + w_d^2), exactly as in to_angles.
    tail = np.sqrt(np.cumsum(weight_matrix[:, ::-1] ** 2, axis=1)[:, ::-1])
    angles = np.empty((weight_matrix.shape[0], d - 1), dtype=float)
    if d > 2:
        angles[:, : d - 2] = np.arctan2(tail[:, 1 : d - 1], weight_matrix[:, : d - 2])
    angles[:, d - 2] = np.arctan2(weight_matrix[:, d - 1], weight_matrix[:, d - 2])
    return clamp_angles(angles)


def to_weights(angles: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Convert an angle vector back to a weight vector of the given magnitude.

    This is the exact inverse of :func:`to_angles` (up to scaling): for any
    first-orthant direction ``w``, ``to_weights(to_angles(w))`` is the unit
    vector along ``w``.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.ndim != 1 or angles.size < 1:
        raise GeometryError("to_weights expects a 1-D angle vector of length >= 1")
    if not np.all(np.isfinite(angles)):
        raise GeometryError("angles must be finite")
    if radius <= 0:
        raise GeometryError("radius must be positive")
    d = angles.size + 1
    weights = np.empty(d, dtype=float)
    sin_prefix = 1.0
    for k in range(d - 1):
        weights[k] = sin_prefix * math.cos(angles[k])
        sin_prefix *= math.sin(angles[k])
    weights[d - 1] = sin_prefix
    # Numerical noise can produce tiny negatives for angles at the boundary.
    weights = np.clip(weights, 0.0, None)
    return radius * weights


def angular_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Angular distance (radians) between the rays of two weight vectors.

    This is ``arccos`` of the cosine similarity (paper Appendix A.1) and is a
    metric on directions: it is zero iff one vector is a positive scaling of
    the other, symmetric, and satisfies the triangle inequality on the sphere.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise GeometryError("angular_distance requires vectors of equal dimension")
    if not (is_first_orthant_direction(first) and is_first_orthant_direction(second)):
        raise GeometryError("angular_distance requires valid first-orthant directions")
    cosine = float(np.dot(first, second) / (np.linalg.norm(first) * np.linalg.norm(second)))
    cosine = min(1.0, max(-1.0, cosine))
    return math.acos(cosine)


def angular_distance_angles(first_angles: np.ndarray, second_angles: np.ndarray) -> float:
    """Angular distance between two rays given by their angle vectors."""
    return angular_distance(to_weights(first_angles), to_weights(second_angles))


def clamp_angles(angles: np.ndarray) -> np.ndarray:
    """Clamp an angle vector into the legal box ``[0, π/2]^(d-1)``.

    Used to absorb floating-point drift at the boundary of the first orthant.
    """
    return np.clip(np.asarray(angles, dtype=float), 0.0, HALF_PI)
