"""repro — a reproduction of "Designing Fair Ranking Schemes" (Asudeh et al., SIGMOD 2019).

The library helps a user design a *fair* linear scoring function: given a
dataset, a fairness oracle over orderings, and a proposed weight vector, it
either confirms the proposal is fair or suggests the closest weight vector
(by angular distance) that is.  Offline it indexes the *satisfactory regions*
of weight space using ordering exchanges and hyperplane arrangements; online
it answers queries in sub-millisecond time.

Typical use::

    from repro import FairRankingDesigner, ProportionalOracle
    from repro.data import make_compas_like

    dataset = make_compas_like(n=1000).project(
        ["c_days_from_compas", "juv_other_count", "start"])
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10)
    designer = FairRankingDesigner(dataset, oracle, n_cells=4096).preprocess()
    result = designer.suggest([0.5, 0.3, 0.2])
"""

from repro.core import (
    ApproximatePreprocessor,
    DesignSession,
    FairRankingDesigner,
    MDApproxIndex,
    MDExactIndex,
    SatRegions,
    SuggestionResult,
    TwoDIndex,
    TwoDRaySweep,
)
from repro.data import Dataset
from repro.exceptions import (
    ConfigurationError,
    DatasetError,
    GeometryError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
    OracleError,
    ReproError,
    ScoringFunctionError,
)
from repro.fairness import (
    CallableOracle,
    FairnessOracle,
    MultiAttributeOracle,
    PrefixProportionalOracle,
    ProportionalOracle,
    TopKGroupBoundOracle,
)
from repro.io import load_index, save_index
from repro.ranking import LinearScoringFunction

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "Dataset",
    "LinearScoringFunction",
    "FairnessOracle",
    "CallableOracle",
    "ProportionalOracle",
    "TopKGroupBoundOracle",
    "MultiAttributeOracle",
    "PrefixProportionalOracle",
    "FairRankingDesigner",
    "DesignSession",
    "SuggestionResult",
    "save_index",
    "load_index",
    "TwoDRaySweep",
    "TwoDIndex",
    "SatRegions",
    "MDExactIndex",
    "ApproximatePreprocessor",
    "MDApproxIndex",
    "ReproError",
    "DatasetError",
    "ScoringFunctionError",
    "GeometryError",
    "OracleError",
    "ConfigurationError",
    "NoSatisfactoryFunctionError",
    "NotPreprocessedError",
]
