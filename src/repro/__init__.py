"""repro — a reproduction of "Designing Fair Ranking Schemes" (Asudeh et al., SIGMOD 2019).

The library helps a user design a *fair* linear scoring function: given a
dataset, a fairness oracle over orderings, and a proposed weight vector, it
either confirms the proposal is fair or suggests the closest weight vector
(by angular distance) that is.  Offline it indexes the *satisfactory regions*
of weight space using ordering exchanges and hyperplane arrangements; online
it answers queries in sub-millisecond time.

Typical use::

    from repro import ApproxConfig, FairRankingDesigner, ProportionalOracle
    from repro.data import make_compas_like

    dataset = make_compas_like(n=1000).project(
        ["c_days_from_compas", "juv_other_count", "start"])
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10)
    designer = FairRankingDesigner(
        dataset, oracle, ApproxConfig(n_cells=4096)).preprocess()
    result = designer.suggest([0.5, 0.3, 0.2])
    batch = designer.suggest_many([[0.5, 0.3, 0.2], [0.2, 0.4, 0.4]])

Preprocessed designers persist with ``designer.save(path)`` and come back with
``FairRankingDesigner.load(path, oracle)``, answering bit-identically without
re-preprocessing (see :mod:`repro.core.engine` for the engine protocol).
Persisted files carry a checksum; a corrupted file raises a typed
:class:`IndexIntegrityError` with a rebuild hint.  For serving against flaky
oracles or with graceful degradation across pipelines, see
:mod:`repro.resilience` (``ResilientOracle``, ``FallbackConfig``) and
``docs/robustness.md``.  For tracing, metrics and replayable workload
recording around any engine, see :mod:`repro.obs` (``InstrumentedConfig``,
``MetricsRegistry``, ``TraceRecorder``, ``WorkloadRecorder``) and
``docs/observability.md``.
"""

from repro.core import (
    ApproxConfig,
    ApproximatePreprocessor,
    DesignSession,
    ExactConfig,
    FairRankingDesigner,
    MDApproxIndex,
    MDExactIndex,
    QueryEngine,
    SatRegions,
    SuggestionResult,
    TwoDConfig,
    TwoDIndex,
    TwoDRaySweep,
    available_engines,
    get_engine,
)
from repro.data import Dataset
from repro.exceptions import (
    ConfigurationError,
    DatasetError,
    FallbackExhaustedError,
    GeometryError,
    IndexIntegrityError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
    OracleError,
    OracleTimeoutError,
    OracleUnavailableError,
    ReproError,
    ScoringFunctionError,
    TransientOracleError,
)
from repro.fairness import (
    CallableOracle,
    FairnessOracle,
    MultiAttributeOracle,
    PairwiseParityOracle,
    PrefixProportionalOracle,
    ProportionalOracle,
    TopKGroupBoundOracle,
    as_batched,
    as_incremental,
)
from repro.io import load_engine, load_index, save_engine, save_index
from repro.obs import (
    InstrumentedConfig,
    InstrumentedEngine,
    MetricsRegistry,
    TraceRecorder,
    WorkloadRecorder,
)
from repro.ranking import LinearScoringFunction
from repro.resilience import (
    CircuitBreaker,
    FallbackConfig,
    FallbackEngine,
    ResilientOracle,
    RetryPolicy,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "Dataset",
    "LinearScoringFunction",
    "FairnessOracle",
    "CallableOracle",
    "ProportionalOracle",
    "TopKGroupBoundOracle",
    "MultiAttributeOracle",
    "PairwiseParityOracle",
    "PrefixProportionalOracle",
    "as_batched",
    "as_incremental",
    "FairRankingDesigner",
    "DesignSession",
    "SuggestionResult",
    "QueryEngine",
    "TwoDConfig",
    "ExactConfig",
    "ApproxConfig",
    "available_engines",
    "get_engine",
    "save_index",
    "load_index",
    "save_engine",
    "load_engine",
    "TwoDRaySweep",
    "TwoDIndex",
    "SatRegions",
    "MDExactIndex",
    "ApproximatePreprocessor",
    "MDApproxIndex",
    "ResilientOracle",
    "RetryPolicy",
    "CircuitBreaker",
    "FallbackConfig",
    "FallbackEngine",
    "InstrumentedConfig",
    "InstrumentedEngine",
    "MetricsRegistry",
    "TraceRecorder",
    "WorkloadRecorder",
    "ReproError",
    "DatasetError",
    "ScoringFunctionError",
    "GeometryError",
    "OracleError",
    "TransientOracleError",
    "OracleTimeoutError",
    "OracleUnavailableError",
    "FallbackExhaustedError",
    "IndexIntegrityError",
    "ConfigurationError",
    "NoSatisfactoryFunctionError",
    "NotPreprocessedError",
]
