"""The grid-based approximation pipeline of §5.

The exact ``MDBASELINE`` is too slow for interactive use because each query
solves one non-linear program per satisfactory region.  The paper's
approximation partitions the angle space into ``N`` cells and, during
preprocessing, assigns one satisfactory function to *every* cell:

1. ``CELLPLANE×`` (Algorithm 7) finds, for every cell, the exchange
   hyperplanes passing through it;
2. ``MARKCELL`` (Algorithm 8) searches each crossed cell for a satisfactory
   function, building only the local arrangement of the crossing hyperplanes
   and stopping early as soon as one satisfactory region is found
   (``ATC+``, Algorithm 9);
3. ``CELLCOLORING`` (Algorithm 10) propagates the discovered functions to the
   remaining cells with a Dijkstra pass over the cell-adjacency graph, so each
   uncovered cell is assigned the nearest discovered satisfactory function;
4. ``MDONLINE`` (Algorithm 11) answers a query by locating its cell and
   returning the assigned function — with the Theorem 6 guarantee that the
   answer is within a user-controllable angle of the optimum.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.data.layers import topk_candidate_indices
from repro.exceptions import (
    ConfigurationError,
    GeometryError,
    InfeasibleRegionError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import (
    angular_distance,
    angular_distance_angles,
    to_angles,
    to_weights,
)
from repro.geometry.arrangement_tree import ArrangementTree
from repro.geometry.cellplane import CellPlaneIndex, assign_hyperplanes_to_cells
from repro.geometry.dual import HYPERPLANE_METHODS, hyperplanes_for_dataset
from repro.geometry.hyperplane import Hyperplane, Region
from repro.obs.trace import stage_span
from repro.geometry.partition import (
    AnglePartition,
    AnglePartitionProtocol,
    Cell,
    UniformGridPartition,
    theorem6_bound,
)
from repro.ranking.scoring import LinearScoringFunction

__all__ = [
    "PreprocessingTimings",
    "MDApproxIndex",
    "ApproximatePreprocessor",
    "md_online",
    "md_online_lookup",
]


@dataclass
class PreprocessingTimings:
    """Wall-clock seconds spent in each preprocessing step (paper Figs. 22–23)."""

    hyperplane_construction: float = 0.0
    cell_plane_assignment: float = 0.0
    mark_cells: float = 0.0
    cell_coloring: float = 0.0

    @property
    def total(self) -> float:
        """Total preprocessing time across all steps."""
        return (
            self.hyperplane_construction
            + self.cell_plane_assignment
            + self.mark_cells
            + self.cell_coloring
        )


@dataclass
class MDApproxIndex:
    """The per-cell index produced by the approximate preprocessing pipeline.

    ``assigned_angles[c]`` is the angle vector of the satisfactory function
    assigned to cell ``c`` (``None`` when the constraint is unsatisfiable
    everywhere).  ``marked`` flags the cells whose function was found inside
    the cell itself (before colouring).
    """

    dataset: Dataset
    oracle: FairnessOracle
    partition: AnglePartitionProtocol
    assigned_angles: list[np.ndarray | None] = field(default_factory=list)
    marked: list[bool] = field(default_factory=list)
    cell_plane_index: CellPlaneIndex | None = None
    n_hyperplanes: int = 0
    oracle_calls: int = 0
    timings: PreprocessingTimings = field(default_factory=PreprocessingTimings)
    #: Lazily built stack over the assigned cells (cell indices, weight rows,
    #: row norms) backing the vectorised nearest-assigned fallback.
    _assigned_stack_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_cells(self) -> int:
        """Number of cells in the partition."""
        return self.partition.n_cells

    @property
    def n_marked_cells(self) -> int:
        """Number of cells in which a satisfactory function was found directly."""
        return sum(self.marked)

    @property
    def has_satisfactory_function(self) -> bool:
        """True if any cell carries a satisfactory function."""
        return any(angles is not None for angles in self.assigned_angles)

    def approximation_bound(self) -> float:
        """Theorem 6 bound on the extra angular distance of the returned answers."""
        return theorem6_bound(self.n_cells, self.dataset.n_attributes)

    def _assigned_stack(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack the assigned cells once: ``(cell indices, weight rows, row norms)``.

        Built lazily on the first nearest-assigned lookup and cached; mutating
        ``assigned_angles`` afterwards requires building a fresh index (which
        is what every refresh/load path does).
        """
        cache = self._assigned_stack_cache
        if cache is None:
            cells = np.asarray(
                [
                    cell_index
                    for cell_index, angles in enumerate(self.assigned_angles)
                    if angles is not None
                ],
                dtype=int,
            )
            weights = (
                np.stack(
                    [
                        to_weights(np.asarray(self.assigned_angles[cell_index], dtype=float))
                        for cell_index in cells.tolist()
                    ]
                )
                if cells.size
                else np.zeros((0, self.dataset.n_attributes))
            )
            norms = np.asarray([float(np.linalg.norm(row)) for row in weights])
            cache = (cells, weights, norms)
            self._assigned_stack_cache = cache
        return cache

    def _nearest_assigned_position(self, query_angles: np.ndarray) -> int:
        """Stack position (into :meth:`_assigned_stack`) of the nearest assigned cell.

        One stacked matmul + argmin instead of an O(n_cells) Python scan, and
        the chosen cell is exactly the one the scan's ``min`` would pick: the
        cosines are bit-identical to the scalar
        :func:`~repro.geometry.angles.angular_distance` cosines (the stacked
        ``np.matmul`` applies the same per-row dot kernel), and the rare
        near-maximal cosines — within the ``acos`` rounding margin of the best
        — are re-scored with the scalar distance itself, first minimum wins.
        """
        cells, weights, norms = self._assigned_stack()
        if cells.size == 0:
            raise NoSatisfactoryFunctionError(
                "no scoring function satisfies the fairness constraint on this dataset"
            )
        query_angles = np.asarray(query_angles, dtype=float)
        query_weights = to_weights(query_angles)
        dots = np.matmul(
            weights[:, None, :],
            np.broadcast_to(
                query_weights[:, None], (weights.shape[0], query_weights.size, 1)
            ),
        )[:, 0, 0]
        cosines = np.clip(dots / (norms * float(np.linalg.norm(query_weights))), -1.0, 1.0)
        # acos is monotone with at most ~2 ulp of rounding, so only cosines
        # within this margin of the maximum can tie for the minimal distance.
        near = np.flatnonzero(cosines >= np.max(cosines) - 1e-13)
        best = int(near[0])
        if near.size > 1:
            best = min(
                (
                    (angular_distance(weights[candidate], query_weights), candidate)
                    for candidate in near.tolist()
                ),
                key=lambda pair: pair[0],
            )[1]
        return best

    def nearest_assigned_angles(self, query_angles: np.ndarray) -> np.ndarray:
        """Assigned angle vector of the cell nearest to ``query_angles``.

        The fallback for queries landing in cells the colouring could not
        reach; see :meth:`_nearest_assigned_position` for the equivalence
        argument against the seed's per-cell scan.
        """
        cells, _weights, _norms = self._assigned_stack()
        return self.assigned_angles[int(cells[self._nearest_assigned_position(query_angles)])]

    def query(self, function: LinearScoringFunction) -> SuggestionResult:
        """Answer a query using the cell index (Algorithm 11, ``MDONLINE``)."""
        return md_online(self, function)


class ApproximatePreprocessor:
    """Offline preprocessing for the approximate pipeline (§5.1–5.2).

    Parameters
    ----------
    dataset:
        Dataset with ``d >= 3`` scoring attributes.
    oracle:
        Fairness oracle labelling orderings.
    n_cells:
        Target number of cells ``N`` of the angle-space partition.
    partition:
        ``"uniform"`` for the equal-width grid (default) or ``"angle"`` for the
        paper's adaptive equal-area partition, or a ready-made partition object.
    max_hyperplanes:
        Optional cap on the number of exchange hyperplanes (useful for sweeps).
    convex_layer_k:
        Optional §8 convex-layer filter for top-``k`` oracles.
    hyperplane_method:
        ``"batched"`` (default) constructs the exchange hyperplanes with the
        stacked :func:`~repro.geometry.dual.hyperpolar_many` kernel;
        ``"scalar"`` uses the bit-identical per-pair reference loop.
    preprocess_workers:
        Worker processes for the hyperplane construction (``1`` = serial;
        ``> 1`` shards the pair-enumeration blocks over
        :func:`repro.parallel.preprocess.parallel_hyperplanes_for_dataset`,
        which is bit-identical to the serial path).
    """

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        n_cells: int = 1024,
        partition: str | AnglePartitionProtocol = "uniform",
        max_hyperplanes: int | None = None,
        convex_layer_k: int | None = None,
        hyperplane_method: str = "batched",
        preprocess_workers: int = 1,
    ) -> None:
        if dataset.n_attributes < 3:
            raise GeometryError(
                "ApproximatePreprocessor requires d >= 3; use TwoDRaySweep for d = 2"
            )
        if n_cells < 1:
            raise ConfigurationError("n_cells must be >= 1")
        if hyperplane_method not in HYPERPLANE_METHODS:
            raise ConfigurationError(
                f"unknown hyperplane_method {hyperplane_method!r}; "
                f"expected one of {HYPERPLANE_METHODS}"
            )
        self.dataset = dataset
        self.oracle = oracle
        self.n_cells = n_cells
        self.max_hyperplanes = max_hyperplanes
        self.convex_layer_k = convex_layer_k
        self.hyperplane_method = hyperplane_method
        self.preprocess_workers = preprocess_workers
        #: Hyperplanes the last :meth:`run` consumed (built or injected); the
        #: engines cache this list for incremental maintenance.
        self.hyperplanes_: list[Hyperplane] = []
        dimension = dataset.n_attributes - 1
        if isinstance(partition, str):
            if partition == "uniform":
                self.partition: AnglePartitionProtocol = UniformGridPartition(dimension, n_cells)
            elif partition == "angle":
                self.partition = AnglePartition(dimension, n_cells)
            else:
                raise ConfigurationError(f"unknown partition kind {partition!r}")
        else:
            if partition.dimension != dimension:
                raise ConfigurationError("partition dimension does not match the dataset")
            self.partition = partition

    # ------------------------------------------------------------------ #
    # pipeline steps
    # ------------------------------------------------------------------ #
    def build_hyperplanes(self) -> list[Hyperplane]:
        """Construct the exchange hyperplanes (optionally filtered / capped).

        ``max_hyperplanes`` is pushed into the chunked enumeration of
        :func:`~repro.geometry.dual.hyperplanes_for_dataset`, so a capped
        sweep stops constructing as soon as the cap is reached instead of
        building all O(n²) hyperplanes and slicing afterwards.
        """
        item_indices = None
        if self.convex_layer_k is not None:
            item_indices = topk_candidate_indices(self.dataset.scores, self.convex_layer_k)
        if self.preprocess_workers > 1:
            from repro.parallel.preprocess import parallel_hyperplanes_for_dataset

            return parallel_hyperplanes_for_dataset(
                self.dataset,
                item_indices,
                method=self.hyperplane_method,
                n_workers=self.preprocess_workers,
                max_hyperplanes=self.max_hyperplanes,
            )
        return hyperplanes_for_dataset(
            self.dataset,
            item_indices,
            method=self.hyperplane_method,
            max_hyperplanes=self.max_hyperplanes,
        )

    def run(
        self,
        *,
        hyperplanes: list[Hyperplane] | None = None,
        cell_plane_index: CellPlaneIndex | None = None,
    ) -> MDApproxIndex:
        """Execute the full preprocessing pipeline and return the cell index.

        ``hyperplanes`` and ``cell_plane_index`` inject precomputed oracle-free
        geometry (the delta-maintenance path of
        :meth:`repro.core.engine.ApproxEngine.apply_delta`): injected stages
        are skipped — their timings stay ``0.0`` — while marking and colouring
        always re-run, since their oracle verdicts are data-dependent.
        """
        index = MDApproxIndex(
            dataset=self.dataset, oracle=self.oracle, partition=self.partition
        )

        if hyperplanes is None:
            started = time.perf_counter()
            with stage_span("preprocess.hyperplane_construction") as span:
                hyperplanes = self.build_hyperplanes()
                if span is not None:
                    span.set("n_hyperplanes", len(hyperplanes))
            index.timings.hyperplane_construction = time.perf_counter() - started
        index.n_hyperplanes = len(hyperplanes)
        self.hyperplanes_ = hyperplanes

        if cell_plane_index is None:
            started = time.perf_counter()
            with stage_span("preprocess.cell_plane_assignment"):
                cell_plane_index = assign_hyperplanes_to_cells(self.partition, hyperplanes)
            index.timings.cell_plane_assignment = time.perf_counter() - started
        index.cell_plane_index = cell_plane_index

        started = time.perf_counter()
        with stage_span("preprocess.mark_cells") as span:
            assigned, marked, oracle_calls = self._mark_cells(
                hyperplanes, cell_plane_index
            )
            if span is not None:
                span.set("oracle_calls", int(oracle_calls))
        index.assigned_angles = assigned
        index.marked = marked
        index.oracle_calls += oracle_calls
        index.timings.mark_cells = time.perf_counter() - started

        started = time.perf_counter()
        with stage_span("preprocess.cell_coloring"):
            self._color_cells(index)
        index.timings.cell_coloring = time.perf_counter() - started
        return index

    # ------------------------------------------------------------------ #
    # MARKCELL (Algorithm 8) + ATC+ (Algorithm 9)
    # ------------------------------------------------------------------ #
    def _cell_region(self, cell: Cell) -> Region:
        """Express a cell box as a Region so arrangements can be restricted to it."""
        dimension = self.partition.dimension
        region = Region.whole_space(dimension)
        for axis in range(dimension):
            high = cell.high[axis]
            low = cell.low[axis]
            if high > 0:
                coefficients = [0.0] * dimension
                coefficients[axis] = 1.0 / high
                region = region.with_half_space(Hyperplane(tuple(coefficients)).negative())
            if low > 0:
                coefficients = [0.0] * dimension
                coefficients[axis] = 1.0 / low
                region = region.with_half_space(Hyperplane(tuple(coefficients)).positive())
        return region

    def _evaluate_angles(self, angles: np.ndarray) -> bool:
        function = LinearScoringFunction(tuple(to_weights(angles)))
        return self.oracle.evaluate_function(function, self.dataset)

    def _mark_cells(
        self, hyperplanes: list[Hyperplane], cell_plane_index: CellPlaneIndex
    ) -> tuple[list[np.ndarray | None], list[bool], int]:
        """Assign a satisfactory function to every cell that contains one (``MARKCELL``)."""
        cells = self.partition.cells()
        assigned: list[np.ndarray | None] = [None] * len(cells)
        marked = [False] * len(cells)
        oracle_calls = 0

        for cell in cells:
            crossing = cell_plane_index.by_cell[cell.index]
            center = cell.center()
            # No hyperplane crosses the cell: the ordering is constant inside
            # it, one oracle call at the centre decides the whole cell.
            oracle_calls += 1
            if self._evaluate_angles(center):
                assigned[cell.index] = center
                marked[cell.index] = True
                continue
            if not crossing:
                continue
            cell_region = self._cell_region(cell)
            result, calls = self._mark_one_cell(cell_region, [hyperplanes[i] for i in crossing])
            oracle_calls += calls
            if result is not None:
                assigned[cell.index] = result
                marked[cell.index] = True
        return assigned, marked, oracle_calls

    def _mark_one_cell(
        self, cell_region: Region, crossing: list[Hyperplane]
    ) -> tuple[np.ndarray | None, int]:
        """Early-stopping search for a satisfactory function inside one cell."""
        oracle_calls = 0

        def probe(region: Region) -> np.ndarray | None:
            nonlocal oracle_calls
            try:
                point = region.interior_point()
            except InfeasibleRegionError:
                return None
            oracle_calls += 1
            if self._evaluate_angles(point):
                return point
            return None

        # Algorithm 8 lines 6-9: try both sides of the first hyperplane before
        # building any tree structure.
        first = crossing[0]
        for half_space in (first.negative(), first.positive()):
            result = probe(cell_region.with_half_space(half_space))
            if result is not None:
                return result, oracle_calls

        tree = ArrangementTree(dimension=self.partition.dimension, base_region=cell_region)
        tree.insert(first)
        for hyperplane in crossing[1:]:
            result = tree.insert_with_probe(hyperplane, probe)
            if result is not None:
                return np.asarray(result, dtype=float), oracle_calls
        return None, oracle_calls

    # ------------------------------------------------------------------ #
    # CELLCOLORING (Algorithm 10)
    # ------------------------------------------------------------------ #
    def _color_cells(self, index: MDApproxIndex) -> None:
        """Propagate satisfactory functions to unmarked cells with a Dijkstra pass."""
        cells = self.partition.cells()
        distances = [np.inf] * len(cells)
        queue: list[tuple[float, int]] = []
        for cell in cells:
            if index.assigned_angles[cell.index] is not None:
                distances[cell.index] = 0.0
                heapq.heappush(queue, (0.0, cell.index))
        visited = [False] * len(cells)
        while queue:
            distance, current = heapq.heappop(queue)
            if visited[current]:
                continue
            visited[current] = True
            current_angles = index.assigned_angles[current]
            if current_angles is None:
                continue
            for neighbor in self.partition.neighbors(current):
                if visited[neighbor]:
                    continue
                neighbor_center = cells[neighbor].center()
                alternative = angular_distance_angles(current_angles, neighbor_center)
                if alternative < distances[neighbor]:
                    distances[neighbor] = alternative
                    index.assigned_angles[neighbor] = current_angles
                    heapq.heappush(queue, (alternative, neighbor))


def md_online_lookup(index: MDApproxIndex, function: LinearScoringFunction) -> SuggestionResult:
    """The pure index-lookup step of ``MDONLINE`` (Algorithm 11, lines 4-8).

    Locates the query's cell and returns the assigned satisfactory function
    *without* first re-checking whether the query itself is satisfactory (that
    check orders the whole dataset and is what line 1 of Algorithm 11 spends
    its time on).  This is the per-query cost the paper reports in §6.3 — the
    part that is independent of the dataset size — and it is what the online
    latency benchmarks time.  ``satisfactory`` is therefore always False in the
    returned result; use :func:`md_online` for the full Algorithm 11 semantics.

    Raises
    ------
    NotPreprocessedError
        If preprocessing has not populated the index.
    NoSatisfactoryFunctionError
        If no satisfactory function exists anywhere in the space.
    """
    if not index.assigned_angles:
        raise NotPreprocessedError("run ApproximatePreprocessor before issuing online queries")
    if function.dimension != index.dataset.n_attributes:
        raise GeometryError("query dimension does not match the dataset")
    if not index.has_satisfactory_function:
        raise NoSatisfactoryFunctionError(
            "no scoring function satisfies the fairness constraint on this dataset"
        )
    weights = function.as_array()
    radius = float(np.linalg.norm(weights))
    query_angles = to_angles(weights)
    cell_index = index.partition.locate(query_angles)
    assigned = index.assigned_angles[cell_index]
    if assigned is None:
        assigned = index.nearest_assigned_angles(query_angles)
    suggestion = LinearScoringFunction(tuple(to_weights(assigned, radius=radius)))
    return SuggestionResult(
        query=function,
        satisfactory=False,
        function=suggestion,
        angular_distance=angular_distance_angles(query_angles, np.asarray(assigned)),
    )


def md_online(index: MDApproxIndex, function: LinearScoringFunction) -> SuggestionResult:
    """Online query answering over the cell index (Algorithm 11, ``MDONLINE``).

    Raises
    ------
    NotPreprocessedError
        If preprocessing has not populated the index.
    NoSatisfactoryFunctionError
        If no satisfactory function exists anywhere in the space.
    """
    if not index.assigned_angles:
        raise NotPreprocessedError("run ApproximatePreprocessor before issuing online queries")
    if function.dimension != index.dataset.n_attributes:
        raise GeometryError("query dimension does not match the dataset")
    if index.oracle.evaluate_function(function, index.dataset):
        return SuggestionResult(
            query=function, satisfactory=True, function=function, angular_distance=0.0
        )
    # The query is not satisfactory: answer from the cell index.  The query's
    # own cell can lack an assignment only when the colouring could not reach
    # it; the lookup then falls back to the nearest assigned cell.
    return md_online_lookup(index, function)
