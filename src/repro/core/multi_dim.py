"""The exact multi-dimensional pipeline: ``SATREGIONS`` and ``MDBASELINE`` (§4).

For ``d > 2`` scoring attributes the space of ranking functions is the
``(d-1)``-dimensional angle box.  The ordering exchanges become hyperplanes in
this box (via ``HYPERPOLAR``), and the cells of their *arrangement* are the
maximal regions with a constant ordering.  ``SATREGIONS`` (Algorithm 4) builds
the arrangement — optionally through the arrangement tree of Algorithm 5 — and
keeps the regions whose representative ordering the fairness oracle accepts.
``MDBASELINE`` (Algorithm 6) then answers a query exactly, by solving one
nearest-point problem per satisfactory region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.data.layers import topk_candidate_indices
from repro.exceptions import (
    GeometryError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.batched import evaluate_functions_many
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import HALF_PI, angular_distance_angles, to_angles, to_weights
from repro.geometry.arrangement import Arrangement
from repro.geometry.arrangement_tree import ArrangementTree
from repro.geometry.dual import HYPERPLANE_METHODS, hyperplanes_for_dataset
from repro.geometry.hyperplane import Hyperplane, Region
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["SatisfactoryRegion", "MDExactIndex", "SatRegions", "md_baseline"]


@dataclass(frozen=True)
class SatisfactoryRegion:
    """A satisfactory region of the arrangement with its representative function."""

    region: Region
    representative_angles: tuple[float, ...]
    representative: LinearScoringFunction


@dataclass
class MDExactIndex:
    """Output of ``SATREGIONS``: the satisfactory regions and construction statistics."""

    dimension: int
    satisfactory_regions: list[SatisfactoryRegion] = field(default_factory=list)
    n_hyperplanes: int = 0
    n_regions: int = 0
    oracle_calls: int = 0

    @property
    def has_satisfactory_region(self) -> bool:
        """True if at least one region of the arrangement is satisfactory."""
        return bool(self.satisfactory_regions)


class SatRegions:
    """Offline construction of satisfactory regions in multiple dimensions (Algorithm 4).

    Parameters
    ----------
    dataset:
        Dataset with ``d >= 3`` scoring attributes.
    oracle:
        Fairness oracle labelling orderings.
    use_arrangement_tree:
        Use the hierarchical arrangement tree (Algorithm 5) instead of scanning
        every region on each insertion.  Identical output, much faster in
        practice (paper Fig. 18).
    max_hyperplanes:
        Optional cap on the number of exchange hyperplanes inserted (the paper
        caps insertions when reporting Figs. 18–19); ``None`` inserts all.
    convex_layer_k:
        If given, restrict exchange construction to the items in the first
        ``k`` convex layers — the §8 "onion" optimisation, valid when the
        oracle only inspects the top-``k``.
    hyperplane_method:
        ``"batched"`` (default) constructs all exchange hyperplanes with the
        stacked linear-algebra kernel of
        :func:`~repro.geometry.dual.hyperpolar_many`; ``"scalar"`` uses the
        per-pair reference loop.  Both are bit-identical, so this is purely a
        preprocessing throughput knob.
    preprocess_workers:
        Worker processes for the hyperplane construction (``1`` = serial;
        ``> 1`` shards the pair-enumeration blocks over
        :func:`repro.parallel.preprocess.parallel_hyperplanes_for_dataset`,
        which is bit-identical to the serial path).
    """

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        use_arrangement_tree: bool = True,
        max_hyperplanes: int | None = None,
        convex_layer_k: int | None = None,
        hyperplane_method: str = "batched",
        preprocess_workers: int = 1,
    ) -> None:
        if dataset.n_attributes < 3:
            raise GeometryError("SatRegions requires d >= 3; use TwoDRaySweep for d = 2")
        if hyperplane_method not in HYPERPLANE_METHODS:
            raise GeometryError(
                f"unknown hyperplane_method {hyperplane_method!r}; "
                f"expected one of {HYPERPLANE_METHODS}"
            )
        self.dataset = dataset
        self.oracle = oracle
        self.use_arrangement_tree = use_arrangement_tree
        self.max_hyperplanes = max_hyperplanes
        self.convex_layer_k = convex_layer_k
        self.hyperplane_method = hyperplane_method
        self.preprocess_workers = preprocess_workers
        self._hyperplanes: list[Hyperplane] | None = None
        #: Canonically ordered hyperplanes of the last :meth:`run` (the exact
        #: insertion sequence), and the arrangement tree it built (``None``
        #: before the first run or when ``use_arrangement_tree=False``).  The
        #: engines cache both so insert-only deltas extend the tree in place.
        self.hyperplanes_: list[Hyperplane] = []
        self.tree_: ArrangementTree | None = None

    # ------------------------------------------------------------------ #
    # offline construction
    # ------------------------------------------------------------------ #
    def build_hyperplanes(self) -> list[Hyperplane]:
        """Construct the exchange hyperplanes (optionally convex-layer filtered / capped).

        Pair eligibility is decided by the chunked vectorised dominance kernel
        inside :func:`~repro.geometry.dual.hyperplanes_for_dataset` (broadcast
        row blocks instead of ~n²/2 per-pair dominance re-tests), and the
        hyperplanes themselves by the batched ``hyperpolar_many`` kernel (or
        the scalar reference loop when ``hyperplane_method="scalar"``).  The
        result is memoized on the instance: dataset and filter parameters are
        fixed at construction, so repeated ``run()`` calls reuse the
        hyperplanes.
        """
        if self._hyperplanes is None:
            item_indices = None
            if self.convex_layer_k is not None:
                item_indices = topk_candidate_indices(self.dataset.scores, self.convex_layer_k)
            # The cap is honoured inside the chunked enumeration, so capped
            # sweeps stop constructing early instead of building all O(n²)
            # hyperplanes and slicing.
            if self.preprocess_workers > 1:
                from repro.parallel.preprocess import parallel_hyperplanes_for_dataset

                self._hyperplanes = parallel_hyperplanes_for_dataset(
                    self.dataset,
                    item_indices,
                    method=self.hyperplane_method,
                    n_workers=self.preprocess_workers,
                    max_hyperplanes=self.max_hyperplanes,
                )
            else:
                self._hyperplanes = hyperplanes_for_dataset(
                    self.dataset,
                    item_indices,
                    method=self.hyperplane_method,
                    max_hyperplanes=self.max_hyperplanes,
                )
        return self._hyperplanes

    def run(self) -> MDExactIndex:
        """Build the arrangement, evaluate every region and keep the satisfactory ones.

        Hyperplanes are inserted in the canonical ``(j, i)`` order of their
        pair labels (larger item index first).  The arrangement — and hence
        the index — is the same for any insertion order; fixing this one makes
        the build *delta-extendable*: every exchange pair created by appending
        an item has a larger index ``>= n``, so its hyperplane sorts after all
        existing ones and an insert-only delta can continue the cached tree's
        insertion sequence exactly where a from-scratch build would.
        """
        dimension = self.dataset.n_attributes - 1
        hyperplanes = self.build_hyperplanes()
        if all(plane.label is not None for plane in hyperplanes):
            hyperplanes = sorted(
                hyperplanes, key=lambda plane: (plane.label[1], plane.label[0])
            )
        self.hyperplanes_ = hyperplanes
        index = MDExactIndex(dimension=dimension, n_hyperplanes=len(hyperplanes))

        if self.use_arrangement_tree:
            tree = ArrangementTree(dimension=dimension)
            for hyperplane in hyperplanes:
                tree.insert(hyperplane)
            regions = tree.leaf_regions()
            self.tree_ = tree
        else:
            arrangement = Arrangement.build(hyperplanes, dimension=dimension)
            regions = arrangement.non_empty_regions()
            self.tree_ = None
        index.n_regions = len(regions)
        self._evaluate_regions(regions, index)
        return index

    def evaluate_tree(self, tree: ArrangementTree, n_hyperplanes: int) -> MDExactIndex:
        """Evaluate the leaf regions of a (possibly cached) arrangement tree.

        The delta-maintenance and refresh entry point: the tree carries the
        oracle-free geometry, so only the per-region oracle evaluation — which
        is data-dependent and must re-run after any change — happens here.
        The result is exactly what :meth:`run` would produce after inserting
        the same hyperplane sequence into a fresh tree.
        """
        index = MDExactIndex(
            dimension=self.dataset.n_attributes - 1, n_hyperplanes=int(n_hyperplanes)
        )
        regions = tree.leaf_regions()
        index.n_regions = len(regions)
        self._evaluate_regions(regions, index)
        return index

    def _evaluate_regions(self, regions: list[Region], index: MDExactIndex) -> None:
        """One oracle call per region; keep the satisfactory ones (Algorithm 4 tail)."""
        for region in regions:
            angles = region.interior_point()
            function = LinearScoringFunction(tuple(to_weights(angles)))
            index.oracle_calls += 1
            if self.oracle.evaluate_function(function, self.dataset):
                index.satisfactory_regions.append(
                    SatisfactoryRegion(
                        region=region,
                        representative_angles=tuple(angles),
                        representative=function,
                    )
                )

    # ------------------------------------------------------------------ #
    # online answering (MDBASELINE)
    # ------------------------------------------------------------------ #
    def query(self, index: MDExactIndex, function: LinearScoringFunction) -> SuggestionResult:
        """Answer a query exactly (Algorithm 6, ``MDBASELINE``).

        If the query is already satisfactory it is returned unchanged;
        otherwise the closest point of every satisfactory region is found with
        a constrained non-linear minimisation of the angular distance, and the
        overall closest one is suggested.
        """
        return md_baseline(self.dataset, self.oracle, index, function)


def _closest_point_in_region(
    region: Region, query_angles: np.ndarray
) -> tuple[np.ndarray, float]:
    """Minimise the angular distance from ``query_angles`` to a convex region.

    Solved with SLSQP over the region's linear inequality constraints and the
    angle box bounds, started from the region's Chebyshev centre.
    """
    a_matrix, b_vector = region.inequality_system()
    start = region.interior_point()

    def objective(theta: np.ndarray) -> float:
        return angular_distance_angles(np.clip(theta, 0.0, HALF_PI), query_angles)

    constraints = []
    if a_matrix.size:
        constraints.append(
            {"type": "ineq", "fun": lambda theta: b_vector - a_matrix @ theta}
        )
    bounds = [(0.0, HALF_PI)] * region.dimension
    solution = minimize(
        objective,
        x0=start,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 200, "ftol": 1e-10},
    )
    candidate = np.clip(solution.x, 0.0, HALF_PI) if solution.success else start
    if a_matrix.size and np.any(a_matrix @ candidate - b_vector > 1e-7):
        candidate = start
    return candidate, angular_distance_angles(candidate, query_angles)


def md_baseline(
    dataset: Dataset,
    oracle: FairnessOracle,
    index: MDExactIndex,
    function: LinearScoringFunction,
) -> SuggestionResult:
    """Exact CLOSEST SATISFACTORY FUNCTION answering over an ``MDExactIndex``.

    Raises
    ------
    NotPreprocessedError
        If the index was never populated.
    NoSatisfactoryFunctionError
        If the constraint is unsatisfiable on this dataset.
    """
    if index.n_regions == 0:
        raise NotPreprocessedError("run SatRegions before issuing online queries")
    if function.dimension != dataset.n_attributes:
        raise GeometryError("query dimension does not match the dataset")
    if oracle.evaluate_function(function, dataset):
        return SuggestionResult(
            query=function, satisfactory=True, function=function, angular_distance=0.0
        )
    if not index.has_satisfactory_region:
        raise NoSatisfactoryFunctionError(
            "no scoring function satisfies the fairness constraint on this dataset"
        )
    query_angles = to_angles(function.as_array())
    radius = float(np.linalg.norm(function.as_array()))
    candidates: list[tuple[float, np.ndarray, SatisfactoryRegion]] = []
    for satisfactory in index.satisfactory_regions:
        candidate, distance = _closest_point_in_region(satisfactory.region, query_angles)
        candidates.append((distance, candidate, satisfactory))
    candidates.sort(key=lambda entry: entry[0])

    # The closest point usually lies on the region's boundary, where the induced
    # ordering can tip to the unsatisfactory side (the angle-space hyperplanes
    # are chords of the true curved exchange loci, and ties break arbitrarily).
    # Verify with the oracle and, if needed, blend the point toward the region's
    # interior representative — which is satisfactory by construction — keeping
    # the suggestion as close to optimal as the verification allows.  The
    # candidates advance through the blend levels in lockstep so each level's
    # probes go to the oracle as one batch (a batched oracle judges them with
    # one is_satisfactory_many); every candidate is still evaluated at exactly
    # the levels the per-candidate loop would reach, so oracle-call totals are
    # unchanged.
    verified: list[tuple[float, np.ndarray]] = []
    active = [
        (candidate, np.asarray(satisfactory.representative_angles, dtype=float))
        for _distance, candidate, satisfactory in candidates[:3]
    ]
    for blend in (0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0):
        if not active:
            break
        blended_points = [
            (1.0 - blend) * candidate + blend * interior for candidate, interior in active
        ]
        probes = [
            LinearScoringFunction(tuple(to_weights(point, radius=radius)))
            for point in blended_points
        ]
        accepted = evaluate_functions_many(oracle, dataset, probes)
        still_active = []
        for pair, point, ok in zip(active, blended_points, accepted):
            if ok:
                verified.append((angular_distance_angles(point, query_angles), point))
            else:
                still_active.append(pair)
        active = still_active
    # Region representatives are satisfactory by construction; they both serve
    # as a fallback and cap the suggestion distance from above.
    for satisfactory in index.satisfactory_regions:
        representative = np.asarray(satisfactory.representative_angles, dtype=float)
        verified.append((angular_distance_angles(representative, query_angles), representative))
    best_distance, best_angles = min(verified, key=lambda entry: entry[0])
    suggestion = LinearScoringFunction(tuple(to_weights(best_angles, radius=radius)))
    return SuggestionResult(
        query=function,
        satisfactory=False,
        function=suggestion,
        angular_distance=float(best_distance),
    )
