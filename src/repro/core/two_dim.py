"""The two-dimensional pipeline: ``2DRAYSWEEP`` offline and ``2DONLINE`` online (§3).

In 2-D every ranking function is a single angle ``θ ∈ [0, π/2]`` with the
x-axis, and every pair of non-dominated items exchanges order at exactly one
angle.  Sweeping a ray from the x-axis to the y-axis and swapping pairs at
their exchange angles visits every distinct ordering exactly once, so the
fairness oracle needs to be evaluated only once per *sector* between
consecutive exchange angles.  Adjacent satisfactory sectors are merged into
*satisfactory regions*; online queries then binary-search the sorted region
list (Algorithm 2).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import GeometryError, NoSatisfactoryFunctionError, NotPreprocessedError
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import HALF_PI
from repro.geometry.dual import build_exchange_angles_2d
from repro.core.result import SuggestionResult
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["AngularInterval", "TwoDIndex", "TwoDRaySweep", "two_d_online"]

#: Exchange angles closer than this are processed as a single sweep event.
_ANGLE_GROUP_TOLERANCE = 1e-12


@dataclass(frozen=True)
class AngularInterval:
    """A closed interval ``[start, end]`` of satisfactory angles."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= self.end <= HALF_PI + 1e-12:
            raise GeometryError(f"invalid angular interval [{self.start}, {self.end}]")

    def contains(self, angle: float, tolerance: float = 1e-12) -> bool:
        """Return True if the angle lies in the interval."""
        return self.start - tolerance <= angle <= self.end + tolerance

    def distance_to(self, angle: float) -> float:
        """Distance from an angle to the interval (0 if inside)."""
        if self.contains(angle):
            return 0.0
        return min(abs(angle - self.start), abs(angle - self.end))

    def closest_angle_to(self, angle: float) -> float:
        """The interval point closest to ``angle``."""
        if self.contains(angle):
            return angle
        return self.start if abs(angle - self.start) <= abs(angle - self.end) else self.end


@dataclass
class TwoDIndex:
    """The sorted list of satisfactory angular regions produced by the ray sweep.

    Attributes
    ----------
    intervals:
        Maximal satisfactory intervals, sorted by start angle and disjoint.
    n_exchanges:
        Number of ordering exchanges found (the left axis of paper Fig. 17).
    oracle_calls:
        Number of fairness-oracle evaluations made during the sweep.
    """

    intervals: list[AngularInterval] = field(default_factory=list)
    n_exchanges: int = 0
    oracle_calls: int = 0

    @property
    def has_satisfactory_region(self) -> bool:
        """True if any function at all is satisfactory."""
        return bool(self.intervals)

    def is_satisfactory_angle(self, angle: float) -> bool:
        """Return True if the given angle falls inside a satisfactory region."""
        position = bisect.bisect_right([interval.start for interval in self.intervals], angle)
        for candidate in (position - 1, position):
            if 0 <= candidate < len(self.intervals) and self.intervals[candidate].contains(angle):
                return True
        return False

    def query(self, function: LinearScoringFunction) -> SuggestionResult:
        """Answer a CLOSEST SATISFACTORY FUNCTION query (Algorithm 2, ``2DONLINE``).

        Runs a binary search over the sorted satisfactory intervals; the
        suggestion preserves the query's weight magnitude (only the direction
        changes), as in the paper.

        Raises
        ------
        NoSatisfactoryFunctionError
            If the index contains no satisfactory region at all.
        NotPreprocessedError
            If the index is empty because preprocessing never ran.
        """
        if self.oracle_calls == 0 and not self.intervals:
            raise NotPreprocessedError("run TwoDRaySweep before issuing online queries")
        if not self.intervals:
            raise NoSatisfactoryFunctionError(
                "no scoring function satisfies the fairness constraint on this dataset"
            )
        if function.dimension != 2:
            raise GeometryError("TwoDIndex answers 2-dimensional queries only")
        weights = function.as_array()
        radius = float(np.linalg.norm(weights))
        angle = math.atan2(weights[1], weights[0])

        starts = [interval.start for interval in self.intervals]
        position = bisect.bisect_right(starts, angle)
        candidates = [
            self.intervals[index]
            for index in (position - 1, position)
            if 0 <= index < len(self.intervals)
        ]
        for interval in candidates:
            if interval.contains(angle):
                return SuggestionResult(
                    query=function,
                    satisfactory=True,
                    function=function,
                    angular_distance=0.0,
                )
        best_interval = min(self.intervals, key=lambda interval: interval.distance_to(angle))
        best_angle = best_interval.closest_angle_to(angle)
        # Interval endpoints are exact ordering-exchange angles, where the
        # ordering is tied and the oracle verdict is ambiguous; nudge the
        # suggestion slightly into the interval's interior so the returned
        # function provably induces the satisfactory ordering.
        width = best_interval.end - best_interval.start
        nudge = min(1e-7, 0.25 * width)
        if best_angle == best_interval.start:
            best_angle += nudge
        elif best_angle == best_interval.end:
            best_angle -= nudge
        suggestion = LinearScoringFunction(
            (radius * math.cos(best_angle), radius * math.sin(best_angle))
        )
        return SuggestionResult(
            query=function,
            satisfactory=False,
            function=suggestion,
            angular_distance=abs(angle - best_angle),
        )


class TwoDRaySweep:
    """Offline indexing of satisfactory regions in 2-D (Algorithm 1, ``2DRAYSWEEP``).

    Parameters
    ----------
    dataset:
        A dataset with exactly two scoring attributes.
    oracle:
        The fairness oracle that labels orderings.
    """

    def __init__(self, dataset: Dataset, oracle: FairnessOracle) -> None:
        if dataset.n_attributes != 2:
            raise GeometryError("TwoDRaySweep requires a dataset with exactly 2 scoring attributes")
        self.dataset = dataset
        self.oracle = oracle

    def run(self) -> TwoDIndex:
        """Sweep the ray from the x-axis to the y-axis and index satisfactory regions."""
        exchanges = sorted(build_exchange_angles_2d(self.dataset))
        index = TwoDIndex(n_exchanges=len(exchanges))

        # Ordering at angle 0 (f = x): descending x, ties broken by descending y
        # (the order that holds for angles slightly above 0), then by item index.
        scores = self.dataset.scores
        ordering = sorted(
            range(self.dataset.n_items), key=lambda item: (-scores[item, 0], -scores[item, 1], item)
        )
        position_of = {item: position for position, item in enumerate(ordering)}

        # Sector boundaries: 0, the grouped exchange angles, π/2.
        grouped: list[tuple[float, list[tuple[int, int]]]] = []
        for angle, i, j in exchanges:
            if grouped and abs(angle - grouped[-1][0]) <= _ANGLE_GROUP_TOLERANCE:
                grouped[-1][1].append((i, j))
            else:
                grouped.append((angle, [(i, j)]))

        satisfactory_flags: list[bool] = []
        sector_bounds: list[tuple[float, float]] = []
        previous_angle = 0.0

        def evaluate_current() -> bool:
            index.oracle_calls += 1
            return self.oracle.is_satisfactory(np.asarray(ordering, dtype=int), self.dataset)

        for angle, pairs in grouped:
            if angle > previous_angle:
                sector_bounds.append((previous_angle, angle))
                satisfactory_flags.append(evaluate_current())
                previous_angle = angle
            for i, j in pairs:
                position_i, position_j = position_of[i], position_of[j]
                ordering[position_i], ordering[position_j] = ordering[position_j], ordering[position_i]
                position_of[i], position_of[j] = position_j, position_i
        sector_bounds.append((previous_angle, HALF_PI))
        satisfactory_flags.append(evaluate_current())

        index.intervals = _merge_sectors(sector_bounds, satisfactory_flags)
        return index


def _merge_sectors(
    bounds: list[tuple[float, float]], flags: list[bool]
) -> list[AngularInterval]:
    """Merge consecutive satisfactory sectors into maximal intervals."""
    intervals: list[AngularInterval] = []
    current_start: float | None = None
    current_end: float | None = None
    for (start, end), satisfactory in zip(bounds, flags):
        if satisfactory:
            if current_start is None:
                current_start, current_end = start, end
            else:
                current_end = end
        else:
            if current_start is not None:
                intervals.append(AngularInterval(current_start, current_end))
                current_start = current_end = None
    if current_start is not None:
        intervals.append(AngularInterval(current_start, current_end))
    return intervals


def two_d_online(index: TwoDIndex, function: LinearScoringFunction) -> SuggestionResult:
    """Functional alias of :meth:`TwoDIndex.query` matching the paper's ``2DONLINE`` name."""
    return index.query(function)
