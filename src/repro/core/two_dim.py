"""The two-dimensional pipeline: ``2DRAYSWEEP`` offline and ``2DONLINE`` online (§3).

In 2-D every ranking function is a single angle ``θ ∈ [0, π/2]`` with the
x-axis, and every pair of non-dominated items exchanges order at exactly one
angle.  Sweeping a ray from the x-axis to the y-axis and swapping pairs at
their exchange angles visits every distinct ordering exactly once, so the
fairness oracle needs to be evaluated only once per *sector* between
consecutive exchange angles.  Adjacent satisfactory sectors are merged into
*satisfactory regions*; online queries then binary-search the sorted region
list (Algorithm 2).

Hot-path architecture
---------------------
Offline, the sweep is vectorised end to end: exchange angles come from the
broadcast kernel in :mod:`repro.geometry.dual` (no per-pair Python calls), and
when the oracle implements the :class:`~repro.fairness.incremental.IncrementalOracle`
protocol the verdict is maintained *incrementally* — ``apply_swap`` per
exchange event, O(1) ``verdict()`` per sector — instead of re-evaluating the
oracle from a cold start in every sector.  Black-box oracles keep working
through the original per-sector ``is_satisfactory`` path, and both paths make
exactly one counted oracle call per sector, so the paper's oracle-call metric
(Theorem 1) is unchanged.  Online, :class:`TwoDIndex` caches the interval
start angles as a NumPy array whenever ``intervals`` is assigned, keeping
``2DONLINE`` a true O(log |intervals|) ``searchsorted`` without per-query list
rebuilding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import GeometryError, NoSatisfactoryFunctionError, NotPreprocessedError
from repro.fairness.incremental import as_incremental
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import HALF_PI
from repro.geometry.dual import build_exchange_angles_2d
from repro.obs.trace import stage_span
from repro.core.result import SuggestionResult
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["AngularInterval", "TwoDIndex", "TwoDRaySweep", "two_d_online"]

#: Exchange angles closer than this are processed as a single sweep event.
_ANGLE_GROUP_TOLERANCE = 1e-12


@dataclass(frozen=True)
class AngularInterval:
    """A closed interval ``[start, end]`` of satisfactory angles."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= self.end <= HALF_PI + 1e-12:
            raise GeometryError(f"invalid angular interval [{self.start}, {self.end}]")

    def contains(self, angle: float, tolerance: float = 1e-12) -> bool:
        """Return True if the angle lies in the interval."""
        return self.start - tolerance <= angle <= self.end + tolerance

    def distance_to(self, angle: float) -> float:
        """Distance from an angle to the interval (0 if inside)."""
        if self.contains(angle):
            return 0.0
        return min(abs(angle - self.start), abs(angle - self.end))

    def closest_angle_to(self, angle: float) -> float:
        """The interval point closest to ``angle``."""
        if self.contains(angle):
            return angle
        return self.start if abs(angle - self.start) <= abs(angle - self.end) else self.end


@dataclass
class TwoDIndex:
    """The sorted list of satisfactory angular regions produced by the ray sweep.

    Attributes
    ----------
    intervals:
        Maximal satisfactory intervals, sorted by start angle and disjoint.
        Stored as a tuple (any sequence assigned is normalised) so the cached
        start-angle array can never silently desynchronise through in-place
        mutation — reassign to change the intervals.
    n_exchanges:
        Number of ordering exchanges found (the left axis of paper Fig. 17).
    oracle_calls:
        Number of fairness-oracle evaluations made during the sweep.
    """

    intervals: tuple[AngularInterval, ...] = field(default_factory=tuple)
    n_exchanges: int = 0
    oracle_calls: int = 0

    def __setattr__(self, name: str, value) -> None:
        # Keep the sorted start-angle array in sync with `intervals` so online
        # queries binary-search a cached NumPy array instead of rebuilding a
        # Python list per query.  The intervals are frozen into a tuple so the
        # cache cannot be bypassed by in-place mutation.
        if name == "intervals":
            value = tuple(value)
            starts = np.array([interval.start for interval in value], dtype=float)
            ends = np.array([interval.end for interval in value], dtype=float)
            object.__setattr__(self, "_interval_starts", starts)
            object.__setattr__(self, "_interval_ends", ends)
        object.__setattr__(self, name, value)

    @property
    def interval_starts(self) -> np.ndarray:
        """Sorted start angles of the satisfactory intervals (cached)."""
        return self._interval_starts

    @property
    def interval_ends(self) -> np.ndarray:
        """End angles of the satisfactory intervals, aligned with :attr:`interval_starts`."""
        return self._interval_ends

    @property
    def has_satisfactory_region(self) -> bool:
        """True if any function at all is satisfactory."""
        return bool(self.intervals)

    def is_satisfactory_angle(self, angle: float) -> bool:
        """Return True if the given angle falls inside a satisfactory region."""
        position = int(np.searchsorted(self._interval_starts, angle, side="right"))
        for candidate in (position - 1, position):
            if 0 <= candidate < len(self.intervals) and self.intervals[candidate].contains(angle):
                return True
        return False

    def query(self, function: LinearScoringFunction) -> SuggestionResult:
        """Answer a CLOSEST SATISFACTORY FUNCTION query (Algorithm 2, ``2DONLINE``).

        Runs a binary search over the sorted satisfactory intervals; the
        suggestion preserves the query's weight magnitude (only the direction
        changes), as in the paper.

        Raises
        ------
        NoSatisfactoryFunctionError
            If the index contains no satisfactory region at all.
        NotPreprocessedError
            If the index is empty because preprocessing never ran.
        """
        if self.oracle_calls == 0 and not self.intervals:
            raise NotPreprocessedError("run TwoDRaySweep before issuing online queries")
        if not self.intervals:
            raise NoSatisfactoryFunctionError(
                "no scoring function satisfies the fairness constraint on this dataset"
            )
        if function.dimension != 2:
            raise GeometryError("TwoDIndex answers 2-dimensional queries only")
        # The radius is written as sqrt(x² + y²) rather than np.linalg.norm so
        # the batched query_many path (which evaluates the same expression
        # elementwise) produces bit-identical suggestions.
        weights = function.as_array()
        w0, w1 = float(weights[0]), float(weights[1])
        radius = math.sqrt(w0 * w0 + w1 * w1)
        angle = math.atan2(w1, w0)

        position = int(np.searchsorted(self._interval_starts, angle, side="right"))
        candidates = [
            self.intervals[index]
            for index in (position - 1, position)
            if 0 <= index < len(self.intervals)
        ]
        for interval in candidates:
            if interval.contains(angle):
                return SuggestionResult(
                    query=function,
                    satisfactory=True,
                    function=function,
                    angular_distance=0.0,
                )
        best_interval = min(self.intervals, key=lambda interval: interval.distance_to(angle))
        best_angle = best_interval.closest_angle_to(angle)
        # Interval endpoints are exact ordering-exchange angles, where the
        # ordering is tied and the oracle verdict is ambiguous; nudge the
        # suggestion slightly into the interval's interior so the returned
        # function provably induces the satisfactory ordering.
        width = best_interval.end - best_interval.start
        nudge = min(1e-7, 0.25 * width)
        if best_angle == best_interval.start:
            best_angle += nudge
        elif best_angle == best_interval.end:
            best_angle -= nudge
        suggestion = LinearScoringFunction(
            (radius * math.cos(best_angle), radius * math.sin(best_angle))
        )
        return SuggestionResult(
            query=function,
            satisfactory=False,
            function=suggestion,
            angular_distance=abs(angle - best_angle),
        )

    def query_many(self, weights_matrix) -> list[SuggestionResult]:
        """Answer a batch of queries, identically to looping :meth:`query`.

        The whole batch is classified with one ``searchsorted`` over the
        cached start-angle array; the nearest interval of each unsatisfactory
        query is then resolved with vectorised endpoint arithmetic (the
        sorted, disjoint intervals make the scan in :meth:`query` equivalent
        to comparing the two intervals adjacent to the insertion point).
        Every floating-point step reproduces the scalar path exactly, so the
        returned :class:`~repro.core.result.SuggestionResult` objects are
        bit-identical to a Python loop over :meth:`query`.

        Raises the same errors as :meth:`query` (empty index, wrong
        dimensionality), checked once for the whole batch.
        """
        matrix = np.asarray(weights_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != 2:
            raise GeometryError("query_many expects a (q, 2) weight matrix")
        if self.oracle_calls == 0 and not self.intervals:
            raise NotPreprocessedError("run TwoDRaySweep before issuing online queries")
        if not self.intervals:
            raise NoSatisfactoryFunctionError(
                "no scoring function satisfies the fairness constraint on this dataset"
            )
        rows = matrix.tolist()
        radii = np.sqrt(matrix[:, 0] * matrix[:, 0] + matrix[:, 1] * matrix[:, 1])
        angles = np.array([math.atan2(row[1], row[0]) for row in rows], dtype=float)

        starts = self._interval_starts
        ends = self._interval_ends
        n_intervals = len(starts)
        positions = np.searchsorted(starts, angles, side="right")
        has_left = positions > 0
        has_right = positions < n_intervals
        left = np.clip(positions - 1, 0, n_intervals - 1)
        right = np.clip(positions, 0, n_intervals - 1)
        tolerance = 1e-12
        in_left = has_left & (angles >= starts[left] - tolerance) & (angles <= ends[left] + tolerance)
        in_right = (
            has_right & (angles >= starts[right] - tolerance) & (angles <= ends[right] + tolerance)
        )
        satisfied = in_left | in_right

        # Nearest interval for the unsatisfied queries: ends (and starts) are
        # increasing, so the closest candidates are the intervals adjacent to
        # the insertion point; ties go left, matching min()'s first-wins scan.
        distance_left = np.where(has_left, angles - ends[left], np.inf)
        distance_right = np.where(has_right, starts[right] - angles, np.inf)
        choose_left = distance_left <= distance_right
        chosen = np.where(choose_left, left, right)
        chosen_start = starts[chosen]
        chosen_end = ends[chosen]
        endpoint = np.where(choose_left, chosen_end, chosen_start)
        nudge = np.minimum(1e-7, 0.25 * (chosen_end - chosen_start))
        best = np.where(
            endpoint == chosen_start,
            endpoint + nudge,
            np.where(endpoint == chosen_end, endpoint - nudge, endpoint),
        )
        distances = np.abs(angles - best)

        # One vectorised validation pass covers the whole batch, so the
        # result loop can use the trusted constructor; rows that would fail
        # validation go through the normal constructor and raise exactly what
        # the scalar path raises.
        trusted = bool(
            np.all(np.isfinite(matrix))
            and not np.any(matrix < 0)
            and np.all(np.any(matrix > 0, axis=1))
        )
        make_function = (
            LinearScoringFunction._from_trusted if trusted else LinearScoringFunction
        )
        results: list[SuggestionResult] = []
        satisfied_list = satisfied.tolist()
        radii_list = radii.tolist()
        best_list = best.tolist()
        distance_list = distances.tolist()
        append = results.append
        result_type, cos, sin = SuggestionResult, math.cos, math.sin
        for position, row in enumerate(rows):
            function = make_function((row[0], row[1]))
            if satisfied_list[position]:
                append(result_type(function, True, function, 0.0))
            else:
                radius = radii_list[position]
                best_angle = best_list[position]
                suggestion = make_function(
                    (radius * cos(best_angle), radius * sin(best_angle))
                )
                append(result_type(function, False, suggestion, distance_list[position]))
        return results


class TwoDRaySweep:
    """Offline indexing of satisfactory regions in 2-D (Algorithm 1, ``2DRAYSWEEP``).

    Parameters
    ----------
    dataset:
        A dataset with exactly two scoring attributes.
    oracle:
        The fairness oracle that labels orderings.
    use_incremental:
        When True (default) and the oracle implements the incremental-oracle
        protocol, sector verdicts are maintained in O(1) per swap instead of
        re-evaluating the oracle per sector.  Disable to force the black-box
        path (the reference behaviour benchmarks compare against).
    exchange_builder:
        Exchange-construction function (defaults to the vectorised
        :func:`~repro.geometry.dual.build_exchange_angles_2d`); benchmarks
        inject the scalar reference kernel here.
    """

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        use_incremental: bool = True,
        exchange_builder=None,
    ) -> None:
        if dataset.n_attributes != 2:
            raise GeometryError("TwoDRaySweep requires a dataset with exactly 2 scoring attributes")
        self.dataset = dataset
        self.oracle = oracle
        self.use_incremental = use_incremental
        self.exchange_builder = exchange_builder or build_exchange_angles_2d

    def run(self) -> TwoDIndex:
        """Sweep the ray from the x-axis to the y-axis and index satisfactory regions."""
        with stage_span("preprocess.exchange_build") as span:
            exchanges = sorted(self.exchange_builder(self.dataset))
            if span is not None:
                span.set("n_exchanges", len(exchanges))
        index = TwoDIndex(n_exchanges=len(exchanges))

        # Ordering at angle 0 (f = x): descending x, ties broken by descending y
        # (the order that holds for angles slightly above 0), then by item index.
        scores = self.dataset.scores
        n = self.dataset.n_items
        ordering = np.lexsort((np.arange(n), -scores[:, 1], -scores[:, 0])).tolist()
        position_of = {item: position for position, item in enumerate(ordering)}

        # Sector boundaries: 0, the grouped exchange angles, π/2.
        grouped: list[tuple[float, list[tuple[int, int]]]] = []
        for angle, i, j in exchanges:
            if grouped and abs(angle - grouped[-1][0]) <= _ANGLE_GROUP_TOLERANCE:
                grouped[-1][1].append((i, j))
            else:
                grouped.append((angle, [(i, j)]))

        incremental = as_incremental(self.oracle) if self.use_incremental else None
        if incremental is not None:
            incremental.begin(np.asarray(ordering, dtype=int), self.dataset)

            def evaluate_current() -> bool:
                index.oracle_calls += 1
                return incremental.verdict()

        else:

            def evaluate_current() -> bool:
                index.oracle_calls += 1
                return self.oracle.is_satisfactory(np.asarray(ordering, dtype=int), self.dataset)

        satisfactory_flags: list[bool] = []
        sector_bounds: list[tuple[float, float]] = []
        previous_angle = 0.0

        with stage_span(
            "preprocess.sweep",
            n_sectors=len(grouped) + 1,
            incremental=incremental is not None,
        ):
            for angle, pairs in grouped:
                if angle > previous_angle:
                    sector_bounds.append((previous_angle, angle))
                    satisfactory_flags.append(evaluate_current())
                    previous_angle = angle
                for i, j in pairs:
                    position_i, position_j = position_of[i], position_of[j]
                    ordering[position_i], ordering[position_j] = ordering[position_j], ordering[position_i]
                    position_of[i], position_of[j] = position_j, position_i
                    if incremental is not None:
                        incremental.apply_swap(position_i, position_j)
            sector_bounds.append((previous_angle, HALF_PI))
            satisfactory_flags.append(evaluate_current())

        with stage_span("preprocess.interval_build") as span:
            index.intervals = _merge_sectors(sector_bounds, satisfactory_flags)
            if span is not None:
                span.set("n_intervals", len(index.intervals))
        return index


def _merge_sectors(
    bounds: list[tuple[float, float]], flags: list[bool]
) -> list[AngularInterval]:
    """Merge consecutive satisfactory sectors into maximal intervals."""
    intervals: list[AngularInterval] = []
    current_start: float | None = None
    current_end: float | None = None
    for (start, end), satisfactory in zip(bounds, flags):
        if satisfactory:
            if current_start is None:
                current_start, current_end = start, end
            else:
                current_end = end
        else:
            if current_start is not None:
                intervals.append(AngularInterval(current_start, current_end))
                current_start = current_end = None
    if current_start is not None:
        intervals.append(AngularInterval(current_start, current_end))
    return intervals


def two_d_online(index: TwoDIndex, function: LinearScoringFunction) -> SuggestionResult:
    """Functional alias of :meth:`TwoDIndex.query` matching the paper's ``2DONLINE`` name."""
    return index.query(function)
