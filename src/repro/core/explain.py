"""Explanations of what a suggested weight repair actually changes.

A suggested function is only useful to a human designer if she can see *why*
her proposal was rejected and *what* the repair does to the outcome.  This
module turns a :class:`~repro.core.result.SuggestionResult` into that story:

* which items enter and leave the top-``k`` when moving from the proposed
  weights to the suggested ones,
* how the per-group composition of the top-``k`` shifts for every type
  attribute, and
* how each attribute's weight changes (after normalising both vectors to unit
  length, since only the direction matters).

The report is a plain dataclass plus a text renderer, so it can be printed in
a terminal session, logged, or attached to a :class:`~repro.core.session.DesignSession`
audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.ranking.scoring import LinearScoringFunction
from repro.ranking.topk import group_counts_at_k, resolve_k

__all__ = ["TopKDelta", "RepairExplanation", "explain_repair", "format_explanation"]


@dataclass(frozen=True)
class TopKDelta:
    """How the top-``k`` changes between two scoring functions.

    Attributes
    ----------
    k:
        Size of the compared prefix.
    entering:
        Item indices present in the suggestion's top-``k`` but not the query's,
        in the suggestion's rank order.
    leaving:
        Item indices present in the query's top-``k`` but not the suggestion's,
        in the query's rank order.
    staying:
        Number of items common to both prefixes.
    """

    k: int
    entering: tuple[int, ...]
    leaving: tuple[int, ...]
    staying: int

    @property
    def turnover(self) -> float:
        """Fraction of the top-``k`` that changed (0 = identical prefixes)."""
        if self.k == 0:
            return 0.0
        return len(self.entering) / self.k


@dataclass(frozen=True)
class RepairExplanation:
    """Full explanation of a weight repair.

    Attributes
    ----------
    result:
        The suggestion being explained.
    k:
        The top-``k`` size the explanation refers to.
    weight_changes:
        Per-attribute change of the unit-normalised weights
        (``suggested - proposed``), keyed by attribute name.
    delta:
        The :class:`TopKDelta` between the two prefixes.
    group_counts_before, group_counts_after:
        Per type attribute, the group counts in the query's / suggestion's
        top-``k``.
    """

    result: SuggestionResult
    k: int
    weight_changes: Mapping[str, float]
    delta: TopKDelta
    group_counts_before: Mapping[str, Mapping[object, int]]
    group_counts_after: Mapping[str, Mapping[object, int]]


def _unit(weights: np.ndarray) -> np.ndarray:
    return weights / np.linalg.norm(weights)


def _topk_delta(
    dataset: Dataset,
    query: LinearScoringFunction,
    suggestion: LinearScoringFunction,
    k: int,
) -> TopKDelta:
    query_top = [int(item) for item in query.top_k(dataset, k)]
    suggested_top = [int(item) for item in suggestion.top_k(dataset, k)]
    query_set = set(query_top)
    suggested_set = set(suggested_top)
    entering = tuple(item for item in suggested_top if item not in query_set)
    leaving = tuple(item for item in query_top if item not in suggested_set)
    return TopKDelta(
        k=k,
        entering=entering,
        leaving=leaving,
        staying=len(query_set & suggested_set),
    )


def explain_repair(
    dataset: Dataset,
    result: SuggestionResult,
    k: int | float,
) -> RepairExplanation:
    """Explain what the suggested repair changes about the top-``k``.

    Parameters
    ----------
    dataset:
        The dataset the suggestion refers to.
    result:
        A :class:`~repro.core.result.SuggestionResult` (from any pipeline).
    k:
        The top-``k`` size to explain (count or fraction of the dataset).

    Raises
    ------
    ConfigurationError
        If the result's functions do not match the dataset's dimensionality.
    """
    if result.query.dimension != dataset.n_attributes:
        raise ConfigurationError(
            "the suggestion's query does not match the dataset's scoring attributes"
        )
    resolved_k = resolve_k(dataset, k)
    query_unit = _unit(result.query.as_array())
    suggested_unit = _unit(result.function.as_array())
    weight_changes = {
        attribute: float(suggested_unit[index] - query_unit[index])
        for index, attribute in enumerate(dataset.scoring_attributes)
    }
    delta = _topk_delta(dataset, result.query, result.function, resolved_k)
    query_ordering = result.query.order(dataset)
    suggested_ordering = result.function.order(dataset)
    before = {
        attribute: group_counts_at_k(dataset, query_ordering, attribute, resolved_k)
        for attribute in dataset.type_attributes
    }
    after = {
        attribute: group_counts_at_k(dataset, suggested_ordering, attribute, resolved_k)
        for attribute in dataset.type_attributes
    }
    return RepairExplanation(
        result=result,
        k=resolved_k,
        weight_changes=weight_changes,
        delta=delta,
        group_counts_before=before,
        group_counts_after=after,
    )


def format_explanation(explanation: RepairExplanation, max_items: int = 10) -> str:
    """Render a repair explanation as a plain-text report.

    Parameters
    ----------
    explanation:
        The explanation to render.
    max_items:
        At most this many entering/leaving item indices are listed explicitly.
    """
    result = explanation.result
    lines = []
    if result.satisfactory:
        lines.append("The proposed weights already satisfy the fairness constraint.")
        return "\n".join(lines)

    lines.append(
        f"The proposed weights violate the constraint; the closest fair weights are "
        f"{tuple(round(value, 4) for value in result.function.weights)} "
        f"({result.angular_distance:.4f} rad away)."
    )
    lines.append("")
    lines.append("weight changes (unit-normalised, suggested - proposed):")
    width = max(len(name) for name in explanation.weight_changes)
    for attribute, change in explanation.weight_changes.items():
        lines.append(f"  {attribute.ljust(width)}  {change:+.4f}")

    delta = explanation.delta
    lines.append("")
    lines.append(
        f"top-{delta.k} turnover: {len(delta.entering)} items enter, "
        f"{len(delta.leaving)} leave, {delta.staying} stay "
        f"({delta.turnover:.0%} of the prefix changes)."
    )
    if delta.entering:
        shown = ", ".join(str(item) for item in delta.entering[:max_items])
        suffix = ", ..." if len(delta.entering) > max_items else ""
        lines.append(f"  entering: {shown}{suffix}")
    if delta.leaving:
        shown = ", ".join(str(item) for item in delta.leaving[:max_items])
        suffix = ", ..." if len(delta.leaving) > max_items else ""
        lines.append(f"  leaving:  {shown}{suffix}")

    for attribute in explanation.group_counts_before:
        before = explanation.group_counts_before[attribute]
        after = explanation.group_counts_after[attribute]
        groups = sorted(set(before) | set(after), key=str)
        changes = []
        for group in groups:
            before_count = before.get(group, 0)
            after_count = after.get(group, 0)
            if before_count != after_count:
                changes.append(f"{group}: {before_count} -> {after_count}")
        if changes:
            lines.append(f"group counts in the top-{delta.k} by {attribute!r}: " + ", ".join(changes))
    return "\n".join(lines)
