"""Result objects returned by the online query-answering algorithms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ranking.scoring import LinearScoringFunction

__all__ = ["SuggestionResult"]


@dataclass(frozen=True)
class SuggestionResult:
    """Answer to a CLOSEST SATISFACTORY FUNCTION query.

    Attributes
    ----------
    query:
        The scoring function the user proposed.
    satisfactory:
        True if the query itself already satisfies the fairness oracle (in
        which case ``function`` equals the query and the distance is zero).
    function:
        The suggested satisfactory scoring function (the query itself when it
        is already satisfactory).
    angular_distance:
        Angular distance, in radians, between the query and the suggestion.
    """

    query: LinearScoringFunction
    satisfactory: bool
    function: LinearScoringFunction
    angular_distance: float

    def cosine_similarity(self) -> float:
        """Cosine similarity between the query and the suggestion (1 = identical ray)."""
        import math

        return math.cos(self.angular_distance)
