"""The unified query-engine API: pluggable pipelines behind one protocol.

The paper's system is an offline-preprocess / online-serve split: preprocess a
dataset against a fairness oracle once, then answer CLOSEST SATISFACTORY
FUNCTION queries in interactive time.  Each of the three pipelines implements
that split differently (§3 ray sweep in 2-D, §4 ``SATREGIONS`` exactly in any
dimension, §5 grid approximation), but a serving system should not care which
one is behind a query.  This module gives every pipeline the same shape:

* a typed configuration dataclass (:class:`TwoDConfig`, :class:`ExactConfig`,
  :class:`ApproxConfig`) instead of a grab-bag of keyword arguments;
* a :class:`QueryEngine` with ``preprocess`` / ``suggest`` / ``suggest_many``
  / ``capabilities`` and ``to_payload`` / ``from_payload`` persistence hooks;
* a registry keyed by engine name, so facades (and later shards / async
  servers) dispatch on data instead of ``isinstance`` checks.

``suggest_many`` is the batch entry point for serving-shaped workloads: the
2-D engine classifies a whole weight matrix with one ``searchsorted`` over the
cached interval-start array, and the approximate engine answers the per-query
oracle pre-check through the batched oracle protocol
(:mod:`repro.fairness.batched`) and locates all unsatisfactory queries' cells
in vectorised chunks.  Both return exactly what a Python loop over ``suggest``
would — same objects, bit-identical numbers — so batching is a pure
throughput optimisation.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.core.approx import ApproximatePreprocessor, MDApproxIndex, md_online
from repro.core.maintenance import DatasetDelta, MaintenanceReport, maintain_hyperplanes
from repro.core.multi_dim import MDExactIndex, SatRegions, md_baseline
from repro.core.result import SuggestionResult
from repro.core.two_dim import TwoDIndex, TwoDRaySweep
from repro.data.dataset import Dataset
from repro.data.dominance import exchange_pairs_touching
from repro.exceptions import (
    ConfigurationError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.batched import evaluate_functions_many
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import to_angles_many, to_weights
from repro.geometry.cellplane import merged_cell_plane_index
from repro.geometry.dual import (
    build_exchange_angles_2d,
    exchange_angles_for_pairs,
    hyperpolar_many,
)
from repro.geometry.partition import locate_cells
from repro.obs.trace import stage_span
from repro.ranking.scoring import LinearScoringFunction

__all__ = [
    "TwoDConfig",
    "ExactConfig",
    "ApproxConfig",
    "EngineCapabilities",
    "QueryEngine",
    "TwoDEngine",
    "ExactEngine",
    "ApproxEngine",
    "register_engine",
    "get_engine",
    "available_engines",
    "engine_name_for_config",
    "create_engine",
    "engine_from_payload",
    "ENGINE_FORMAT",
]

#: Schema identifier written into every serialised engine payload.
ENGINE_FORMAT = "repro.engine/v1"


# --------------------------------------------------------------------------- #
# typed per-pipeline configurations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TwoDConfig:
    """Configuration of the 2-D ray-sweep pipeline (§3).

    Attributes
    ----------
    sample_size:
        If given, preprocessing runs on a uniform sample of this size (§5.4).
    sample_seed:
        Seed of the preprocessing sample draw.
    use_incremental:
        Maintain sector verdicts incrementally when the oracle supports the
        incremental protocol (see :mod:`repro.fairness.incremental`).
    preprocess_workers:
        Worker processes for the exchange enumeration (``1`` = serial; see
        :mod:`repro.parallel` — the sharded path is bit-identical).
    staleness_fraction:
        Largest fraction of the dataset one :class:`~repro.core.maintenance.DatasetDelta`
        may mutate before ``apply_delta`` abandons incremental maintenance and
        rebuilds the index from scratch.

    >>> TwoDConfig().use_incremental
    True
    >>> TwoDConfig(staleness_fraction=1.5)
    Traceback (most recent call last):
        ...
    repro.exceptions.ConfigurationError: staleness_fraction must be in [0, 1], got 1.5
    """

    sample_size: int | None = None
    sample_seed: int = 0
    use_incremental: bool = True
    preprocess_workers: int = 1
    staleness_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.preprocess_workers < 1:
            raise ConfigurationError(
                f"preprocess_workers must be >= 1, got {self.preprocess_workers}"
            )
        _check_staleness_fraction(self.staleness_fraction)


@dataclass(frozen=True)
class ExactConfig:
    """Configuration of the exact ``SATREGIONS`` + ``MDBASELINE`` pipeline (§4).

    ``hyperplane_method`` selects how the exchange hyperplanes are built:
    ``"batched"`` (default, the stacked :func:`~repro.geometry.dual.hyperpolar_many`
    kernel) or ``"scalar"`` (the bit-identical per-pair reference loop).

    >>> ExactConfig().hyperplane_method
    'batched'
    """

    max_hyperplanes: int | None = None
    convex_layer_k: int | None = None
    use_arrangement_tree: bool = True
    sample_size: int | None = None
    sample_seed: int = 0
    hyperplane_method: str = "batched"
    preprocess_workers: int = 1
    staleness_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.hyperplane_method not in ("batched", "scalar"):
            raise ConfigurationError(
                f"hyperplane_method must be 'batched' or 'scalar', "
                f"got {self.hyperplane_method!r}"
            )
        if self.preprocess_workers < 1:
            raise ConfigurationError(
                f"preprocess_workers must be >= 1, got {self.preprocess_workers}"
            )
        _check_staleness_fraction(self.staleness_fraction)


@dataclass(frozen=True)
class ApproxConfig:
    """Configuration of the approximate grid pipeline (§5).

    ``partition`` is the name of a built-in partition backend (``"uniform"``
    or ``"angle"``); power users who need a custom partition object can drive
    :class:`~repro.core.approx.ApproximatePreprocessor` directly.

    >>> ApproxConfig(n_cells=256).partition
    'uniform'
    >>> ApproxConfig(n_cells=0)
    Traceback (most recent call last):
        ...
    repro.exceptions.ConfigurationError: n_cells must be >= 1
    """

    n_cells: int = 1024
    partition: str = "uniform"
    max_hyperplanes: int | None = None
    convex_layer_k: int | None = None
    sample_size: int | None = None
    sample_seed: int = 0
    hyperplane_method: str = "batched"
    preprocess_workers: int = 1
    staleness_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ConfigurationError("n_cells must be >= 1")
        if self.partition not in ("uniform", "angle"):
            raise ConfigurationError(
                f"partition must be 'uniform' or 'angle', got {self.partition!r}"
            )
        if self.hyperplane_method not in ("batched", "scalar"):
            raise ConfigurationError(
                f"hyperplane_method must be 'batched' or 'scalar', "
                f"got {self.hyperplane_method!r}"
            )
        if self.preprocess_workers < 1:
            raise ConfigurationError(
                f"preprocess_workers must be >= 1, got {self.preprocess_workers}"
            )
        _check_staleness_fraction(self.staleness_fraction)


def _check_staleness_fraction(value: float) -> None:
    """Shared validation of the configs' incremental-maintenance threshold."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"staleness_fraction must be in [0, 1], got {value}")


EngineConfig = TwoDConfig | ExactConfig | ApproxConfig


@dataclass(frozen=True)
class EngineCapabilities:
    """What a pipeline can do, for dispatch and serving decisions.

    Attributes
    ----------
    name:
        Registry name of the engine.
    exact:
        True when answers are exact (no Theorem 6 style approximation slack).
    min_attributes, max_attributes:
        Dataset dimensionalities the engine accepts (``None`` = unbounded).
    batched:
        True when ``suggest_many`` is natively batched rather than an
        internal loop over ``suggest``.
    persistable:
        True when ``to_payload`` / ``from_payload`` round-trip the engine.
    """

    name: str
    exact: bool
    min_attributes: int
    max_attributes: int | None
    batched: bool
    persistable: bool = True

    def supports_dimension(self, n_attributes: int) -> bool:
        """True if the engine can index a dataset with this many scoring attributes.

        >>> TwoDEngine.capabilities().supports_dimension(2)
        True
        >>> TwoDEngine.capabilities().supports_dimension(3)
        False
        >>> ExactEngine.capabilities().supports_dimension(7)
        True
        """
        if n_attributes < self.min_attributes:
            return False
        return self.max_attributes is None or n_attributes <= self.max_attributes


# --------------------------------------------------------------------------- #
# the engine protocol and registry
# --------------------------------------------------------------------------- #
@runtime_checkable
class QueryEngine(Protocol):
    """Protocol every registered pipeline engine implements."""

    dataset: Dataset
    oracle: FairnessOracle

    def preprocess(
        self, dataset: Dataset | None = None, oracle: FairnessOracle | None = None
    ) -> "QueryEngine":
        """Run the offline phase; returns the engine for chaining."""

    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        """Answer one CLOSEST SATISFACTORY FUNCTION query."""

    def suggest_many(self, weights_matrix: np.ndarray) -> list[SuggestionResult]:
        """Answer a batch of queries, identically to looping :meth:`suggest`."""

    def apply_delta(self, delta: DatasetDelta) -> MaintenanceReport:
        """Apply one batch of item mutations, maintaining the index in place."""

    def refresh(self) -> MaintenanceReport:
        """Re-run the oracle-dependent stages over the engine's cached geometry."""

    def capabilities(self) -> EngineCapabilities:
        """Static description of what the engine supports."""

    def to_payload(self) -> dict[str, Any]:
        """Serialise the preprocessed engine to a JSON-compatible payload."""

    @classmethod
    def from_payload(cls, payload: dict[str, Any], oracle: FairnessOracle) -> "QueryEngine":
        """Rebuild a preprocessed engine from :meth:`to_payload` output."""


_ENGINE_REGISTRY: dict[str, type] = {}
_CONFIG_TO_NAME: dict[type, str] = {}

_PLUGINS_LOADED: bool = False


def _load_builtin_plugins() -> None:
    """Import engine modules that live outside this one (lazily, once).

    The resilience layer registers its :class:`FallbackEngine` through the
    ordinary registry but imports this module to do so; deferring its import
    to the first registry *lookup* keeps the modules acyclic while making
    ``"fallback"`` a first-class registered engine.
    """
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED:
        return
    _PLUGINS_LOADED = True
    import repro.resilience.fallback  # noqa: F401  (registers on import)
    import repro.obs.instrument  # noqa: F401  (registers on import)
    import repro.parallel.pool  # noqa: F401  (registers on import)


def register_engine(name: str, config_type: type) -> Callable[[type], type]:
    """Class decorator registering an engine under ``name`` with its config type."""

    def decorate(cls: type) -> type:
        if name in _ENGINE_REGISTRY:
            raise ConfigurationError(f"engine {name!r} is already registered")
        cls.name = name
        cls.config_type = config_type
        _ENGINE_REGISTRY[name] = cls
        _CONFIG_TO_NAME[config_type] = name
        return cls

    return decorate


def available_engines() -> tuple[str, ...]:
    """Names of all registered engines (in registration order, which depends
    on which plugin modules were imported first — sort for a stable view).

    >>> sorted(available_engines())
    ['2d', 'approximate', 'exact', 'fallback', 'instrumented', 'pool']
    """
    _load_builtin_plugins()
    return tuple(_ENGINE_REGISTRY)


def get_engine(name: str) -> type:
    """Look up an engine class by registry name.

    >>> get_engine("2d").__name__
    'TwoDEngine'
    """
    _load_builtin_plugins()
    try:
        return _ENGINE_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: {sorted(_ENGINE_REGISTRY)}"
        ) from None


def engine_name_for_config(config: EngineConfig) -> str:
    """Map a typed config to the engine name it configures.

    >>> engine_name_for_config(ApproxConfig())
    'approximate'
    """
    _load_builtin_plugins()
    try:
        return _CONFIG_TO_NAME[type(config)]
    except KeyError:
        raise ConfigurationError(
            f"{type(config).__name__} is not a registered engine configuration"
        ) from None


def create_engine(
    dataset: Dataset, oracle: FairnessOracle, config: EngineConfig
) -> "QueryEngine":
    """Instantiate the engine a typed config selects, validating the dataset."""
    return get_engine(engine_name_for_config(config))(dataset, oracle, config)


def engine_from_payload(payload: dict[str, Any], oracle: FairnessOracle) -> "QueryEngine":
    """Rebuild a preprocessed engine from a serialised payload, dispatching on its name."""
    if not isinstance(payload, dict) or payload.get("format") != ENGINE_FORMAT:
        raise ConfigurationError(
            f"payload is not a serialised engine (expected format {ENGINE_FORMAT!r})"
        )
    return get_engine(str(payload.get("engine"))).from_payload(payload, oracle)


# --------------------------------------------------------------------------- #
# shared engine machinery
# --------------------------------------------------------------------------- #
class _EngineBase:
    """Common preprocess / batching / persistence scaffolding of the engines."""

    name: str
    config_type: type

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        config: EngineConfig | None = None,
    ) -> None:
        config = config if config is not None else self.config_type()
        if not isinstance(config, self.config_type):
            raise ConfigurationError(
                f"{type(self).__name__} expects a {self.config_type.__name__}, "
                f"got {type(config).__name__}"
            )
        capabilities = self.capabilities()
        if not capabilities.supports_dimension(dataset.n_attributes):
            bound = (
                f"exactly {capabilities.min_attributes}"
                if capabilities.max_attributes == capabilities.min_attributes
                else f"at least {capabilities.min_attributes}"
            )
            raise ConfigurationError(
                f"engine {capabilities.name!r} requires {bound} scoring attributes; "
                f"the dataset has {dataset.n_attributes}"
            )
        self.dataset = dataset
        self.oracle = oracle
        self.config = config
        self._index: Any = None
        self._preprocessing_dataset: Dataset | None = None
        self._journal: list[DatasetDelta] = []
        self._base_payload: dict[str, Any] | None = None

    # -- offline phase ------------------------------------------------- #
    def preprocess(
        self, dataset: Dataset | None = None, oracle: FairnessOracle | None = None
    ) -> "_EngineBase":
        """Run the offline phase (optionally rebinding dataset/oracle first)."""
        if dataset is not None:
            self.dataset = dataset
        if oracle is not None:
            self.oracle = oracle
        working = self.dataset
        sample_size = self.config.sample_size
        if sample_size is not None and sample_size < working.n_items:
            working = working.sample(sample_size, seed=self.config.sample_seed)
        self._preprocessing_dataset = working
        self._index = self._build_index(working)
        return self

    def _build_index(self, working: Dataset) -> Any:
        raise NotImplementedError

    # -- maintenance (the build-and-maintain lifecycle) ------------------ #
    def apply_delta(self, delta: DatasetDelta) -> MaintenanceReport:
        """Apply one batch of item mutations, maintaining the index in place.

        The maintained engine is *bit-identical* — same answers, same
        oracle-call budget, same persisted payload bytes — to a from-scratch
        :meth:`preprocess` on ``delta.apply(self.dataset)``.  Small deltas on
        eligible engines run the incremental geometry paths; a delta mutating
        more than ``config.staleness_fraction`` of the dataset (or an engine
        without its geometry caches, e.g. one rebuilt from a payload) falls
        back to a full rebuild.  Applied deltas are journaled so
        :func:`repro.io.index_store.save_engine` can persist a base snapshot
        plus the delta log.
        """
        if not isinstance(delta, DatasetDelta):
            raise ConfigurationError(
                f"apply_delta expects a DatasetDelta, got {type(delta).__name__}"
            )
        if self._index is None:
            raise NotPreprocessedError("preprocess() before applying dataset deltas")
        if delta.is_empty:
            return MaintenanceReport(engine=self.name, strategy="noop")
        fraction = delta.staleness_fraction(self.dataset.n_items)
        mutated = delta.apply(self.dataset)
        if (
            self._base_payload is None
            and not self._journal
            and self.config.sample_size is None
            and self.capabilities().persistable
        ):
            # Snapshot the pre-delta engine once, before the first mutation:
            # the journaled payload format replays the delta log against it.
            self._base_payload = self.to_payload()
        with stage_span(
            "maintenance.apply_delta", engine=self.name, n_changes=delta.n_changes
        ) as span:
            if fraction > self.config.staleness_fraction or not self._supports_incremental(
                delta
            ):
                strategy = "rebuild"
                details = self._rebuild_on(mutated)
            else:
                strategy = "incremental"
                details = self._apply_delta_incremental(delta, mutated)
            if span is not None:
                span.set("strategy", strategy)
        self._journal.append(delta)
        return MaintenanceReport(
            engine=self.name,
            strategy=strategy,
            n_inserted=delta.n_inserted,
            n_deleted=delta.n_deleted,
            n_updated=delta.n_updated,
            staleness_fraction=fraction,
            details=details,
        )

    def refresh(self) -> MaintenanceReport:
        """Re-run the oracle-dependent stages over the engine's cached geometry.

        The partial-refresh hook the freshness monitors drive
        (:func:`repro.core.monitoring.refresh_if_stale`): oracle verdicts are
        re-evaluated in full — they are data- and oracle-state-dependent —
        but the oracle-free geometry (exchange angles, hyperplanes, cell-plane
        assignments, the arrangement tree) is reused from the engine's caches.
        Engines without caches (e.g. loaded from a payload) rebuild.
        """
        if self._index is None:
            raise NotPreprocessedError("preprocess() before refreshing")
        with stage_span("maintenance.refresh", engine=self.name):
            self._refresh_index()
        return MaintenanceReport(engine=self.name, strategy="refresh")

    def _supports_incremental(self, delta: DatasetDelta) -> bool:
        """True when this engine can maintain its index incrementally for ``delta``."""
        return False

    def _apply_delta_incremental(self, delta: DatasetDelta, mutated: Dataset) -> dict[str, Any]:
        raise NotImplementedError  # only reachable when _supports_incremental lies

    def _rebuild_on(self, mutated: Dataset) -> dict[str, Any]:
        """Full-rebuild fallback: preprocess from scratch on the mutated dataset."""
        self.dataset = mutated
        self.preprocess()
        return {"n_items": mutated.n_items}

    def _refresh_index(self) -> None:
        """Default refresh: rebuild the index on the preprocessing dataset."""
        self._index = self._build_index(self.preprocessing_dataset)

    @property
    def journal(self) -> tuple[DatasetDelta, ...]:
        """Deltas applied since preprocessing (the journaled payload's delta log)."""
        return tuple(self._journal)

    @property
    def base_payload(self) -> dict[str, Any] | None:
        """Engine payload captured before the first delta (None when unavailable).

        Sampled engines never capture a base snapshot: their persisted
        preprocessing dataset is the sample, so a replayed delta log could not
        be applied against the full pre-delta dataset.  They persist
        snapshot-only (``save_engine(..., journaled=False)``).
        """
        return self._base_payload

    @property
    def is_preprocessed(self) -> bool:
        """True once :meth:`preprocess` has run (or the engine was loaded)."""
        return self._index is not None

    @property
    def index(self) -> Any:
        """The underlying offline index (engine specific)."""
        if self._index is None:
            raise NotPreprocessedError("call preprocess() first")
        return self._index

    @property
    def preprocessing_dataset(self) -> Dataset:
        """The dataset the index was built on (the sample when sampling was used)."""
        if self._preprocessing_dataset is None:
            raise NotPreprocessedError("call preprocess() first")
        return self._preprocessing_dataset

    # -- online phase --------------------------------------------------- #
    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        raise NotImplementedError

    def suggest_many(
        self, weights_matrix: np.ndarray | Sequence[Sequence[float]]
    ) -> list[SuggestionResult]:
        """Fallback batch answering: a loop over :meth:`suggest`.

        Engines with a native batched path override this; the loop is the
        reference semantics every override must reproduce exactly.
        """
        matrix = self._as_matrix(weights_matrix)
        return [
            self.suggest(LinearScoringFunction(tuple(row))) for row in matrix.tolist()
        ]

    def _as_matrix(
        self, weights_matrix: np.ndarray | Sequence[Sequence[float]]
    ) -> np.ndarray:
        matrix = np.asarray(weights_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dataset.n_attributes:
            raise ConfigurationError(
                f"suggest_many expects a (q, {self.dataset.n_attributes}) weight matrix, "
                f"got shape {matrix.shape}"
            )
        return matrix

    # -- persistence ----------------------------------------------------- #
    def to_payload(self) -> dict[str, Any]:
        """Serialise config + index + preprocessing dataset to a JSON-compatible dict.

        The preprocessing dataset (the sample, when sampling was used) is
        embedded so a loaded engine answers bit-identically to the engine that
        was saved — the exact pipeline re-orders it per query, and the
        approximate pipeline re-checks queries against it.
        """
        from repro.io.dataset_json import dataset_to_dict

        return {
            "format": ENGINE_FORMAT,
            "engine": self.name,
            "config": asdict(self.config),
            "index": self._index_to_dict(),
            "preprocessing_dataset": dataset_to_dict(self.preprocessing_dataset),
        }

    def _index_to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict[str, Any], oracle: FairnessOracle) -> "_EngineBase":
        """Rebuild a preprocessed engine from :meth:`to_payload` output."""
        from repro.io.dataset_json import dataset_from_dict

        if not isinstance(payload, dict) or payload.get("format") != ENGINE_FORMAT:
            raise ConfigurationError(
                f"payload is not a serialised engine (expected format {ENGINE_FORMAT!r})"
            )
        if payload.get("engine") != cls.name:
            raise ConfigurationError(
                f"payload holds a {payload.get('engine')!r} engine, expected {cls.name!r}"
            )
        config_payload = payload.get("config", {})
        known = {field.name for field in fields(cls.config_type)}
        unknown = sorted(set(config_payload) - known)
        if unknown:
            warnings.warn(
                f"ignoring unknown {cls.config_type.__name__} key(s) in the engine "
                f"payload: {', '.join(unknown)} (the payload may come from a newer "
                "version of this library)",
                UserWarning,
                stacklevel=2,
            )
        config = cls.config_type(
            **{key: value for key, value in config_payload.items() if key in known}
        )
        dataset = dataset_from_dict(payload["preprocessing_dataset"])
        engine = cls(dataset, oracle, config)
        engine._preprocessing_dataset = dataset
        engine._index = engine._index_from_dict(payload["index"], dataset, oracle)
        return engine

    def _index_from_dict(
        self, payload: dict[str, Any], dataset: Dataset, oracle: FairnessOracle
    ) -> Any:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# the three pipeline engines
# --------------------------------------------------------------------------- #
@register_engine("2d", TwoDConfig)
class TwoDEngine(_EngineBase):
    """The §3 pipeline: ``2DRAYSWEEP`` offline, ``2DONLINE`` online."""

    def _build_index(self, working: Dataset) -> TwoDIndex:
        base_builder = build_exchange_angles_2d
        if self.config.preprocess_workers > 1:
            from repro.parallel.preprocess import make_parallel_exchange_builder

            base_builder = make_parallel_exchange_builder(
                self.config.preprocess_workers
            )
        # Capture the exchange triples the sweep consumed: they are the
        # oracle-free geometry apply_delta() maintains incrementally.
        captured: dict[str, list[tuple[float, int, int]]] = {}

        def capturing_builder(dataset: Dataset) -> list[tuple[float, int, int]]:
            triples = list(base_builder(dataset))
            captured["triples"] = triples
            return triples

        index = TwoDRaySweep(
            working,
            self.oracle,
            use_incremental=self.config.use_incremental,
            exchange_builder=capturing_builder,
        ).run()
        self._exchange_triples: list[tuple[float, int, int]] | None = sorted(
            captured["triples"]
        )
        return index

    def _supports_incremental(self, delta: DatasetDelta) -> bool:
        return (
            self.config.sample_size is None
            and getattr(self, "_exchange_triples", None) is not None
        )

    def _apply_delta_incremental(self, delta: DatasetDelta, mutated: Dataset) -> dict[str, Any]:
        """Re-sweep only the exchange pairs touching changed items.

        Pairs between untouched items keep their exchange angles verbatim
        (eligibility and angle are functions of the two score rows alone);
        pairs touching an updated, deleted or inserted item are dropped and
        re-derived with the same vectorised kernels the full build uses, so
        the merged triple set — and therefore the re-run sweep — is
        bit-identical to a from-scratch build on the mutated dataset.
        """
        mapping = delta.index_map(self.dataset.n_items)
        touched = delta.touched_new_indices(self.dataset.n_items, mutated.n_items)
        retained: list[tuple[float, int, int]] = []
        for angle, i, j in self._exchange_triples:
            new_i = mapping.get(i)
            new_j = mapping.get(j)
            if new_i is None or new_j is None or new_i in touched or new_j in touched:
                continue
            retained.append((angle, new_i, new_j))
        pairs = exchange_pairs_touching(mutated.scores, touched)
        fresh = exchange_angles_for_pairs(mutated.scores, pairs)
        merged = sorted(retained + fresh)
        self.dataset = mutated
        self._preprocessing_dataset = mutated
        self._index = TwoDRaySweep(
            mutated,
            self.oracle,
            use_incremental=self.config.use_incremental,
            exchange_builder=lambda dataset: list(merged),
        ).run()
        self._exchange_triples = merged
        return {
            "n_retained_exchanges": len(retained),
            "n_fresh_exchanges": len(fresh),
        }

    def _refresh_index(self) -> None:
        triples = getattr(self, "_exchange_triples", None)
        if triples is None:
            super()._refresh_index()
            return
        self._index = TwoDRaySweep(
            self.preprocessing_dataset,
            self.oracle,
            use_incremental=self.config.use_incremental,
            exchange_builder=lambda dataset: list(triples),
        ).run()

    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        return self.index.query(function)

    def suggest_many(
        self, weights_matrix: np.ndarray | Sequence[Sequence[float]]
    ) -> list[SuggestionResult]:
        """Batched ``2DONLINE``: one ``searchsorted`` classifies the whole batch."""
        return self.index.query_many(self._as_matrix(weights_matrix))

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            name="2d", exact=True, min_attributes=2, max_attributes=2, batched=True
        )

    def _index_to_dict(self) -> dict[str, Any]:
        from repro.io.index_store import two_d_index_to_dict

        return two_d_index_to_dict(self.index)

    def _index_from_dict(
        self, payload: dict[str, Any], dataset: Dataset, oracle: FairnessOracle
    ) -> TwoDIndex:
        from repro.io.index_store import two_d_index_from_dict

        return two_d_index_from_dict(payload)


@register_engine("exact", ExactConfig)
class ExactEngine(_EngineBase):
    """The §4 pipeline: ``SATREGIONS`` offline, ``MDBASELINE`` online."""

    def _build_index(self, working: Dataset) -> MDExactIndex:
        builder = SatRegions(
            working,
            self.oracle,
            use_arrangement_tree=self.config.use_arrangement_tree,
            max_hyperplanes=self.config.max_hyperplanes,
            convex_layer_k=self.config.convex_layer_k,
            hyperplane_method=self.config.hyperplane_method,
            preprocess_workers=self.config.preprocess_workers,
        )
        index = builder.run()
        # Cache the canonical hyperplane list and the arrangement tree: an
        # insert-only delta extends the tree instead of rebuilding it.
        self._exact_hyperplanes = builder.hyperplanes_
        self._exact_tree = builder.tree_
        return index

    def _supports_incremental(self, delta: DatasetDelta) -> bool:
        # The arrangement tree is cached across *insertions* only: deletes and
        # updates would have to unsplit interior nodes, so they rebuild.
        return (
            delta.insert_only
            and self.config.sample_size is None
            and self.config.max_hyperplanes is None
            and self.config.convex_layer_k is None
            and self.config.use_arrangement_tree
            and getattr(self, "_exact_tree", None) is not None
            and getattr(self, "_exact_hyperplanes", None) is not None
        )

    def _apply_delta_incremental(self, delta: DatasetDelta, mutated: Dataset) -> dict[str, Any]:
        """Extend the cached arrangement tree with the inserted items' hyperplanes.

        ``SatRegions`` inserts hyperplanes in the canonical ``(j, i)`` label
        order, so every pair touching an appended item — its larger index is
        always ``>= n_before`` — sorts after every existing pair: the fresh
        hyperplanes extend the cached tree exactly as a from-scratch build on
        the mutated dataset would insert them.  Only the (oracle-dependent)
        region evaluation re-runs in full.
        """
        touched = delta.touched_new_indices(self.dataset.n_items, mutated.n_items)
        pairs = exchange_pairs_touching(mutated.scores, touched)
        fresh = hyperpolar_many(mutated.scores, pairs) if pairs.shape[0] else []
        fresh.sort(key=lambda plane: (plane.label[1], plane.label[0]))
        tree = self._exact_tree
        for plane in fresh:
            tree.insert(plane)
        merged = list(self._exact_hyperplanes) + fresh
        self.dataset = mutated
        self._preprocessing_dataset = mutated
        self._index = SatRegions(
            mutated,
            self.oracle,
            use_arrangement_tree=True,
            hyperplane_method=self.config.hyperplane_method,
            preprocess_workers=self.config.preprocess_workers,
        ).evaluate_tree(tree, n_hyperplanes=len(merged))
        self._exact_hyperplanes = merged
        return {
            "n_cached_hyperplanes": len(merged) - len(fresh),
            "n_fresh_hyperplanes": len(fresh),
        }

    def _refresh_index(self) -> None:
        tree = getattr(self, "_exact_tree", None)
        hyperplanes = getattr(self, "_exact_hyperplanes", None)
        if tree is None or hyperplanes is None:
            super()._refresh_index()
            return
        self._index = SatRegions(
            self.preprocessing_dataset,
            self.oracle,
            use_arrangement_tree=True,
            hyperplane_method=self.config.hyperplane_method,
            preprocess_workers=self.config.preprocess_workers,
        ).evaluate_tree(tree, n_hyperplanes=len(hyperplanes))

    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        return md_baseline(self.preprocessing_dataset, self.oracle, self.index, function)

    # suggest_many inherits the reference loop: each MDBASELINE answer solves
    # one constrained minimisation per satisfactory region, so there is no
    # shared work to batch — the per-query solves dominate end to end.

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            name="exact", exact=True, min_attributes=3, max_attributes=None, batched=False
        )

    def _index_to_dict(self) -> dict[str, Any]:
        from repro.io.index_store import exact_index_to_dict

        return exact_index_to_dict(self.index)

    def _index_from_dict(
        self, payload: dict[str, Any], dataset: Dataset, oracle: FairnessOracle
    ) -> MDExactIndex:
        from repro.io.index_store import exact_index_from_dict

        return exact_index_from_dict(payload)


@register_engine("approximate", ApproxConfig)
class ApproxEngine(_EngineBase):
    """The §5 grid pipeline: cell marking/colouring offline, ``MDONLINE`` online."""

    #: Queries whose cells are located per vectorised batch in ``suggest_many``.
    lookup_chunk_size = 1024

    def _build_index(self, working: Dataset) -> MDApproxIndex:
        preprocessor = ApproximatePreprocessor(
            working,
            self.oracle,
            n_cells=self.config.n_cells,
            partition=self.config.partition,
            max_hyperplanes=self.config.max_hyperplanes,
            convex_layer_k=self.config.convex_layer_k,
            hyperplane_method=self.config.hyperplane_method,
            preprocess_workers=self.config.preprocess_workers,
        )
        index = preprocessor.run()
        # Cache the oracle-free geometry apply_delta() maintains: the full
        # hyperplane list and the CELLPLANE× assignment.
        self._approx_hyperplanes = preprocessor.hyperplanes_
        self._approx_cell_plane_index = index.cell_plane_index
        return index

    def _supports_incremental(self, delta: DatasetDelta) -> bool:
        # Convex-layer filtering and hyperplane caps make the retained-plane
        # computation unsound (see maintain_hyperplanes), so either rebuilds.
        return (
            self.config.sample_size is None
            and self.config.max_hyperplanes is None
            and self.config.convex_layer_k is None
            and getattr(self, "_approx_hyperplanes", None) is not None
            and getattr(self, "_approx_cell_plane_index", None) is not None
        )

    def _apply_delta_incremental(self, delta: DatasetDelta, mutated: Dataset) -> dict[str, Any]:
        """Re-assign only the cells whose hyperplane set changed.

        The hyperplane list is maintained by
        :func:`~repro.core.maintenance.maintain_hyperplanes` (drop the planes
        touching changed items, construct only the fresh pairs' planes, merge
        in canonical order); the ``CELLPLANE×`` index then re-assigns only the
        fresh planes geometrically, remapping every retained plane's cell
        memberships in place.  Marking and colouring — the oracle-dependent
        stages — re-run in full on the maintained geometry, producing an index
        bit-identical to a from-scratch build on the mutated dataset.
        """
        merged, position_map, fresh_positions = maintain_hyperplanes(
            self._approx_hyperplanes, delta, mutated.scores, self.dataset.n_items
        )
        preprocessor = ApproximatePreprocessor(
            mutated,
            self.oracle,
            n_cells=self.config.n_cells,
            partition=self.config.partition,
            hyperplane_method=self.config.hyperplane_method,
            preprocess_workers=self.config.preprocess_workers,
        )
        cell_plane_index = merged_cell_plane_index(
            preprocessor.partition,
            self._approx_cell_plane_index,
            position_map,
            [merged[position] for position in fresh_positions],
            fresh_positions,
        )
        self.dataset = mutated
        self._preprocessing_dataset = mutated
        self._index = preprocessor.run(
            hyperplanes=merged, cell_plane_index=cell_plane_index
        )
        self._approx_hyperplanes = merged
        self._approx_cell_plane_index = cell_plane_index
        return {
            "n_retained_hyperplanes": len(position_map),
            "n_fresh_hyperplanes": len(fresh_positions),
        }

    def _refresh_index(self) -> None:
        hyperplanes = getattr(self, "_approx_hyperplanes", None)
        cell_plane_index = getattr(self, "_approx_cell_plane_index", None)
        if hyperplanes is None or cell_plane_index is None:
            super()._refresh_index()
            return
        preprocessor = ApproximatePreprocessor(
            self.preprocessing_dataset,
            self.oracle,
            n_cells=self.config.n_cells,
            partition=self.config.partition,
            hyperplane_method=self.config.hyperplane_method,
            preprocess_workers=self.config.preprocess_workers,
        )
        self._index = preprocessor.run(
            hyperplanes=list(hyperplanes), cell_plane_index=cell_plane_index
        )

    def suggest(self, function: LinearScoringFunction) -> SuggestionResult:
        return md_online(self.index, function)

    def suggest_many(
        self, weights_matrix: np.ndarray | Sequence[Sequence[float]]
    ) -> list[SuggestionResult]:
        """Batched ``MDONLINE``: batched oracle pre-check, chunked cell lookups.

        Line 1 of Algorithm 11 (is the query itself satisfactory?) goes to the
        oracle as one batch: when the oracle supports the batched protocol
        (:func:`repro.fairness.batched.as_batched`), the whole weight matrix
        is ordered with one stacked matmul + argsort
        (:func:`repro.ranking.scoring.order_many`) and judged with one
        ``is_satisfactory_many`` — bit-identical verdicts to the per-query
        calls ``md_online`` makes, which remain the fallback for black-box
        oracles.  The index part — locating each remaining query's cell — is
        done in vectorised chunks over the partition, with the
        nearest-assigned fallback answered from the index's cached assigned
        stack.  Results are bit-identical to looping :meth:`suggest`.
        """
        matrix = self._as_matrix(weights_matrix)
        index = self.index
        if not index.assigned_angles:
            raise NotPreprocessedError(
                "run ApproximatePreprocessor before issuing online queries"
            )
        # One vectorised validation pass covers the whole batch, so function
        # construction can use the trusted constructor; rows that would fail
        # validation go through the normal constructor and raise exactly what
        # the scalar path raises.
        trusted = bool(
            np.all(np.isfinite(matrix))
            and not np.any(matrix < 0)
            and np.all(np.any(matrix > 0, axis=1))
        )
        make_function = (
            LinearScoringFunction._from_trusted if trusted else LinearScoringFunction
        )
        functions = [make_function(tuple(row)) for row in matrix.tolist()]
        satisfactory = evaluate_functions_many(
            index.oracle, index.dataset, functions, weight_matrix=matrix
        )
        results: list[SuggestionResult | None] = [None] * matrix.shape[0]
        for position in np.flatnonzero(satisfactory).tolist():
            function = functions[position]
            results[position] = SuggestionResult(function, True, function, 0.0)
        pending = np.flatnonzero(~satisfactory)
        if pending.size == 0:
            return results  # type: ignore[return-value]
        if not index.has_satisfactory_function:
            raise NoSatisfactoryFunctionError(
                "no scoring function satisfies the fairness constraint on this dataset"
            )
        # Vectorised Algorithm 11 tail, bit-identical step for step to
        # md_online_lookup: angles via the batched to_angles kernel, radii via
        # the same dot+sqrt the scalar norm computes, cell location in chunks,
        # and distances from stacked per-row dot products finished with the
        # scalar math.acos (np.arccos rounds differently on ~9% of inputs).
        pending_weights = matrix[pending]
        angle_matrix = to_angles_many(pending_weights)
        radii = np.sqrt(
            np.matmul(pending_weights[:, None, :], pending_weights[:, :, None])[:, 0, 0]
        )
        located = np.empty(pending.size, dtype=int)
        chunk = self.lookup_chunk_size
        for start in range(0, pending.size, chunk):
            located[start : start + chunk] = locate_cells(
                index.partition, angle_matrix[start : start + chunk]
            )
        # Map each located cell to its row in the index's assigned stack; the
        # cells the colouring could not reach take the nearest-assigned
        # fallback, exactly as md_online_lookup does.
        stack_cells, stack_weights, stack_norms = index._assigned_stack()
        stack_position_of_cell = np.full(index.n_cells, -1, dtype=int)
        stack_position_of_cell[stack_cells] = np.arange(stack_cells.size)
        stack_positions = stack_position_of_cell[located]
        for row in np.flatnonzero(stack_positions < 0).tolist():
            stack_positions[row] = index._nearest_assigned_position(angle_matrix[row])
        assigned_rows = stack_weights[stack_positions]
        # Scalar reference: angular_distance(to_weights(query), to_weights(assigned)).
        query_units = np.stack([to_weights(row) for row in angle_matrix])
        query_norms = np.sqrt(
            np.matmul(query_units[:, None, :], query_units[:, :, None])[:, 0, 0]
        )
        dots = np.matmul(query_units[:, None, :], assigned_rows[:, :, None])[:, 0, 0]
        cosines = np.clip(dots / (query_norms * stack_norms[stack_positions]), -1.0, 1.0)
        # to_weights(assigned, radius) is radius * to_weights(assigned): the
        # stacked unit rows scale to the suggestion weights elementwise.
        suggestion_rows = (assigned_rows * radii[:, None]).tolist()
        acos = math.acos
        for row, position in enumerate(pending.tolist()):
            suggestion = make_function(tuple(suggestion_rows[row]))
            results[position] = SuggestionResult(
                functions[position], False, suggestion, acos(cosines[row])
            )
        return results  # type: ignore[return-value]

    @classmethod
    def capabilities(cls) -> EngineCapabilities:
        return EngineCapabilities(
            name="approximate", exact=False, min_attributes=3, max_attributes=None, batched=True
        )

    def _index_to_dict(self) -> dict[str, Any]:
        from repro.io.index_store import approx_index_to_dict

        # The preprocessing dataset is stored once at the engine level; no
        # need to embed a second copy inside the index payload.
        return approx_index_to_dict(self.index, include_dataset=False)

    def _index_from_dict(
        self, payload: dict[str, Any], dataset: Dataset, oracle: FairnessOracle
    ) -> MDApproxIndex:
        from repro.io.index_store import approx_index_from_dict

        return approx_index_from_dict(payload, oracle=oracle, dataset=dataset)
