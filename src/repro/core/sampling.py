"""Sampling-based preprocessing for large datasets (§5.4).

Preprocessing cost grows quickly with the number of items because the number
of exchange hyperplanes is quadratic in ``n``.  The paper's remedy is to run
the offline phase on a *uniform sample*: the sample preserves the distribution
of scoring and type attributes, so a function that is satisfactory on the
sample is expected to be satisfactory on the full data.  §6.4 validates this
on the 1.3M-row DOT dataset by checking every cell's assigned function against
the full dataset — all of them pass.  :func:`preprocess_with_sampling` runs the
pipeline on a sample, and :func:`validate_index_on_dataset` reproduces that
validation step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approx import ApproximatePreprocessor, MDApproxIndex
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.fairness.batched import evaluate_functions_many
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import to_weights
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["SampleValidationReport", "preprocess_with_sampling", "validate_index_on_dataset"]


@dataclass(frozen=True)
class SampleValidationReport:
    """Outcome of validating a sample-built index against the full dataset."""

    n_functions_checked: int
    n_satisfactory: int

    @property
    def fraction_satisfactory(self) -> float:
        """Fraction of assigned functions that are satisfactory on the full data."""
        if self.n_functions_checked == 0:
            return 0.0
        return self.n_satisfactory / self.n_functions_checked

    @property
    def all_satisfactory(self) -> bool:
        """True if every checked function passed on the full dataset (the §6.4 outcome)."""
        return self.n_functions_checked > 0 and self.n_satisfactory == self.n_functions_checked


def preprocess_with_sampling(
    dataset: Dataset,
    oracle: FairnessOracle,
    sample_size: int,
    n_cells: int = 1024,
    seed: int | None = 0,
    partition: str = "uniform",
    max_hyperplanes: int | None = None,
) -> MDApproxIndex:
    """Run the approximate preprocessing pipeline on a uniform sample of the dataset.

    The returned index references the *sample* dataset; use
    :func:`validate_index_on_dataset` to check its assignments against the full
    data, and evaluate online queries against whichever dataset is relevant.
    """
    if sample_size > dataset.n_items:
        raise ConfigurationError(
            f"sample_size {sample_size} exceeds the dataset size {dataset.n_items}"
        )
    sample = dataset.sample(sample_size, seed=seed)
    preprocessor = ApproximatePreprocessor(
        sample,
        oracle,
        n_cells=n_cells,
        partition=partition,
        max_hyperplanes=max_hyperplanes,
    )
    return preprocessor.run()


def validate_index_on_dataset(
    index: MDApproxIndex, dataset: Dataset, oracle: FairnessOracle | None = None
) -> SampleValidationReport:
    """Check every distinct assigned function of an index against a (full) dataset.

    This reproduces the §6.4 validation: order the full dataset by each
    function the sample-based preprocessing assigned to a cell, and count how
    many of those orderings the oracle accepts.  The orderings go to the
    oracle as one batch when it supports the batched protocol
    (:func:`repro.fairness.batched.as_batched`); black-box oracles are checked
    function by function, bit-identically.
    """
    oracle = oracle if oracle is not None else index.oracle
    distinct: list[np.ndarray] = []
    for angles in index.assigned_angles:
        if angles is None:
            continue
        if not any(np.allclose(angles, existing) for existing in distinct):
            distinct.append(np.asarray(angles, dtype=float))
    functions = [LinearScoringFunction(tuple(to_weights(angles))) for angles in distinct]
    verdicts = evaluate_functions_many(oracle, dataset, functions)
    return SampleValidationReport(
        n_functions_checked=len(distinct), n_satisfactory=int(np.sum(verdicts))
    )
