"""The user-facing facade: :class:`FairRankingDesigner`.

The paper describes a *query answering system*: the user hands it a dataset
and a fairness oracle, the system preprocesses offline, and then every
proposed weight vector is answered in interactive time with either "already
fair" or the closest satisfactory alternative.  ``FairRankingDesigner`` is a
thin facade over the engine registry of :mod:`repro.core.engine`: each
pipeline is a registered :class:`~repro.core.engine.QueryEngine` selected by a
typed configuration dataclass —

* :class:`~repro.core.engine.TwoDConfig` — the exact §3 pipeline (only for
  two scoring attributes);
* :class:`~repro.core.engine.ExactConfig` — ``SATREGIONS`` + ``MDBASELINE``
  (§4), exact but slower;
* :class:`~repro.core.engine.ApproxConfig` — the §5 grid pipeline with the
  Theorem 6 guarantee (the default for three or more attributes);
* :class:`~repro.resilience.fallback.FallbackConfig` — a resilient serving
  chain over the other pipelines (e.g. exact with approximate as the degraded
  tier), with per-query fault isolation; see ``docs/robustness.md``.

With no config, the designer auto-picks the 2-D pipeline for two attributes
and the approximate pipeline otherwise.  The pre-engine keyword arguments
(``mode=...``, ``n_cells=...``, ...) still work but emit a
``DeprecationWarning``; pass a config dataclass instead.  Batch queries go
through :meth:`FairRankingDesigner.suggest_many`, and a preprocessed designer
round-trips through :meth:`FairRankingDesigner.save` /
:meth:`FairRankingDesigner.load` without redoing any preprocessing.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.core.engine import (
    ApproxConfig,
    EngineCapabilities,
    ExactConfig,
    QueryEngine,
    TwoDConfig,
    create_engine,
)
from repro.core.result import SuggestionResult
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.fairness.oracle import FairnessOracle
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["FairRankingDesigner"]

_MODES = ("auto", "2d", "exact", "approximate")

#: Defaults of the deprecated keyword constructor, kept for the shim.
_LEGACY_DEFAULTS = {
    "mode": "auto",
    "n_cells": 1024,
    "partition": "uniform",
    "sample_size": None,
    "max_hyperplanes": None,
    "convex_layer_k": None,
}

_SENTINEL = object()


def _config_from_legacy(dataset: Dataset, legacy: dict):
    """Translate the deprecated keyword arguments into a typed engine config."""
    mode = legacy["mode"]
    if mode not in _MODES:
        raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
    if mode == "2d" and dataset.n_attributes != 2:
        raise ConfigurationError("mode='2d' requires exactly two scoring attributes")
    if mode in ("exact", "approximate") and dataset.n_attributes < 3:
        raise ConfigurationError(f"mode={mode!r} requires at least three scoring attributes")
    if mode == "auto":
        mode = "2d" if dataset.n_attributes == 2 else "approximate"
    if mode == "2d":
        return TwoDConfig(sample_size=legacy["sample_size"])
    if mode == "exact":
        return ExactConfig(
            max_hyperplanes=legacy["max_hyperplanes"],
            convex_layer_k=legacy["convex_layer_k"],
            sample_size=legacy["sample_size"],
        )
    return ApproxConfig(
        n_cells=legacy["n_cells"],
        partition=legacy["partition"],
        max_hyperplanes=legacy["max_hyperplanes"],
        convex_layer_k=legacy["convex_layer_k"],
        sample_size=legacy["sample_size"],
    )


class FairRankingDesigner:
    """End-to-end system for designing fair linear ranking schemes.

    Parameters
    ----------
    dataset:
        The dataset to be ranked.
    oracle:
        The fairness oracle that decides which orderings are acceptable.
    config:
        A typed engine configuration (:class:`~repro.core.engine.TwoDConfig`,
        :class:`~repro.core.engine.ExactConfig` or
        :class:`~repro.core.engine.ApproxConfig`).  Omitted, the designer
        auto-picks the 2-D pipeline for two scoring attributes and the
        approximate pipeline otherwise, with default settings.
    mode, n_cells, partition, sample_size, max_hyperplanes, convex_layer_k:
        Deprecated keyword configuration; still honoured (translated to the
        equivalent config dataclass) but emits a ``DeprecationWarning``.

    Examples
    --------
    >>> from repro.core.engine import ApproxConfig
    >>> from repro.data import make_compas_like
    >>> from repro.fairness import ProportionalOracle
    >>> dataset = make_compas_like(n=200, seed=1).project(
    ...     ["c_days_from_compas", "juv_other_count", "start"])
    >>> oracle = ProportionalOracle.at_most_share_plus_slack(
    ...     dataset, "race", "African-American", k=0.3, slack=0.10)
    >>> designer = FairRankingDesigner(dataset, oracle, ApproxConfig(n_cells=256))
    >>> _ = designer.preprocess()
    >>> result = designer.suggest([0.4, 0.3, 0.3])
    >>> result.function.dimension
    3
    """

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        config: TwoDConfig | ExactConfig | ApproxConfig | None = None,
        *,
        mode=_SENTINEL,
        n_cells=_SENTINEL,
        partition=_SENTINEL,
        sample_size=_SENTINEL,
        max_hyperplanes=_SENTINEL,
        convex_layer_k=_SENTINEL,
    ) -> None:
        legacy_given = {
            name: value
            for name, value in {
                "mode": mode,
                "n_cells": n_cells,
                "partition": partition,
                "sample_size": sample_size,
                "max_hyperplanes": max_hyperplanes,
                "convex_layer_k": convex_layer_k,
            }.items()
            if value is not _SENTINEL
        }
        if isinstance(config, str):
            # Pre-engine code could pass mode as the third positional
            # argument; route it through the same deprecation shim the
            # keyword form uses.
            if "mode" in legacy_given:
                raise ConfigurationError("mode was given both positionally and by keyword")
            legacy_given["mode"] = config
            config = None
        if config is not None and legacy_given:
            raise ConfigurationError(
                "pass either a config dataclass or the deprecated keyword "
                f"arguments, not both (got config and {sorted(legacy_given)})"
            )
        if config is None:
            if legacy_given:
                warnings.warn(
                    "configuring FairRankingDesigner with keyword arguments "
                    f"({', '.join(sorted(legacy_given))}) is deprecated; pass a "
                    "TwoDConfig / ExactConfig / ApproxConfig instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = _config_from_legacy(dataset, {**_LEGACY_DEFAULTS, **legacy_given})
        self._engine: QueryEngine = create_engine(dataset, oracle, config)

    @classmethod
    def _from_engine(cls, engine: QueryEngine) -> "FairRankingDesigner":
        designer = cls.__new__(cls)
        designer._engine = engine
        return designer

    # ------------------------------------------------------------------ #
    # engine introspection
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> QueryEngine:
        """The underlying pipeline engine."""
        return self._engine

    @property
    def config(self):
        """The engine's typed configuration dataclass."""
        return self._engine.config

    @property
    def mode(self) -> str:
        """Registry name of the active engine (``"2d"``/``"exact"``/``"approximate"``)."""
        return self._engine.name

    def capabilities(self) -> EngineCapabilities:
        """Capabilities of the active engine."""
        return self._engine.capabilities()

    @property
    def dataset(self) -> Dataset:
        """The dataset being ranked (after :meth:`load`, the restored preprocessing dataset)."""
        return self._engine.dataset

    @property
    def oracle(self) -> FairnessOracle:
        """The fairness oracle."""
        return self._engine.oracle

    # -- deprecated config attributes, kept so pre-engine call sites read -- #
    @property
    def n_cells(self) -> int | None:
        """Grid size of the approximate pipeline (``None`` for other engines)."""
        return getattr(self.config, "n_cells", None)

    @property
    def partition(self) -> str | None:
        """Partition kind of the approximate pipeline (``None`` for other engines)."""
        return getattr(self.config, "partition", None)

    @property
    def sample_size(self) -> int | None:
        """Preprocessing sample size, if sampling was configured."""
        return getattr(self.config, "sample_size", None)

    @property
    def max_hyperplanes(self) -> int | None:
        """Exchange-hyperplane cap of the multi-dimensional pipelines."""
        return getattr(self.config, "max_hyperplanes", None)

    @property
    def convex_layer_k(self) -> int | None:
        """Convex-layer filter of the multi-dimensional pipelines."""
        return getattr(self.config, "convex_layer_k", None)

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "FairRankingDesigner":
        """Run the offline phase; returns ``self`` so calls can be chained."""
        self._engine.preprocess()
        return self

    @property
    def is_preprocessed(self) -> bool:
        """True once :meth:`preprocess` has run (or the designer was loaded)."""
        return self._engine.is_preprocessed

    @property
    def index(self):
        """The underlying offline index (engine specific)."""
        return self._engine.index

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta):
        """Apply a batch of item mutations to the live index.

        Forwards a :class:`~repro.core.maintenance.DatasetDelta` through the
        engine seam: the engine maintains its index incrementally when the
        delta is small and supported, and falls back to a full rebuild past
        its configured ``staleness_fraction``.  Returns the engine's
        :class:`~repro.core.maintenance.MaintenanceReport`.
        """
        return self._engine.apply_delta(delta)

    def refresh(self):
        """Re-run the oracle-dependent stages over the engine's cached geometry."""
        return self._engine.refresh()

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def check(self, weights: Sequence[float] | LinearScoringFunction) -> bool:
        """Return True if the proposed weights already produce a fair ranking."""
        function = self._as_function(weights)
        return self.oracle.evaluate_function(function, self.dataset)

    def suggest(self, weights: Sequence[float] | LinearScoringFunction) -> SuggestionResult:
        """Answer a CLOSEST SATISFACTORY FUNCTION query for the proposed weights."""
        return self._engine.suggest(self._as_function(weights))

    def suggest_many(self, weights_matrix) -> list[SuggestionResult]:
        """Answer a batch of queries — one row of ``weights_matrix`` per query.

        Returns exactly what ``[self.suggest(w) for w in weights_matrix]``
        would, but through the engine's batched path: the 2-D engine
        classifies the whole batch with one binary search over the cached
        interval starts, and the approximate engine locates cells in
        vectorised chunks.
        """
        return self._engine.suggest_many(weights_matrix)

    def _as_function(
        self, weights: Sequence[float] | LinearScoringFunction
    ) -> LinearScoringFunction:
        if isinstance(weights, LinearScoringFunction):
            function = weights
        else:
            function = LinearScoringFunction(tuple(np.asarray(weights, dtype=float)))
        if function.dimension != self.dataset.n_attributes:
            raise ConfigurationError(
                f"the query has {function.dimension} weights but the dataset has "
                f"{self.dataset.n_attributes} scoring attributes"
            )
        return function

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path, *, journaled: bool = False) -> None:
        """Write the preprocessed engine (config + index + sample) to a JSON file.

        The file embeds the preprocessing dataset — the sample, when
        ``sample_size`` was configured — so :meth:`load` answers queries
        bit-identically to this designer without redoing any preprocessing.
        With ``journaled=True`` the file records the pre-delta base snapshot
        plus the applied-delta journal instead (see
        :func:`repro.io.index_store.save_engine`); loading replays the
        journal through the engine seam.
        """
        from repro.io.index_store import save_engine

        save_engine(self._engine, path, journaled=journaled)

    @classmethod
    def load(cls, path, oracle: FairnessOracle) -> "FairRankingDesigner":
        """Rebuild a preprocessed designer from a :meth:`save` file.

        The fairness oracle is not serialised (it can close over arbitrary
        code), so the caller supplies it; the dataset restored from the file
        is the preprocessing dataset the index was built on.
        """
        from repro.io.index_store import load_engine

        return cls._from_engine(load_engine(path, oracle))
