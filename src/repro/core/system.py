"""The user-facing facade: :class:`FairRankingDesigner`.

The paper describes a *query answering system*: the user hands it a dataset
and a fairness oracle, the system preprocesses offline, and then every
proposed weight vector is answered in interactive time with either "already
fair" or the closest satisfactory alternative.  ``FairRankingDesigner`` wires
the right pipeline for the dataset dimensionality and chosen mode:

* ``mode="2d"`` — the exact §3 pipeline (only for two scoring attributes);
* ``mode="exact"`` — ``SATREGIONS`` + ``MDBASELINE`` (§4), exact but slower;
* ``mode="approximate"`` — the §5 grid pipeline with the Theorem 6 guarantee
  (the default for three or more attributes).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.approx import ApproximatePreprocessor, MDApproxIndex, md_online
from repro.core.multi_dim import MDExactIndex, SatRegions, md_baseline
from repro.core.result import SuggestionResult
from repro.core.two_dim import TwoDIndex, TwoDRaySweep
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError, NotPreprocessedError
from repro.fairness.oracle import FairnessOracle
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["FairRankingDesigner"]

_MODES = ("auto", "2d", "exact", "approximate")


class FairRankingDesigner:
    """End-to-end system for designing fair linear ranking schemes.

    Parameters
    ----------
    dataset:
        The dataset to be ranked.
    oracle:
        The fairness oracle that decides which orderings are acceptable.
    mode:
        ``"auto"`` (default) picks ``"2d"`` for two scoring attributes and
        ``"approximate"`` otherwise; the other values force a pipeline.
    n_cells:
        Number of grid cells for the approximate pipeline.
    partition:
        ``"uniform"`` or ``"angle"`` grid for the approximate pipeline.
    sample_size:
        If given, preprocessing runs on a uniform sample of this size (§5.4).
    max_hyperplanes, convex_layer_k:
        Passed through to the underlying pipeline (see their documentation).

    Examples
    --------
    >>> from repro.data import make_compas_like
    >>> from repro.fairness import ProportionalOracle
    >>> dataset = make_compas_like(n=200, seed=1).project(
    ...     ["c_days_from_compas", "juv_other_count", "start"])
    >>> oracle = ProportionalOracle.at_most_share_plus_slack(
    ...     dataset, "race", "African-American", k=0.3, slack=0.10)
    >>> designer = FairRankingDesigner(dataset, oracle, n_cells=256)
    >>> _ = designer.preprocess()
    >>> result = designer.suggest([0.4, 0.3, 0.3])
    >>> result.function.dimension
    3
    """

    def __init__(
        self,
        dataset: Dataset,
        oracle: FairnessOracle,
        mode: str = "auto",
        n_cells: int = 1024,
        partition: str = "uniform",
        sample_size: int | None = None,
        max_hyperplanes: int | None = None,
        convex_layer_k: int | None = None,
    ) -> None:
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        if mode == "2d" and dataset.n_attributes != 2:
            raise ConfigurationError("mode='2d' requires exactly two scoring attributes")
        if mode in ("exact", "approximate") and dataset.n_attributes < 3:
            raise ConfigurationError(f"mode={mode!r} requires at least three scoring attributes")
        if mode == "auto":
            mode = "2d" if dataset.n_attributes == 2 else "approximate"
        self.dataset = dataset
        self.oracle = oracle
        self.mode = mode
        self.n_cells = n_cells
        self.partition = partition
        self.sample_size = sample_size
        self.max_hyperplanes = max_hyperplanes
        self.convex_layer_k = convex_layer_k
        self._index: TwoDIndex | MDExactIndex | MDApproxIndex | None = None
        self._preprocessing_dataset: Dataset | None = None

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "FairRankingDesigner":
        """Run the offline phase; returns ``self`` so calls can be chained."""
        working = self.dataset
        if self.sample_size is not None and self.sample_size < working.n_items:
            working = working.sample(self.sample_size, seed=0)
        self._preprocessing_dataset = working

        if self.mode == "2d":
            self._index = TwoDRaySweep(working, self.oracle).run()
        elif self.mode == "exact":
            self._index = SatRegions(
                working,
                self.oracle,
                max_hyperplanes=self.max_hyperplanes,
                convex_layer_k=self.convex_layer_k,
            ).run()
        else:
            self._index = ApproximatePreprocessor(
                working,
                self.oracle,
                n_cells=self.n_cells,
                partition=self.partition,
                max_hyperplanes=self.max_hyperplanes,
                convex_layer_k=self.convex_layer_k,
            ).run()
        return self

    @property
    def is_preprocessed(self) -> bool:
        """True once :meth:`preprocess` has run."""
        return self._index is not None

    @property
    def index(self) -> TwoDIndex | MDExactIndex | MDApproxIndex:
        """The underlying offline index (mode specific)."""
        if self._index is None:
            raise NotPreprocessedError("call preprocess() first")
        return self._index

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def check(self, weights: Sequence[float] | LinearScoringFunction) -> bool:
        """Return True if the proposed weights already produce a fair ranking."""
        function = self._as_function(weights)
        return self.oracle.evaluate_function(function, self.dataset)

    def suggest(self, weights: Sequence[float] | LinearScoringFunction) -> SuggestionResult:
        """Answer a CLOSEST SATISFACTORY FUNCTION query for the proposed weights."""
        function = self._as_function(weights)
        index = self.index
        if self.mode == "2d":
            assert isinstance(index, TwoDIndex)
            return index.query(function)
        if self.mode == "exact":
            assert isinstance(index, MDExactIndex)
            assert self._preprocessing_dataset is not None
            return md_baseline(self._preprocessing_dataset, self.oracle, index, function)
        assert isinstance(index, MDApproxIndex)
        return md_online(index, function)

    def _as_function(
        self, weights: Sequence[float] | LinearScoringFunction
    ) -> LinearScoringFunction:
        if isinstance(weights, LinearScoringFunction):
            function = weights
        else:
            function = LinearScoringFunction(tuple(np.asarray(weights, dtype=float)))
        if function.dimension != self.dataset.n_attributes:
            raise ConfigurationError(
                f"the query has {function.dimension} weights but the dataset has "
                f"{self.dataset.n_attributes} scoring attributes"
            )
        return function
