"""Index freshness monitoring and refresh under data drift.

The paper's introduction anticipates that a designed ranking function will be
reused "for each dataset that follows" as long as the value distribution does
not change too much, and that the designer "may still wish to verify that we
continue to meet the required criteria, and adjust our ranking function if
needed".  This module implements that verification step for a deployed index:

* :func:`check_approx_index_freshness` re-evaluates the function assigned to
  each cell of an :class:`~repro.core.approx.MDApproxIndex` against a *new*
  dataset snapshot and reports which cells went stale;
* :func:`check_two_d_index_freshness` does the same for a 2-D index by probing
  the interior of every satisfactory interval;
* :func:`check_engine_freshness` dispatches either check through the
  :class:`~repro.core.engine.QueryEngine` seam, so monitors need not know
  which index kind an engine serves;
* :func:`refresh_if_stale` closes the loop: when a check finds stale
  assignments it drives the engine's ``refresh()`` hook — a cheap partial
  refresh that re-runs only the oracle-dependent stages over the engine's
  cached geometry — instead of a full rebuild;
* :func:`refresh_approx_index` rebuilds the assignment against the new
  snapshot while keeping the same partition, so cell identities (and any
  caller-side caches keyed by cell) remain stable — the heavyweight path,
  kept for callers holding a bare index rather than an engine;
* :func:`error_budget_report` summarises a fallback engine's serving
  telemetry (see :mod:`repro.resilience.fallback`) as an error budget —
  freshness watches the *data*, the error budget watches the *serving path*.
  Since the observability layer landed, ``FallbackTelemetry`` keeps its
  counts in a :class:`~repro.obs.metrics.MetricsRegistry` (series
  ``fallback.*``), so the error budget and an obs metrics snapshot read the
  same counter source; this function's duck-typed view is unchanged.

Cell-level freshness is deliberately finer-grained than the §5.4 sample
validation in :mod:`repro.core.sampling`, which checks *distinct functions*;
here the unit is the cell, because an online service answers queries per cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.approx import ApproximatePreprocessor, MDApproxIndex
from repro.core.two_dim import TwoDIndex
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.fairness.batched import evaluate_functions_many
from repro.fairness.oracle import FairnessOracle
from repro.geometry.angles import to_weights
from repro.ranking.scoring import LinearScoringFunction

__all__ = [
    "FreshnessReport",
    "check_approx_index_freshness",
    "check_two_d_index_freshness",
    "check_engine_freshness",
    "refresh_if_stale",
    "refresh_approx_index",
    "ErrorBudgetReport",
    "error_budget_report",
]


@dataclass(frozen=True)
class FreshnessReport:
    """Result of re-checking an index against a new dataset snapshot.

    Attributes
    ----------
    n_checked:
        Number of cells (or intervals) whose assigned function was re-checked.
    n_stale:
        How many of them no longer satisfy the oracle on the new data.
    stale_indices:
        The cell indices (or interval positions) that went stale, in order.
    oracle_calls:
        Number of oracle evaluations spent on the check.
    """

    n_checked: int
    n_stale: int
    stale_indices: tuple[int, ...]
    oracle_calls: int

    @property
    def fraction_stale(self) -> float:
        """Share of checked assignments that went stale (0 when nothing was checked)."""
        if self.n_checked == 0:
            return 0.0
        return self.n_stale / self.n_checked

    @property
    def is_fresh(self) -> bool:
        """True if every checked assignment still satisfies the oracle."""
        return self.n_stale == 0

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (for dashboards, next to the error budget)."""
        return {
            "n_checked": self.n_checked,
            "n_stale": self.n_stale,
            "stale_indices": list(self.stale_indices),
            "oracle_calls": self.oracle_calls,
            "fraction_stale": self.fraction_stale,
            "is_fresh": self.is_fresh,
        }


@dataclass(frozen=True)
class ErrorBudgetReport:
    """Serving health of a fallback engine against an availability budget.

    Built from a :class:`~repro.resilience.fallback.FallbackTelemetry`
    snapshot: the *error rate* is the fraction of queries no tier could
    answer, the *failover rate* the fraction that needed a non-first tier.
    ``budget`` is the tolerated error rate (an SLO like "99% of queries get
    an answer" is ``budget=0.01``).
    """

    n_queries: int
    n_failovers: int
    n_unanswered: int
    budget: float
    answered_by: dict
    tier_failures: dict

    @property
    def error_rate(self) -> float:
        """Fraction of queries that went entirely unanswered."""
        if self.n_queries == 0:
            return 0.0
        return self.n_unanswered / self.n_queries

    @property
    def failover_rate(self) -> float:
        """Fraction of queries answered by a tier other than the first."""
        if self.n_queries == 0:
            return 0.0
        return self.n_failovers / self.n_queries

    @property
    def budget_remaining(self) -> float:
        """Unused share of the budget (negative once the budget is blown)."""
        return self.budget - self.error_rate

    @property
    def within_budget(self) -> bool:
        """True while the unanswered-query rate stays at or under the budget."""
        return self.error_rate <= self.budget

    def as_dict(self) -> dict:
        """JSON-compatible snapshot (for dashboards, next to freshness)."""
        return {
            "n_queries": self.n_queries,
            "n_failovers": self.n_failovers,
            "n_unanswered": self.n_unanswered,
            "budget": self.budget,
            "error_rate": self.error_rate,
            "failover_rate": self.failover_rate,
            "within_budget": self.within_budget,
            "answered_by": dict(self.answered_by),
            "tier_failures": dict(self.tier_failures),
        }


def error_budget_report(engine, budget: float = 0.01) -> ErrorBudgetReport:
    """Summarise a fallback engine's cumulative telemetry as an error budget.

    Duck-typed on ``engine.telemetry`` (any object with the
    :class:`~repro.resilience.fallback.FallbackTelemetry` counters), so
    monitoring stays decoupled from the resilience package.
    """
    if not 0.0 <= budget <= 1.0:
        raise ConfigurationError(f"budget must be in [0, 1], got {budget!r}")
    telemetry = getattr(engine, "telemetry", None)
    if telemetry is None:
        raise ConfigurationError(
            f"{type(engine).__name__} exposes no serving telemetry; error budgets "
            "are reported for fallback engines (see repro.resilience)"
        )
    return ErrorBudgetReport(
        n_queries=telemetry.n_queries,
        n_failovers=telemetry.n_failovers,
        n_unanswered=telemetry.n_unanswered,
        budget=float(budget),
        answered_by=dict(telemetry.answered_by),
        tier_failures=dict(telemetry.tier_failures),
    )


def check_approx_index_freshness(
    index: MDApproxIndex,
    dataset: Dataset,
    oracle: FairnessOracle | None = None,
    sample_cells: int | None = None,
    seed: int | None = 0,
) -> FreshnessReport:
    """Re-check the per-cell assignments of an approximate index on new data.

    Parameters
    ----------
    index:
        A preprocessed approximate index.
    dataset:
        The new dataset snapshot (same scoring attributes as the index's).
    oracle:
        Oracle to check against; defaults to the index's own oracle.
    sample_cells:
        If given, only a uniform random subset of this many assigned cells is
        checked — enough for a quick health check on very fine grids.
    seed:
        Seed of the cell subsample.
    """
    if dataset.n_attributes != index.dataset.n_attributes:
        raise ConfigurationError(
            "the new dataset must have the same scoring attributes as the indexed one"
        )
    oracle = oracle if oracle is not None else index.oracle
    assigned_cells = [
        cell_index
        for cell_index, angles in enumerate(index.assigned_angles)
        if angles is not None
    ]
    if sample_cells is not None and sample_cells < len(assigned_cells):
        if sample_cells < 1:
            raise ConfigurationError("sample_cells must be at least 1")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(assigned_cells), size=sample_cells, replace=False)
        assigned_cells = sorted(assigned_cells[position] for position in chosen)

    # One batched refresh check when the oracle supports the batched protocol
    # (one ordering matrix, one is_satisfactory_many); black-box oracles are
    # re-checked cell by cell, bit-identically, with the same call count.
    functions = [
        LinearScoringFunction(
            tuple(to_weights(np.asarray(index.assigned_angles[cell_index], dtype=float)))
        )
        for cell_index in assigned_cells
    ]
    verdicts = evaluate_functions_many(oracle, dataset, functions)
    stale = [cell_index for cell_index, ok in zip(assigned_cells, verdicts) if not ok]
    return FreshnessReport(
        n_checked=len(assigned_cells),
        n_stale=len(stale),
        stale_indices=tuple(stale),
        oracle_calls=len(assigned_cells),
    )


def check_two_d_index_freshness(
    index: TwoDIndex,
    dataset: Dataset,
    oracle: FairnessOracle,
    probes_per_interval: int = 3,
) -> FreshnessReport:
    """Re-check a 2-D index by probing interior angles of every satisfactory interval.

    An interval is stale when *any* of its probes is rejected by the oracle on
    the new data (the conservative reading: the interval can no longer be
    served as uniformly satisfactory).

    Parameters
    ----------
    index:
        The 2-D ray-sweep index.
    dataset:
        The new dataset snapshot (must have two scoring attributes).
    oracle:
        The fairness oracle to check against.
    probes_per_interval:
        Number of evenly spaced interior angles probed per interval.
    """
    if dataset.n_attributes != 2:
        raise ConfigurationError("a 2-D index is checked against a 2-attribute dataset")
    if probes_per_interval < 1:
        raise ConfigurationError("probes_per_interval must be at least 1")
    stale: list[int] = []
    oracle_calls = 0
    for position, interval in enumerate(index.intervals):
        fractions = [
            (probe + 1) / (probes_per_interval + 1) for probe in range(probes_per_interval)
        ]
        interval_ok = True
        for fraction in fractions:
            angle = interval.start + fraction * (interval.end - interval.start)
            function = LinearScoringFunction((math.cos(angle), math.sin(angle)))
            oracle_calls += 1
            if not oracle.evaluate_function(function, dataset):
                interval_ok = False
                break
        if not interval_ok:
            stale.append(position)
    return FreshnessReport(
        n_checked=len(index.intervals),
        n_stale=len(stale),
        stale_indices=tuple(stale),
        oracle_calls=oracle_calls,
    )


def check_engine_freshness(
    engine,
    dataset: Dataset | None = None,
    *,
    oracle: FairnessOracle | None = None,
    sample_cells: int | None = None,
    probes_per_interval: int = 3,
    seed: int | None = 0,
) -> FreshnessReport:
    """Re-check a preprocessed engine's index through the engine seam.

    Dispatches on the engine's index kind: 2-D engines get
    :func:`check_two_d_index_freshness`, approximate engines
    :func:`check_approx_index_freshness`.  Exact engines have no freshness
    notion — every region carries an oracle verdict for the *build* dataset
    and a drifted dataset demands an :meth:`apply_delta` — so they raise
    :class:`~repro.exceptions.ConfigurationError`.

    Parameters
    ----------
    engine:
        A preprocessed :class:`~repro.core.engine.QueryEngine`.
    dataset:
        Snapshot to check against; defaults to the engine's current dataset
        (useful after the oracle's criteria drifted rather than the data).
    oracle:
        Oracle to check with; defaults to the engine's oracle.
    sample_cells, seed:
        Forwarded to the approximate check.
    probes_per_interval:
        Forwarded to the 2-D check.
    """
    index = getattr(engine, "index", None)
    if index is None:
        raise ConfigurationError(
            f"engine {getattr(engine, 'name', '?')!r} has no index yet; "
            "preprocess() before checking freshness"
        )
    dataset = dataset if dataset is not None else engine.dataset
    oracle = oracle if oracle is not None else engine.oracle
    if isinstance(index, TwoDIndex):
        return check_two_d_index_freshness(
            index, dataset, oracle, probes_per_interval=probes_per_interval
        )
    if isinstance(index, MDApproxIndex):
        return check_approx_index_freshness(
            index, dataset, oracle=oracle, sample_cells=sample_cells, seed=seed
        )
    raise ConfigurationError(
        f"engine {getattr(engine, 'name', '?')!r} serves a "
        f"{type(index).__name__}, which has no freshness check; exact indexes "
        "are maintained through apply_delta()"
    )


def refresh_if_stale(
    engine,
    *,
    oracle: FairnessOracle | None = None,
    sample_cells: int | None = None,
    probes_per_interval: int = 3,
    seed: int | None = 0,
):
    """Check an engine's freshness and drive a partial refresh when stale.

    The refresh goes through the engine seam
    (:meth:`~repro.core.engine.QueryEngine.refresh`), which re-runs only the
    oracle-dependent stages over the engine's cached geometry — cheap next to
    the full rebuild of :func:`refresh_approx_index`, and applicable to every
    engine family, not just the approximate one.

    Returns
    -------
    (FreshnessReport, MaintenanceReport | None)
        The freshness report, and the maintenance report of the refresh when
        one ran (``None`` when the index was fresh).
    """
    report = check_engine_freshness(
        engine,
        oracle=oracle,
        sample_cells=sample_cells,
        probes_per_interval=probes_per_interval,
        seed=seed,
    )
    if report.is_fresh:
        return report, None
    return report, engine.refresh()


def refresh_approx_index(
    index: MDApproxIndex,
    dataset: Dataset,
    oracle: FairnessOracle | None = None,
    max_hyperplanes: int | None = None,
) -> MDApproxIndex:
    """Rebuild an approximate index against a new dataset, reusing its partition.

    The cell grid (and therefore every cell index) is kept identical to the old
    index so downstream consumers keyed by cell stay valid; only the exchange
    hyperplanes, cell assignments and colouring are recomputed from the new
    data.

    Parameters
    ----------
    index:
        The existing (possibly stale) index.
    dataset:
        The new dataset snapshot.
    oracle:
        Oracle to preprocess with; defaults to the index's oracle.
    max_hyperplanes:
        Optional cap on exchange hyperplanes, as in
        :class:`~repro.core.approx.ApproximatePreprocessor`.
    """
    if dataset.n_attributes != index.dataset.n_attributes:
        raise ConfigurationError(
            "the new dataset must have the same scoring attributes as the indexed one"
        )
    oracle = oracle if oracle is not None else index.oracle
    preprocessor = ApproximatePreprocessor(
        dataset,
        oracle,
        n_cells=index.partition.n_cells,
        partition=index.partition,
        max_hyperplanes=max_hyperplanes,
    )
    return preprocessor.run()
