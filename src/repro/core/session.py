"""Interactive design sessions: the paper's human-in-the-loop tuning workflow.

The introduction of the paper stresses that designing a ranking scheme is an
*iterative* process: the expert proposes weights, inspects the outcome, and
adjusts — and the system's job is to keep every iteration interactive and to
steer the expert toward fair choices.  :class:`DesignSession` wraps a
preprocessed :class:`~repro.core.system.FairRankingDesigner` and records that
loop: every proposal, the system's verdict and suggestion, and which function
the user finally accepted.  Sessions can be summarised, rendered as a
transcript, and serialised for audit trails.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.maintenance import DatasetDelta, MaintenanceReport
from repro.core.result import SuggestionResult
from repro.core.system import FairRankingDesigner
from repro.exceptions import ConfigurationError
from repro.ranking.scoring import LinearScoringFunction

__all__ = ["ProposalRecord", "SessionSummary", "DesignSession"]


@dataclass(frozen=True)
class ProposalRecord:
    """One step of the design loop: a proposal and the system's answer.

    Attributes
    ----------
    step:
        1-based position of the proposal in the session.
    result:
        The :class:`~repro.core.result.SuggestionResult` returned by the
        designer for this proposal.
    note:
        Optional free-text note supplied by the user ("try favouring GPA").
    accepted:
        True if the user accepted this step's outcome as the final function.
    tier:
        When the designer serves through a fallback chain
        (:mod:`repro.resilience.fallback`), the label of the tier that
        answered this proposal; ``None`` for single-pipeline engines.  Audit
        trails record it so a degraded (approximate-tier) answer is
        distinguishable from an exact one after the fact.
    """

    step: int
    result: SuggestionResult
    note: str = ""
    accepted: bool = False
    tier: str | None = None

    @property
    def query(self) -> LinearScoringFunction:
        """The proposed function."""
        return self.result.query

    @property
    def suggestion(self) -> LinearScoringFunction:
        """The satisfactory function the system answered with."""
        return self.result.function

    def as_dict(self) -> dict:
        """JSON-compatible view of the record."""
        return {
            "step": self.step,
            "query_weights": list(self.result.query.weights),
            "satisfactory": self.result.satisfactory,
            "suggested_weights": list(self.result.function.weights),
            "angular_distance": self.result.angular_distance,
            "note": self.note,
            "accepted": self.accepted,
            "tier": self.tier,
        }


@dataclass(frozen=True)
class SessionSummary:
    """Aggregate statistics of a design session.

    Attributes
    ----------
    n_proposals:
        Number of weight vectors the user proposed.
    n_already_satisfactory:
        How many of them were fair as proposed.
    mean_repair_distance, max_repair_distance:
        Mean / maximum angular distance of the suggestions issued for the
        unfair proposals (0 when every proposal was fair).
    accepted_step:
        The 1-based step whose outcome the user accepted, or ``None``.
    """

    n_proposals: int
    n_already_satisfactory: int
    mean_repair_distance: float
    max_repair_distance: float
    accepted_step: int | None


class DesignSession:
    """Record of one expert's interactive weight-tuning session.

    Parameters
    ----------
    designer:
        A :class:`~repro.core.system.FairRankingDesigner`.  If it has not been
        preprocessed yet, the session preprocesses it on construction so the
        first proposal is already answered from the index.

    Examples
    --------
    >>> from repro.data import make_compas_like
    >>> from repro.fairness import ProportionalOracle
    >>> from repro import ApproxConfig, FairRankingDesigner
    >>> dataset = make_compas_like(n=150, seed=3).project(
    ...     ["c_days_from_compas", "juv_other_count", "start"])
    >>> oracle = ProportionalOracle.at_most_share_plus_slack(
    ...     dataset, "race", "African-American", k=0.3, slack=0.10)
    >>> session = DesignSession(
    ...     FairRankingDesigner(dataset, oracle, ApproxConfig(n_cells=64)))
    >>> record = session.propose([0.4, 0.3, 0.3], note="first guess")
    >>> session.accept()
    >>> session.summary().n_proposals
    1
    """

    def __init__(self, designer: FairRankingDesigner) -> None:
        if not isinstance(designer, FairRankingDesigner):
            raise ConfigurationError("DesignSession wraps a FairRankingDesigner")
        if not designer.is_preprocessed:
            designer.preprocess()
        self.designer = designer
        self._records: list[ProposalRecord] = []
        self._maintenance: list[dict] = []

    # ------------------------------------------------------------------ #
    # the design loop
    # ------------------------------------------------------------------ #
    def propose(
        self, weights: Sequence[float] | LinearScoringFunction, note: str = ""
    ) -> ProposalRecord:
        """Submit a weight proposal and record the system's answer."""
        self._stamp_workload_context(note)
        result = self.designer.suggest(weights)
        record = ProposalRecord(
            step=len(self._records) + 1,
            result=result,
            note=note,
            tier=self._answering_tier(),
        )
        self._records.append(record)
        return record

    def _answering_tier(self) -> str | None:
        """The tier that answered the last query, for fallback-served designers."""
        engine = getattr(self.designer, "engine", None)
        record = getattr(engine, "last_record", None)
        return getattr(record, "tier", None)

    def _stamp_workload_context(self, note: str) -> None:
        """Attach the session step/note to workload-recording engines.

        When the designer serves through the ``"instrumented"`` engine with
        ``record_workload=True``, every recorded query carries the design
        step that issued it, so a replayed log can be cut per step.
        """
        workload = getattr(getattr(self.designer, "engine", None), "workload", None)
        if workload is not None:
            workload.set_context(step=len(self._records) + 1, note=note)

    def propose_many(self, weights_matrix, note: str = "") -> list[ProposalRecord]:
        """Submit a batch of proposals (one row per weight vector) in one step.

        The batch is answered through the designer's
        :meth:`~repro.core.system.FairRankingDesigner.suggest_many` — the
        engines' batched path — and each answer is recorded as its own
        sequentially numbered proposal, exactly as if :meth:`propose` had been
        called per row.
        """
        self._stamp_workload_context(note)
        results = self.designer.suggest_many(weights_matrix)
        report = getattr(getattr(self.designer, "engine", None), "last_report", None)
        tiers = (
            [record.tier for record in report.records]
            if report is not None and len(report.records) == len(results)
            else [None] * len(results)
        )
        records = []
        for result, tier in zip(results, tiers):
            record = ProposalRecord(
                step=len(self._records) + 1, result=result, note=note, tier=tier
            )
            self._records.append(record)
            records.append(record)
        return records

    def accept(self, step: int | None = None) -> ProposalRecord:
        """Mark a step's outcome as the accepted final function.

        Parameters
        ----------
        step:
            1-based step to accept; defaults to the most recent proposal.
            Accepting a step clears any earlier acceptance (a session has at
            most one accepted function).
        """
        if not self._records:
            raise ConfigurationError("nothing to accept: no proposals were made")
        if step is None:
            step = len(self._records)
        if not 1 <= step <= len(self._records):
            raise ConfigurationError(f"step {step} out of range 1..{len(self._records)}")
        self._records = [
            ProposalRecord(
                step=record.step,
                result=record.result,
                note=record.note,
                accepted=(record.step == step),
                tier=record.tier,
            )
            for record in self._records
        ]
        return self._records[step - 1]

    # ------------------------------------------------------------------ #
    # dataset maintenance (the dynamic-data loop)
    # ------------------------------------------------------------------ #
    def insert(self, rows, types=None, note: str = "") -> MaintenanceReport:
        """Append items to the live dataset mid-session.

        ``rows`` is a sequence of scoring rows; ``types`` maps each type
        attribute to one categorical value per inserted row (required when
        the dataset carries type attributes — fairness oracles consult them).
        The index is maintained through the engine seam and later proposals
        are answered against the mutated data.
        """
        return self.apply_delta(
            DatasetDelta(
                inserts=tuple(tuple(float(v) for v in row) for row in rows),
                insert_types={} if types is None else types,
            ),
            note=note,
        )

    def update(self, index: int, row, note: str = "") -> MaintenanceReport:
        """Replace the scoring row of one existing item."""
        return self.apply_delta(
            DatasetDelta(updates=((int(index), tuple(float(v) for v in row)),)),
            note=note,
        )

    def delete(self, indices, note: str = "") -> MaintenanceReport:
        """Remove items by their current dataset indices."""
        return self.apply_delta(
            DatasetDelta(deletes=tuple(int(i) for i in indices)), note=note
        )

    def apply_delta(self, delta: DatasetDelta, note: str = "") -> MaintenanceReport:
        """Apply an arbitrary :class:`~repro.core.maintenance.DatasetDelta`.

        The maintenance event is recorded in the session's audit trail
        (:attr:`maintenance_history`, serialised by :meth:`to_dict`) with the
        proposal step it happened after, so a transcript shows which answers
        were served pre- and post-mutation.
        """
        report = self.designer.apply_delta(delta)
        self._maintenance.append(
            {
                "after_step": len(self._records),
                "note": note,
                "delta": delta.to_dict(),
                "report": report.as_dict(),
            }
        )
        return report

    @property
    def maintenance_history(self) -> list[dict]:
        """All recorded maintenance events, in order."""
        return [dict(event) for event in self._maintenance]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def history(self) -> list[ProposalRecord]:
        """All proposals in order."""
        return list(self._records)

    @property
    def n_proposals(self) -> int:
        """Number of proposals made so far."""
        return len(self._records)

    @property
    def accepted_record(self) -> ProposalRecord | None:
        """The accepted step, or ``None`` if nothing was accepted yet."""
        for record in self._records:
            if record.accepted:
                return record
        return None

    @property
    def accepted_function(self) -> LinearScoringFunction | None:
        """The accepted scoring function (the suggestion of the accepted step)."""
        record = self.accepted_record
        return record.suggestion if record is not None else None

    def summary(self) -> SessionSummary:
        """Aggregate statistics of the session so far."""
        repairs = [
            record.result.angular_distance
            for record in self._records
            if not record.result.satisfactory
        ]
        accepted = self.accepted_record
        return SessionSummary(
            n_proposals=len(self._records),
            n_already_satisfactory=sum(
                1 for record in self._records if record.result.satisfactory
            ),
            mean_repair_distance=float(np.mean(repairs)) if repairs else 0.0,
            max_repair_distance=float(np.max(repairs)) if repairs else 0.0,
            accepted_step=accepted.step if accepted is not None else None,
        )

    # ------------------------------------------------------------------ #
    # rendering and persistence
    # ------------------------------------------------------------------ #
    def format_transcript(self) -> str:
        """Render the session as a plain-text transcript."""
        if not self._records:
            return "(empty design session)"
        lines = []
        for record in self._records:
            weights = ", ".join(f"{value:.3f}" for value in record.query.weights)
            lines.append(f"step {record.step}: propose [{weights}]"
                         + (f"  — {record.note}" if record.note else ""))
            if record.result.satisfactory:
                lines.append("        already satisfies the fairness constraint")
            else:
                suggested = ", ".join(f"{value:.3f}" for value in record.suggestion.weights)
                lines.append(
                    f"        violates the constraint; closest fair weights [{suggested}] "
                    f"(distance {record.result.angular_distance:.4f} rad)"
                )
            if record.accepted:
                lines.append("        ACCEPTED")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible view of the whole session."""
        summary = self.summary()
        return {
            "oracle": self.designer.oracle.describe(),
            # "mode" is the engine's registry name; kept under its historical
            # key so pre-engine session consumers keep working.
            "mode": self.designer.mode,
            "config": asdict(self.designer.config),
            "records": [record.as_dict() for record in self._records],
            "maintenance": self.maintenance_history,
            "summary": {
                "n_proposals": summary.n_proposals,
                "n_already_satisfactory": summary.n_already_satisfactory,
                "mean_repair_distance": summary.mean_repair_distance,
                "max_repair_distance": summary.max_repair_distance,
                "accepted_step": summary.accepted_step,
            },
        }

    def save(self, path: str | Path) -> None:
        """Write the session transcript to a JSON file (an audit trail)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")
