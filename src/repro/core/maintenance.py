"""Typed dataset deltas and maintenance reports for build-and-maintain engines.

The engines of :mod:`repro.core.engine` historically treated preprocessing as
a one-shot offline phase: any change to the dataset meant rebuilding the index
from scratch.  This module is the vocabulary of the *build-and-maintain*
lifecycle that replaces it:

* :class:`DatasetDelta` — a validated, serialisable description of one batch
  of item mutations (inserts, deletes, score updates) against a
  :class:`~repro.data.dataset.Dataset`;
* :class:`MaintenanceReport` — what an engine's ``apply_delta`` returns:
  which strategy ran (incremental maintenance vs. full rebuild), how many
  items changed, and the staleness fraction that drove the decision;
* :func:`maintain_hyperplanes` — the shared incremental-geometry kernel for
  the ``d >= 3`` engines: drop the exchange hyperplanes touching changed
  items, remap the retained labels through the delta's index map, construct
  hyperplanes only for the pairs that involve a changed item, and merge the
  two sets back into the canonical enumeration order.

The correctness discipline throughout is *bit-identity*: a delta-maintained
index must be indistinguishable — same answers, same oracle-call budget, same
persisted payload bytes — from an index rebuilt from scratch on the mutated
dataset.  Oracle verdicts are data-dependent, so every oracle-consuming stage
(sector evaluation, cell marking/colouring, region evaluation) re-runs in
full after a delta; what the incremental paths avoid recomputing is the
oracle-free geometry (exchange angles, exchange hyperplanes, cell-plane
assignments), which is exactly the part that is safe to reuse verbatim.
Deltas apply **updates, then deletes, then inserts**: update indices and
delete indices both refer to pre-delta item positions, and inserted items are
appended after the surviving rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.dominance import exchange_pairs_touching
from repro.exceptions import ConfigurationError, DatasetError
from repro.geometry.dual import hyperpolar_many
from repro.geometry.hyperplane import Hyperplane

__all__ = [
    "DatasetDelta",
    "MaintenanceReport",
    "maintain_hyperplanes",
    "DELTA_FORMAT",
]

#: Schema identifier written into every serialised delta.
DELTA_FORMAT = "repro.delta/v1"


def _as_score_row(row: Sequence[float], what: str) -> tuple[float, ...]:
    values = tuple(float(value) for value in row)
    if not values:
        raise DatasetError(f"{what} must contain at least one scoring value")
    if not all(np.isfinite(values)):
        raise DatasetError(f"{what} must be finite")
    if any(value < 0 for value in values):
        raise DatasetError(f"{what} must be non-negative (see paper §2)")
    return values


@dataclass(frozen=True)
class DatasetDelta:
    """One validated batch of item mutations against a dataset.

    Attributes
    ----------
    inserts:
        Scoring rows of the items to append, in append order.
    insert_types:
        Mapping from type-attribute name to one categorical value per inserted
        item.  When the target dataset carries type attributes, every one of
        them must be covered (fairness oracles consult them).
    deletes:
        Pre-delta indices of the items to remove.
    updates:
        ``(index, new_scores)`` pairs replacing the scoring row of existing
        items; indices are pre-delta positions.

    Application order is updates → deletes → inserts, so delete and update
    indices always refer to the original item positions.
    """

    inserts: tuple[tuple[float, ...], ...] = ()
    insert_types: Mapping[str, tuple] = field(default_factory=dict)
    deletes: tuple[int, ...] = ()
    updates: tuple[tuple[int, tuple[float, ...]], ...] = ()

    def __post_init__(self) -> None:
        inserts = tuple(_as_score_row(row, "an inserted item") for row in self.inserts)
        widths = {len(row) for row in inserts}
        if len(widths) > 1:
            raise DatasetError("all inserted items must share one dimension")
        deletes = tuple(int(index) for index in self.deletes)
        if any(index < 0 for index in deletes):
            raise DatasetError("delete indices must be non-negative")
        if len(set(deletes)) != len(deletes):
            raise DatasetError("delete indices must be unique")
        updates = tuple(
            (int(index), _as_score_row(row, "an updated item")) for index, row in self.updates
        )
        if any(index < 0 for index, _row in updates):
            raise DatasetError("update indices must be non-negative")
        update_indices = [index for index, _row in updates]
        if len(set(update_indices)) != len(update_indices):
            raise DatasetError("update indices must be unique")
        widths.update(len(row) for _index, row in updates)
        if len(widths) > 1:
            raise DatasetError("inserted and updated items must share one dimension")
        overlap = set(deletes) & set(update_indices)
        if overlap:
            raise DatasetError(
                f"indices {sorted(overlap)} are both updated and deleted; "
                "a delta must mutate each item at most once"
            )
        insert_types = {
            str(key): tuple(values) for key, values in dict(self.insert_types).items()
        }
        for key, values in insert_types.items():
            if len(values) != len(inserts):
                raise DatasetError(
                    f"insert_types[{key!r}] has {len(values)} values for "
                    f"{len(inserts)} inserted items"
                )
        if insert_types and not inserts:
            raise DatasetError("insert_types given without any inserted items")
        object.__setattr__(self, "inserts", inserts)
        object.__setattr__(self, "insert_types", insert_types)
        object.__setattr__(self, "deletes", deletes)
        object.__setattr__(self, "updates", updates)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def n_inserted(self) -> int:
        """Number of items the delta appends."""
        return len(self.inserts)

    @property
    def n_deleted(self) -> int:
        """Number of items the delta removes."""
        return len(self.deletes)

    @property
    def n_updated(self) -> int:
        """Number of items whose scores the delta replaces."""
        return len(self.updates)

    @property
    def n_changes(self) -> int:
        """Total number of item mutations the delta carries."""
        return self.n_inserted + self.n_deleted + self.n_updated

    @property
    def is_empty(self) -> bool:
        """True when the delta carries no mutation at all."""
        return self.n_changes == 0

    @property
    def insert_only(self) -> bool:
        """True when the delta only appends items (no deletes, no updates)."""
        return not self.deletes and not self.updates

    def staleness_fraction(self, n_items: int) -> float:
        """Fraction of the pre-delta dataset this delta mutates."""
        return self.n_changes / max(1, int(n_items))

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def _check_against(self, dataset: Dataset) -> None:
        d = dataset.n_attributes
        for row in self.inserts:
            if len(row) != d:
                raise DatasetError(
                    f"inserted item has {len(row)} scoring values for a "
                    f"{d}-attribute dataset"
                )
        for index, row in self.updates:
            if index >= dataset.n_items:
                raise DatasetError(
                    f"update index {index} out of range [0, {dataset.n_items})"
                )
            if len(row) != d:
                raise DatasetError(
                    f"updated item has {len(row)} scoring values for a "
                    f"{d}-attribute dataset"
                )
        for index in self.deletes:
            if index >= dataset.n_items:
                raise DatasetError(
                    f"delete index {index} out of range [0, {dataset.n_items})"
                )
        if self.inserts:
            missing = sorted(set(dataset.type_attributes) - set(self.insert_types))
            if missing:
                raise DatasetError(
                    f"inserted items lack values for type attribute(s) {missing}; "
                    "fairness oracles consult every type attribute"
                )
            unknown = sorted(set(self.insert_types) - set(dataset.type_attributes))
            if unknown:
                raise DatasetError(
                    f"insert_types names unknown type attribute(s) {unknown}"
                )

    def apply(self, dataset: Dataset) -> Dataset:
        """Return the mutated dataset (updates → deletes → inserts).

        The original dataset is never modified; the result preserves its name
        and scoring-attribute order, so a from-scratch rebuild on the returned
        dataset is byte-identical to what a fresh engine would persist.
        """
        self._check_against(dataset)
        scores = dataset.scores.copy()
        for index, row in self.updates:
            scores[index] = row
        keep = np.ones(dataset.n_items, dtype=bool)
        if self.deletes:
            keep[list(self.deletes)] = False
        if not np.any(keep) and not self.inserts:
            raise DatasetError("a delta may not delete every item of a dataset")
        scores = scores[keep]
        types: dict[str, np.ndarray] = {
            key: np.asarray(column)[keep] for key, column in dataset.types.items()
        }
        if self.inserts:
            scores = (
                np.vstack([scores, np.asarray(self.inserts, dtype=float)])
                if scores.size
                else np.asarray(self.inserts, dtype=float)
            )
            types = {
                key: np.concatenate(
                    [column, np.asarray(self.insert_types[key], dtype=column.dtype)]
                )
                for key, column in types.items()
            }
        return Dataset(
            scores=scores,
            scoring_attributes=dataset.scoring_attributes,
            types=types,
            name=dataset.name,
        )

    def index_map(self, n_before: int) -> dict[int, int]:
        """Map pre-delta item indices to post-delta indices for surviving items.

        Deleted items are absent from the mapping; updated items survive at
        their (shifted) position.  The map is monotone, so remapping a pair
        ``(i, j)`` with ``i < j`` preserves the order of its endpoints.
        """
        deleted = set(self.deletes)
        mapping: dict[int, int] = {}
        new_index = 0
        for old_index in range(int(n_before)):
            if old_index in deleted:
                continue
            mapping[old_index] = new_index
            new_index += 1
        return mapping

    def touched_new_indices(self, n_before: int, n_after: int) -> set[int]:
        """Post-delta indices whose scoring rows differ from the pre-delta index.

        These are the updated items (remapped through :meth:`index_map`) plus
        every inserted item; any exchange pair involving one of them must be
        re-derived, while pairs between untouched items keep their geometry
        verbatim.
        """
        mapping = self.index_map(n_before)
        touched = {mapping[index] for index, _row in self.updates if index in mapping}
        touched.update(range(int(n_after) - self.n_inserted, int(n_after)))
        return touched

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Serialise the delta to a JSON-compatible dict (see :data:`DELTA_FORMAT`)."""
        return {
            "format": DELTA_FORMAT,
            "inserts": [list(row) for row in self.inserts],
            "insert_types": {
                key: [
                    value.item() if isinstance(value, np.generic) else value
                    for value in values
                ]
                for key, values in self.insert_types.items()
            },
            "deletes": list(self.deletes),
            "updates": [[index, list(row)] for index, row in self.updates],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatasetDelta":
        """Rebuild a delta from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping) or payload.get("format") != DELTA_FORMAT:
            raise ConfigurationError(
                f"payload is not a serialised dataset delta "
                f"(expected format {DELTA_FORMAT!r})"
            )
        try:
            return cls(
                inserts=tuple(tuple(row) for row in payload.get("inserts", ())),
                insert_types={
                    key: tuple(values)
                    for key, values in dict(payload.get("insert_types", {})).items()
                },
                deletes=tuple(payload.get("deletes", ())),
                updates=tuple(
                    (index, tuple(row)) for index, row in payload.get("updates", ())
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed dataset-delta payload: {exc}") from exc


@dataclass(frozen=True)
class MaintenanceReport:
    """What one ``apply_delta`` / ``refresh`` call did to an engine's index.

    ``strategy`` is ``"incremental"`` when the oracle-free geometry was
    maintained in place, ``"rebuild"`` when the engine fell back to a full
    from-scratch preprocess (e.g. the delta exceeded the configured staleness
    fraction, or the engine was loaded without its geometry caches), and
    ``"refresh"`` when only the oracle-dependent stages were re-run over
    unchanged geometry.  No wall clocks are recorded here — reports ride
    along in journaled payloads, which must stay byte-stable.
    """

    engine: str
    strategy: str
    n_inserted: int = 0
    n_deleted: int = 0
    n_updated: int = 0
    staleness_fraction: float = 0.0
    details: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Dashboard-ready snapshot of the report."""
        return {
            "engine": self.engine,
            "strategy": self.strategy,
            "n_inserted": self.n_inserted,
            "n_deleted": self.n_deleted,
            "n_updated": self.n_updated,
            "staleness_fraction": self.staleness_fraction,
            "details": dict(self.details),
        }


def maintain_hyperplanes(
    old_hyperplanes: Sequence[Hyperplane],
    delta: DatasetDelta,
    new_scores: np.ndarray,
    n_before: int,
) -> tuple[list[Hyperplane], dict[int, int], list[int]]:
    """Incrementally maintain a full exchange-hyperplane list under a delta.

    Drops the hyperplanes whose pair touches a deleted or updated item, remaps
    the retained labels through the delta's (monotone) index map — reusing the
    coefficient floats verbatim — constructs hyperplanes only for the pairs
    that involve a changed item (via the same
    :func:`~repro.geometry.dual.hyperpolar_many` kernel the full build uses,
    which is batch-independent per pair), and merges both sets sorted by the
    ``(i, j)`` pair label.  Because the full build enumerates pairs in
    row-major ``i < j`` order, the merged list is bit-identical — same
    hyperplanes, same order — to ``hyperplanes_for_dataset`` on the mutated
    dataset.

    Only valid for *complete* hyperplane lists: convex-layer filtering and
    ``max_hyperplanes`` caps make the retained-set computation unsound, so
    engines using either must rebuild.

    Returns
    -------
    (merged, position_map, fresh_positions)
        ``merged`` is the new hyperplane list; ``position_map`` maps old list
        positions of retained hyperplanes to their new positions;
        ``fresh_positions`` lists the new positions of the newly constructed
        hyperplanes, in construction order.
    """
    new_scores = np.asarray(new_scores, dtype=float)
    n_after = new_scores.shape[0]
    mapping = delta.index_map(n_before)
    touched = delta.touched_new_indices(n_before, n_after)

    retained: list[tuple[tuple[int, int], tuple[str, int], Hyperplane]] = []
    for position, plane in enumerate(old_hyperplanes):
        if plane.label is None:
            raise ConfigurationError(
                "incremental hyperplane maintenance requires pair-labelled hyperplanes"
            )
        i, j = plane.label
        new_i = mapping.get(i)
        new_j = mapping.get(j)
        if new_i is None or new_j is None or new_i in touched or new_j in touched:
            continue
        if (new_i, new_j) != (i, j):
            plane = Hyperplane(plane.coefficients, label=(new_i, new_j))
        retained.append(((plane.label[0], plane.label[1]), ("old", position), plane))

    fresh: list[Hyperplane] = []
    if touched:
        pairs = exchange_pairs_touching(new_scores, touched)
        if pairs.shape[0]:
            fresh = hyperpolar_many(new_scores, pairs)
    tagged = retained + [
        ((plane.label[0], plane.label[1]), ("new", position), plane)
        for position, plane in enumerate(fresh)
    ]
    tagged.sort(key=lambda entry: entry[0])

    merged: list[Hyperplane] = []
    position_map: dict[int, int] = {}
    fresh_positions: list[int] = [0] * len(fresh)
    for new_position, (_label, (origin, position), plane) in enumerate(tagged):
        merged.append(plane)
        if origin == "old":
            position_map[position] = new_position
        else:
            fresh_positions[position] = new_position
    return merged, position_map, fresh_positions
