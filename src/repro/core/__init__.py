"""Core contribution: offline indexing of satisfactory regions and online query answering."""

from repro.core.approx import (
    ApproximatePreprocessor,
    MDApproxIndex,
    PreprocessingTimings,
    md_online,
    md_online_lookup,
)
from repro.core.engine import (
    ApproxConfig,
    ApproxEngine,
    EngineCapabilities,
    ExactConfig,
    ExactEngine,
    QueryEngine,
    TwoDConfig,
    TwoDEngine,
    available_engines,
    create_engine,
    engine_from_payload,
    get_engine,
    register_engine,
)
from repro.core.explain import (
    RepairExplanation,
    TopKDelta,
    explain_repair,
    format_explanation,
)
from repro.core.monitoring import (
    ErrorBudgetReport,
    FreshnessReport,
    check_approx_index_freshness,
    check_two_d_index_freshness,
    error_budget_report,
    refresh_approx_index,
)
from repro.core.multi_dim import MDExactIndex, SatisfactoryRegion, SatRegions, md_baseline
from repro.core.result import SuggestionResult
from repro.core.sampling import (
    SampleValidationReport,
    preprocess_with_sampling,
    validate_index_on_dataset,
)
from repro.core.session import DesignSession, ProposalRecord, SessionSummary
from repro.core.system import FairRankingDesigner
from repro.core.two_dim import AngularInterval, TwoDIndex, TwoDRaySweep, two_d_online

__all__ = [
    "QueryEngine",
    "EngineCapabilities",
    "TwoDConfig",
    "ExactConfig",
    "ApproxConfig",
    "TwoDEngine",
    "ExactEngine",
    "ApproxEngine",
    "register_engine",
    "get_engine",
    "available_engines",
    "create_engine",
    "engine_from_payload",
    "SuggestionResult",
    "AngularInterval",
    "TwoDIndex",
    "TwoDRaySweep",
    "two_d_online",
    "SatisfactoryRegion",
    "MDExactIndex",
    "SatRegions",
    "md_baseline",
    "ApproximatePreprocessor",
    "MDApproxIndex",
    "PreprocessingTimings",
    "md_online",
    "md_online_lookup",
    "SampleValidationReport",
    "preprocess_with_sampling",
    "validate_index_on_dataset",
    "FreshnessReport",
    "check_approx_index_freshness",
    "check_two_d_index_freshness",
    "refresh_approx_index",
    "ErrorBudgetReport",
    "error_budget_report",
    "DesignSession",
    "ProposalRecord",
    "SessionSummary",
    "RepairExplanation",
    "TopKDelta",
    "explain_repair",
    "format_explanation",
    "FairRankingDesigner",
]
