"""Example: designing fair weights vs. re-ranking the output afterwards.

The related work the paper positions itself against (§7) fixes unfair rankings
*after* scoring: FA*IR-style re-rankers interleave protected candidates, and
constrained top-k selection imposes per-group quotas on the selected set.  The
paper's approach instead repairs the *weights*, so the final ranking is still
induced by one transparent linear function.  This example runs all three on
the same screening task and compares:

* whether the fairness constraint is met,
* how much total score (utility) the top-k sacrifices, and
* whether the result is still explainable as a linear scoring function.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

import math

from repro.experiments import experiment_baseline_comparison


def main() -> None:
    rows = experiment_baseline_comparison(
        n_items=400, d=3, k=0.25, slack=0.10, n_cells=256, max_hyperplanes=150
    )
    header = f"{'method':18s} {'fair?':6s} {'protected share':16s} {'utility':8s} {'linear?':8s} {'distance':9s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        distance = "-" if math.isnan(row.angular_distance_to_query) else f"{row.angular_distance_to_query:.3f}"
        print(
            f"{row.method:18s} {str(row.satisfies_constraint):6s} "
            f"{row.protected_share:16.3f} {row.utility:8.3f} {str(row.is_linear):8s} {distance:9s}"
        )

    print(
        "\nReading the table: every intervention meets the constraint, but only the\n"
        "designer's answer remains a linear scoring function over the attributes —\n"
        "the property that makes the ranking scheme transparent and reusable.  The\n"
        "utility column shows how much top-k score each intervention gives up\n"
        "relative to the unconstrained ranking."
    )


if __name__ == "__main__":
    main()
