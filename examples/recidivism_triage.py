"""Multi-dimensional example: prioritising supportive interventions (COMPAS-like data).

The paper's §6.2 motivates a scenario where individuals judged more likely to
re-offend are given higher priority for supportive services.  The scoring
function combines three risk-related attributes; the fairness oracle bounds
the share of African-American individuals among the top-ranked 30 % to at most
10 % above their share of the population (the paper's default FM1 constraint),
and a second, stricter FM2 oracle additionally bounds males and the youngest
age bucket.

This example exercises the multi-dimensional (approximate) pipeline: grid
preprocessing, online suggestions with the Theorem 6 guarantee, and the FM1 /
FM2 comparison.

Run with::

    python examples/recidivism_triage.py
"""

from __future__ import annotations

from repro import (
    ApproxConfig,
    FairRankingDesigner,
    LinearScoringFunction,
    MultiAttributeOracle,
    ProportionalOracle,
)
from repro.data import make_compas_like
from repro.fairness import group_share_at_k
from repro.ranking import random_queries

SCORING_ATTRIBUTES = ["c_days_from_compas", "juv_other_count", "start"]


def main() -> None:
    dataset = make_compas_like(n=250, seed=3).project(SCORING_ATTRIBUTES)
    k = int(0.30 * dataset.n_items)
    print(f"dataset: {dataset.n_items} individuals, scoring attributes {SCORING_ATTRIBUTES}")

    # FM1: the paper's default constraint on race.
    fm1 = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.30, slack=0.10
    )
    designer = FairRankingDesigner(
        dataset, fm1, ApproxConfig(n_cells=256, max_hyperplanes=120)
    ).preprocess()
    print(f"FM1 constraint: {fm1.describe()}")
    print(f"approximation bound (Theorem 6): {designer.index.approximation_bound():.4f} rad")

    proposal = LinearScoringFunction((0.5, 0.3, 0.2))
    result = designer.suggest(proposal)
    share = group_share_at_k(dataset, proposal.order(dataset), "race", "African-American", k)
    print(f"\nproposal {proposal.weights}: African-American share of top-{k} = {share:.1%}")
    if result.satisfactory:
        print("  already satisfactory")
    else:
        weights = tuple(round(value, 4) for value in result.function.weights)
        repaired_share = group_share_at_k(
            dataset, result.function.order(dataset), "race", "African-American", k
        )
        print(
            f"  suggested weights {weights} at angular distance "
            f"{result.angular_distance:.4f} rad; share becomes {repaired_share:.1%}"
        )

    # Batch validation in the spirit of the paper's Figure 16.
    repaired_distances = []
    already_fair = 0
    for query in random_queries(3, 30, seed=11):
        answer = designer.suggest(query)
        if answer.satisfactory:
            already_fair += 1
        else:
            repaired_distances.append(answer.angular_distance)
    print(f"\n30 random proposals: {already_fair} already fair, {len(repaired_distances)} repaired")
    if repaired_distances:
        print(
            f"  repair distances: max {max(repaired_distances):.3f} rad, "
            f"mean {sum(repaired_distances) / len(repaired_distances):.3f} rad"
        )

    # FM2: simultaneously bound race, sex and the youngest age bucket (§6.2).
    fm2 = MultiAttributeOracle.from_dataset_shares(
        dataset,
        {"race": ["African-American"], "sex": ["male"], "age_bucketized": ["30_or_younger"]},
        k=0.30,
        slack=0.10,
    )
    fm2_designer = FairRankingDesigner(
        dataset, fm2, ApproxConfig(n_cells=256, max_hyperplanes=120)
    ).preprocess()
    fm2_result = fm2_designer.suggest(proposal)
    print(f"\nFM2 constraint: {fm2.describe()}")
    if fm2_result.satisfactory:
        print("  the proposal satisfies even the stricter FM2 constraint")
    else:
        print(
            "  FM2 repair is further away than the FM1 repair "
            f"({fm2_result.angular_distance:.4f} rad vs {result.angular_distance:.4f} rad), "
            "as expected for a stricter constraint"
        )


if __name__ == "__main__":
    main()
