"""Diversity example at scale: carrier diversity in flight rankings (DOT-like data).

Section 5.4 / 6.4 of the paper shows that for very large datasets the offline
phase can run on a uniform sample: a function that is satisfactory on the
sample is (empirically always) satisfactory on the full data.  The "fairness"
oracle here is really a *diversity* constraint — no single major carrier may
dominate the top 10 % of an on-time-performance ranking — illustrating that
the machinery is agnostic to what the binary oracle means.

Run with::

    python examples/flight_diversity.py
"""

from __future__ import annotations

import time

from repro import LinearScoringFunction, MultiAttributeOracle, ProportionalOracle
from repro.core import md_online, preprocess_with_sampling, validate_index_on_dataset
from repro.data import make_dot_like
from repro.ranking import topk

MAJOR_CARRIERS = ("WN", "DL", "AA", "UA")


def main() -> None:
    # A DOT-like dataset; the real one has 1.3M rows — scale n up if you have a
    # few minutes to spare, the code path is identical.
    dataset = make_dot_like(n=100_000, seed=5)
    print(f"dataset: {dataset.n_items} flights, attributes {list(dataset.scoring_attributes)}")
    shares = dataset.group_proportions("carrier")
    print("major carrier shares:", {c: round(shares[c], 3) for c in MAJOR_CARRIERS})

    # Diversity constraint (§6.4): each major carrier at most 5% above its
    # dataset share among the top 10% of the ranking.
    oracle = MultiAttributeOracle(
        [
            ProportionalOracle.at_most_share_plus_slack(dataset, "carrier", carrier, k=0.10, slack=0.05)
            for carrier in MAJOR_CARRIERS
        ],
        k=0.10,
    )

    # Offline phase on a uniform sample (the paper uses 1,000 of 1.3M rows).
    started = time.perf_counter()
    index = preprocess_with_sampling(
        dataset, oracle, sample_size=400, n_cells=256, max_hyperplanes=120, seed=5
    )
    print(f"\npreprocessing on a 500-row sample took {time.perf_counter() - started:.1f}s "
          f"({index.n_marked_cells}/{index.n_cells} cells marked directly)")

    # Validate the sample-derived functions against the full dataset (§6.4).
    report = validate_index_on_dataset(index, dataset, oracle)
    print(
        f"validation on the full data: {report.n_satisfactory}/{report.n_functions_checked} "
        f"assigned functions satisfactory ({report.fraction_satisfactory:.0%})"
    )

    # Online phase: a user proposes to rank flights mostly by departure delay.
    proposal = LinearScoringFunction((0.8, 0.1, 0.1))
    answer = md_online(index, proposal)
    k = int(0.10 * dataset.n_items)

    def carrier_counts(function: LinearScoringFunction) -> dict:
        counts = topk.group_counts_at_k(dataset, function.order(dataset), "carrier", k)
        return {c: counts.get(c, 0) for c in MAJOR_CARRIERS}

    print(f"\nproposal {proposal.weights}: major-carrier counts in top-{k}: {carrier_counts(proposal)}")
    if answer.satisfactory:
        print("  the proposal already satisfies the diversity constraint")
    else:
        weights = tuple(round(value, 4) for value in answer.function.weights)
        print(
            f"  suggested weights {weights} (angular distance {answer.angular_distance:.4f} rad); "
            f"counts become {carrier_counts(answer.function)}"
        )


if __name__ == "__main__":
    main()
