"""Example: designing weights under ranked group fairness (per-prefix constraints).

FM1 only constrains the group composition *at* the top-``k`` cut-off; a list
can satisfy it while pushing every protected candidate to the bottom of that
prefix.  Ranked group fairness (the FA*IR criterion) closes that loophole by
bounding the composition of *every* prefix.  Because the paper's machinery is
oracle-agnostic, the same weight-space index can be built for this stricter
constraint — this example does exactly that and contrasts the two.

The scenario is the paper's Example 1: an admissions score over normalised
GPA and SAT where the committee wants women to be represented throughout the
visible part of the list, not just in aggregate at the cut-off.

Run with::

    python examples/prefix_fairness.py
"""

from __future__ import annotations

import numpy as np

from repro import FairRankingDesigner, TwoDConfig
from repro.data import make_admissions_like
from repro.exceptions import NoSatisfactoryFunctionError
from repro.fairness import PrefixProportionalOracle, ProportionalOracle
from repro.ranking import LinearScoringFunction


def prefix_profile(dataset, function, attribute, protected, k):
    """Protected share of every prefix 1..k under the given function."""
    ordering = function.order(dataset)
    member = (dataset.type_column(attribute)[ordering[:k]] == protected).astype(float)
    return np.cumsum(member) / np.arange(1, k + 1)


def main() -> None:
    dataset = make_admissions_like(n=400, seed=1)
    attribute, protected = "gender", "female"
    k = 60
    share = dataset.group_proportions(attribute)[protected]
    print(f"dataset: {dataset.n_items} applicants, {share:.0%} {protected}")

    query = LinearScoringFunction.uniform(dataset.n_attributes)

    # Constraint 1 — FM1: at least (share - 10%) women at the top-60 overall.
    fm1 = ProportionalOracle(attribute, protected, k=k, min_fraction=max(0.0, share - 0.10))
    # Constraint 2 — ranked group fairness: the same bound in every prefix of
    # length >= 10 (tiny prefixes make a fractional bound degenerate).
    prefix = PrefixProportionalOracle(
        attribute, protected, k=k, min_fraction=max(0.0, share - 0.10), min_prefix=10
    )

    for name, oracle in (("FM1 (top-k only)", fm1), ("ranked group fairness", prefix)):
        designer = FairRankingDesigner(dataset, oracle, TwoDConfig()).preprocess()
        try:
            answer = designer.suggest(query)
        except NoSatisfactoryFunctionError:
            # The strict per-prefix form (no relaxation for tiny prefixes) can
            # be unsatisfiable on a given pool — a finding in its own right.
            print(f"\n{name}: no weight vector satisfies this constraint on this pool")
            continue
        chosen = answer.function
        profile = prefix_profile(dataset, chosen, attribute, protected, k)
        status = "already fair" if answer.satisfactory else (
            f"repaired, distance {answer.angular_distance:.3f} rad"
        )
        print(f"\n{name}: {status}")
        print(f"  weights: {[round(w, 3) for w in chosen.weights]}")
        print(f"  {protected} share at k={k}: {profile[-1]:.0%}")
        print(f"  minimum {protected} share over prefixes 10..{k}: {profile[9:].min():.0%}")

    print(
        "\nThe FM1 repair only guarantees the aggregate share at the cut-off; the\n"
        "ranked-group-fairness repair additionally keeps the protected share from\n"
        "collapsing in the early prefixes of the list."
    )


if __name__ == "__main__":
    main()
