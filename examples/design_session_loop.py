"""Example: the interactive design loop of the paper, recorded as a session.

The paper's introduction describes how a human expert actually designs a
ranking scheme: propose weights, look at the outcome, adjust, repeat — with
the system keeping every iteration interactive and steering the expert toward
choices that satisfy the fairness constraint.  This example simulates a hiring
committee tuning a screening score over three merit attributes while keeping
the share of the historically over-represented group at the top of the list
bounded, and it prints both the session transcript and a before/after fairness
audit of the accepted function.

Run with::

    python examples/design_session_loop.py
"""

from __future__ import annotations

from repro import ApproxConfig, DesignSession, FairRankingDesigner
from repro.data import make_compas_like
from repro.fairness import ProportionalOracle, audit_function, compare_audits, format_audit


def main() -> None:
    # A candidate pool with three merit attributes and a protected attribute.
    dataset = make_compas_like(n=300, seed=2).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    attribute, protected = "race", "African-American"
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, attribute, protected, k=0.3, slack=0.10
    )
    print("constraint:", oracle.describe())

    designer = FairRankingDesigner(
        dataset, oracle, ApproxConfig(n_cells=256, max_hyperplanes=150)
    )
    session = DesignSession(designer)

    # The committee's first instinct: weigh everything equally.
    first = session.propose([1 / 3, 1 / 3, 1 / 3], note="equal weights")

    # Second try: a member argues the first attribute matters most.
    session.propose([0.6, 0.2, 0.2], note="favour the first attribute")

    # Third try: start from the system's first suggestion and nudge it.
    nudged = [round(0.9 * w + 0.1 * q, 3) for w, q in zip(first.suggestion.weights, first.query.weights)]
    session.propose(nudged, note="nudge the suggestion back toward equal weights")

    session.accept()
    print("\n--- session transcript ---")
    print(session.format_transcript())

    summary = session.summary()
    print("\n--- session summary ---")
    print(f"proposals: {summary.n_proposals}, already fair: {summary.n_already_satisfactory}, "
          f"mean repair distance: {summary.mean_repair_distance:.3f} rad, "
          f"accepted step: {summary.accepted_step}")

    # Audit the first (naive) proposal against the accepted function.
    before = audit_function(dataset, first.query, attribute, protected, k=0.3)
    after = audit_function(dataset, session.accepted_function, attribute, protected, k=0.3)
    print("\n--- fairness audit: first proposal ---")
    print(format_audit(before))
    print("\n--- fairness audit: accepted function ---")
    print(format_audit(after))

    print("\n--- measure-by-measure change (first proposal -> accepted) ---")
    for name, (before_value, after_value) in compare_audits(before, after).items():
        print(f"  {name:28s} {before_value:8.3f} -> {after_value:8.3f}")


if __name__ == "__main__":
    main()
