"""The paper's Example 1: designing a fair college-admissions ranking.

An admissions officer scores applicants with a weighted sum of normalised GPA
and SAT.  Equal weights under-select women at the top of the list because of a
documented SAT gender gap; the system suggests the closest weights that meet a
minimum-representation constraint.  The example also contrasts the paper's
*design-time* repair with an FA*IR-style *output-time* re-ranking baseline.

Run with::

    python examples/college_admissions.py
"""

from __future__ import annotations

from repro import FairRankingDesigner, LinearScoringFunction, ProportionalOracle
from repro.data import make_admissions_like
from repro.fairness import greedy_fair_rerank, group_share_at_k, selection_rate_ratio


def main() -> None:
    # A synthetic applicant pool with a built-in SAT gender gap (Example 1 cites
    # the 2014 gap of ~25 points; here the gap is on the normalised scale).
    dataset = make_admissions_like(n=600, seed=1, gap=0.10)
    k = 150
    print(f"applicant pool: {dataset.n_items}, admitting top-{k}")
    print(f"gender composition: {dataset.group_proportions('gender')}")

    # Fairness constraint: at least 40% women among the admitted class.
    oracle = ProportionalOracle("gender", "female", k=k, min_fraction=0.40)
    designer = FairRankingDesigner(dataset, oracle).preprocess()

    # The officer's a-priori choice: equal weights on GPA and SAT.
    proposal = LinearScoringFunction((0.5, 0.5))
    ordering_before = proposal.order(dataset)
    share_before = group_share_at_k(dataset, ordering_before, "gender", "female", k)
    print(f"\nequal weights (0.5 GPA, 0.5 SAT): women are {share_before:.1%} of the top-{k}")

    result = designer.suggest(proposal)
    if result.satisfactory:
        print("equal weights already meet the constraint for this pool")
    else:
        weights = tuple(round(value, 4) for value in result.function.weights)
        ordering_after = result.function.order(dataset)
        share_after = group_share_at_k(dataset, ordering_after, "gender", "female", k)
        print(f"design-time repair: weights {weights} "
              f"(angular distance {result.angular_distance:.4f} rad)")
        print(f"  women are now {share_after:.1%} of the top-{k}")
        print(
            "  selection-rate ratio (female vs male): "
            f"{selection_rate_ratio(dataset, ordering_before, 'gender', 'female', k):.2f} -> "
            f"{selection_rate_ratio(dataset, ordering_after, 'gender', 'female', k):.2f}"
        )

    # Baseline: keep the unfair scores and re-rank the output instead (FA*IR style).
    reranked = greedy_fair_rerank(
        dataset, ordering_before, "gender", "female", k=k, min_protected_fraction=0.40
    )
    share_reranked = group_share_at_k(dataset, reranked, "gender", "female", k)
    print(
        "\noutput-time baseline (greedy re-ranking of the unfair scores): "
        f"women are {share_reranked:.1%} of the top-{k}"
    )
    print(
        "unlike the re-ranking, the design-time repair produces a ranking that is "
        "still a transparent weighted sum of GPA and SAT"
    )


if __name__ == "__main__":
    main()
