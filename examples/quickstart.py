"""Quickstart: design a fair two-attribute ranking scheme in a dozen lines.

This mirrors the paper's Figure 1: a dataset with two scoring attributes and a
binary type attribute, a top-k parity constraint, a proposed set of weights
that violates it, and the system's suggestion of the closest weights that do
not.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FairRankingDesigner, LinearScoringFunction, ProportionalOracle, TwoDConfig
from repro.data import make_compas_like
from repro.fairness import group_share_at_k


def main() -> None:
    # 1. A dataset: scoring attributes in [0, 1] plus protected type attributes.
    #    (A synthetic stand-in for COMPAS; see DESIGN.md for the substitution.)
    dataset = make_compas_like(n=500, seed=7).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    print(f"dataset: {dataset.n_items} items, attributes {list(dataset.scoring_attributes)}")
    print(f"race composition: {dataset.group_proportions('race')}")

    # 2. A fairness oracle: at most 10% above the dataset share of
    #    African-American individuals among the top-ranked 30%.
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.30, slack=0.10
    )
    print(f"constraint: {oracle.describe()}")

    # 3. Offline preprocessing: index the satisfactory regions of weight space.
    #    (TwoDConfig selects the exact §3 ray-sweep pipeline; omitting the
    #    config auto-picks it for two scoring attributes.)
    designer = FairRankingDesigner(dataset, oracle, TwoDConfig()).preprocess()

    # 4. Online: propose weights; accept them or take the suggested repair.
    proposal = LinearScoringFunction((0.7, 0.3))
    result = designer.suggest(proposal)
    k = int(0.30 * dataset.n_items)

    share_before = group_share_at_k(
        dataset, proposal.order(dataset), "race", "African-American", k
    )
    print(f"\nproposed weights {proposal.weights}")
    print(f"  African-American share of top-{k}: {share_before:.1%}")
    if result.satisfactory:
        print("  the proposal already satisfies the constraint — nothing to change")
    else:
        share_after = group_share_at_k(
            dataset, result.function.order(dataset), "race", "African-American", k
        )
        print("  the proposal violates the constraint")
        print(
            f"  suggested weights {tuple(round(w, 4) for w in result.function.weights)} "
            f"(angular distance {result.angular_distance:.4f} rad, "
            f"cosine similarity {result.cosine_similarity():.4f})"
        )
        print(f"  African-American share of top-{k} under the suggestion: {share_after:.1%}")


if __name__ == "__main__":
    main()
