"""Example: preprocess once, persist the engine, and serve query batches from disk.

The paper's system splits work into an expensive offline phase and an
interactive online phase.  In a deployment those phases usually run in
different processes: a batch job preprocesses the candidate pool overnight and
writes the engine state; the interactive design tool only loads it and answers
queries.  This example walks through that split with the first-class
persistence of the engine API:

1. generate a COMPAS-like candidate pool and state the paper's default FM1
   constraint (at most "dataset share + 10%" African-American in the top 30%);
2. run the approximate preprocessing pipeline behind a
   :class:`~repro.core.engine.ApproxConfig`-configured designer and persist it
   with ``designer.save(path)`` — config, index and preprocessing dataset all
   travel in one JSON file;
3. pretend to be the online service: ``FairRankingDesigner.load(path, oracle)``
   and answer a whole batch of weight proposals through ``suggest_many``
   without redoing any preprocessing — with answers identical to the
   pre-save designer's.

Run with::

    python examples/index_persistence.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import ApproxConfig, FairRankingDesigner
from repro.data import make_compas_like
from repro.fairness import ProportionalOracle


def _oracle(dataset) -> ProportionalOracle:
    return ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )


def build_and_save(path: Path) -> list:
    """The batch side: preprocess the candidate pool and persist the engine."""
    dataset = make_compas_like(n=400, seed=0).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    designer = FairRankingDesigner(
        dataset, _oracle(dataset), ApproxConfig(n_cells=256, max_hyperplanes=150)
    )
    started = time.perf_counter()
    designer.preprocess()
    elapsed = time.perf_counter() - started
    designer.save(path)
    print(f"offline: preprocessed {dataset.n_items} items in {elapsed:.1f}s")
    print(f"offline: engine written to {path} ({path.stat().st_size / 1024:.0f} KiB)")
    proposals = [
        [0.34, 0.33, 0.33],
        [0.70, 0.20, 0.10],
        [0.10, 0.10, 0.80],
    ]
    return [proposals, designer.suggest_many(proposals)]


def serve_queries(path: Path, proposals, reference) -> None:
    """The online side: load the engine and answer the batch interactively."""
    # Only the oracle has to be reconstructed — the engine file carries the
    # configuration, the offline index, and the preprocessing dataset.
    probe = make_compas_like(n=400, seed=0).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    designer = FairRankingDesigner.load(path, _oracle(probe))
    print(
        f"\nonline: loaded {designer.mode!r} engine with {designer.index.n_cells} cells "
        f"(error bound {designer.index.approximation_bound():.3f} rad)"
    )

    started = time.perf_counter()
    answers = designer.suggest_many(proposals)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    for weights, answer in zip(proposals, answers):
        if answer.satisfactory:
            print(f"  {weights} is already fair")
        else:
            suggested = [round(value, 3) for value in answer.function.weights]
            print(
                f"  {weights} violates the constraint; closest fair weights {suggested} "
                f"(distance {answer.angular_distance:.3f} rad)"
            )
    print(f"  batch of {len(proposals)} answered in {elapsed_ms:.2f} ms")
    print(f"  identical to the pre-save answers: {answers == reference}")


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "fair_ranking_engine.json"
        proposals, reference = build_and_save(path)
        serve_queries(path, proposals, reference)


if __name__ == "__main__":
    main()
