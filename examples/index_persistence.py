"""Example: build the offline index once, persist it, and serve queries from disk.

The paper's system splits work into an expensive offline phase and an
interactive online phase.  In a deployment those phases usually run in
different processes: a batch job preprocesses the candidate pool overnight and
writes the index; the interactive design tool only loads the index and answers
queries.  This example walks through that split with the JSON index store:

1. generate a COMPAS-like candidate pool and state the paper's default FM1
   constraint (at most "dataset share + 10%" African-American in the top 30%);
2. run the approximate preprocessing pipeline and save the index (with the
   dataset snapshot embedded) to ``fair_ranking_index.json``;
3. pretend to be the online service: load the index from disk and answer a few
   weight proposals without redoing any preprocessing.

Run with::

    python examples/index_persistence.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import FairRankingDesigner, load_index, save_index
from repro.data import make_compas_like
from repro.fairness import ProportionalOracle
from repro.ranking import LinearScoringFunction


def build_and_save(path: Path) -> None:
    """The batch side: preprocess the candidate pool and persist the index."""
    dataset = make_compas_like(n=400, seed=0).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    designer = FairRankingDesigner(
        dataset, oracle, n_cells=256, max_hyperplanes=150
    )
    started = time.perf_counter()
    designer.preprocess()
    elapsed = time.perf_counter() - started
    save_index(designer.index, path, include_dataset=True)
    print(f"offline: preprocessed {dataset.n_items} items in {elapsed:.1f}s")
    print(f"offline: index written to {path} ({path.stat().st_size / 1024:.0f} KiB)")


def serve_queries(path: Path) -> None:
    """The online side: load the index and answer proposals interactively."""
    dataset = make_compas_like(n=400, seed=0).project(
        ["c_days_from_compas", "juv_other_count", "start"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    index = load_index(path, oracle=oracle)
    print(f"\nonline: loaded index with {index.n_cells} cells "
          f"(error bound {index.approximation_bound():.3f} rad)")

    proposals = [
        [0.34, 0.33, 0.33],
        [0.70, 0.20, 0.10],
        [0.10, 0.10, 0.80],
    ]
    for weights in proposals:
        started = time.perf_counter()
        answer = index.query(LinearScoringFunction(tuple(weights)))
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if answer.satisfactory:
            print(f"  {weights} is already fair ({elapsed_ms:.2f} ms)")
        else:
            suggested = [round(value, 3) for value in answer.function.weights]
            print(
                f"  {weights} violates the constraint; closest fair weights {suggested} "
                f"(distance {answer.angular_distance:.3f} rad, {elapsed_ms:.2f} ms)"
            )


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "fair_ranking_index.json"
        build_and_save(path)
        serve_queries(path)


if __name__ == "__main__":
    main()
