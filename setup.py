"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml (PEP 621); this file only exists
so that legacy editable installs (`pip install -e .` without build isolation)
work on machines that cannot reach PyPI to fetch build requirements.
"""

from setuptools import setup

setup()
