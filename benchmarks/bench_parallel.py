"""Scaling-vs-cores benchmark for the PR-9 parallel layer.

Three phases, each timed at worker counts 1, 2 and 4 with bit-identity
asserted against the serial path on every run:

* ``angles_2d`` — sharded 2-D exchange-angle enumeration
  (:func:`repro.parallel.parallel_exchange_angles_2d`), the pair-enumeration
  workload that dominates 2-D preprocessing at large n;
* ``hyperplanes`` — sharded exchange-hyperplane construction
  (:func:`repro.parallel.parallel_hyperplanes_for_dataset`), the
  multi-dimensional preprocessing kernel;
* ``serving`` — batch throughput of :class:`repro.parallel.PoolEngine` over
  a preprocessed approximate index.

Run standalone to regenerate the committed record::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full grid
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick    # small grid

which writes ``BENCH_parallel.json`` at the repository root through the
shared ``repro.bench/v1`` envelope.  ``parameters.cpu_count`` records how
many cores the run actually had: on a single-CPU container the speedup
columns honestly hover around (or below) 1.0× — the record then documents
IPC overhead, not parallel speedup, and should be regenerated on a
multi-core machine for the scaling claim.

The pytest entry runs a reduced grid and asserts only bit-identity and
record shape, never speed — wall-clock assertions on shared CI boxes are
flakiness generators.
"""

from __future__ import annotations

import argparse
import os
import time

from _results import write_bench_record
from repro.core.engine import ApproxConfig, create_engine
from repro.data.synthetic import make_compas_like
from repro.fairness.proportional import ProportionalOracle
from repro.geometry.dual import build_exchange_angles_2d, hyperplanes_for_dataset
from repro.parallel import (
    PoolEngine,
    parallel_exchange_angles_2d,
    parallel_hyperplanes_for_dataset,
)

WORKER_COUNTS = (1, 2, 4)

# angles_n is bounded by memory, not time: the exchange list is O(n^2) Python
# tuples (~1M per 2k items on COMPAS-like data), so n=5000 already moves ~6M
# tuples per run while staying comfortably inside a small container.
FULL_SCALE = {"angles_n": 5_000, "hyperplanes_n": 500, "serving_n": 1_000, "batch": 240}
QUICK_SCALE = {"angles_n": 2_000, "hyperplanes_n": 120, "serving_n": 200, "batch": 48}

ATTRIBUTES = ["c_days_from_compas", "juv_other_count", "start"]


def _timed(function, *args, **kwargs):
    start = time.perf_counter()
    value = function(*args, **kwargs)
    return value, time.perf_counter() - start


def _scaling_rows(serial_seconds: float, runs: list[tuple[int, float, bool]]) -> list[dict]:
    return [
        {
            "n_workers": n_workers,
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds if seconds > 0 else float("inf"),
            "identical_to_serial": identical,
        }
        for n_workers, seconds, identical in runs
    ]


def bench_angles_2d(n_items: int) -> dict:
    dataset = make_compas_like(n=n_items, seed=5).project(ATTRIBUTES[:2])
    serial, serial_seconds = _timed(build_exchange_angles_2d, dataset)
    runs = []
    for n_workers in WORKER_COUNTS:
        parallel, seconds = _timed(
            parallel_exchange_angles_2d, dataset, n_workers=n_workers
        )
        runs.append((n_workers, seconds, parallel == serial))
    return {
        "phase": "angles_2d",
        "n_items": n_items,
        "n_exchanges": len(serial),
        "serial_seconds": serial_seconds,
        "workers": _scaling_rows(serial_seconds, runs),
    }


def bench_hyperplanes(n_items: int) -> dict:
    dataset = make_compas_like(n=n_items, seed=5).project(ATTRIBUTES)
    serial, serial_seconds = _timed(hyperplanes_for_dataset, dataset)
    runs = []
    for n_workers in WORKER_COUNTS:
        parallel, seconds = _timed(
            parallel_hyperplanes_for_dataset, dataset, n_workers=n_workers
        )
        runs.append((n_workers, seconds, parallel == serial))
    return {
        "phase": "hyperplanes",
        "n_items": n_items,
        "n_hyperplanes": len(serial),
        "serial_seconds": serial_seconds,
        "workers": _scaling_rows(serial_seconds, runs),
    }


def bench_serving(n_items: int, batch: int) -> dict:
    import numpy as np

    dataset = make_compas_like(n=n_items, seed=5).project(ATTRIBUTES)
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    config = ApproxConfig(n_cells=256, max_hyperplanes=150)
    engine = create_engine(dataset, oracle, config).preprocess()
    rng = np.random.default_rng(2)
    grid = rng.random((batch, dataset.n_attributes))
    grid /= grid.sum(axis=1, keepdims=True)
    serial, serial_seconds = _timed(engine.suggest_many, grid)
    runs = []
    for n_workers in WORKER_COUNTS:
        with PoolEngine.from_engine(engine, n_workers=n_workers, seed=1) as pool:
            pooled, seconds = _timed(pool.suggest_many, grid)
        runs.append((n_workers, seconds, pooled == serial))
    return {
        "phase": "serving",
        "n_items": n_items,
        "batch_queries": batch,
        "serial_seconds": serial_seconds,
        "serial_queries_per_second": batch / serial_seconds if serial_seconds > 0 else float("inf"),
        "workers": _scaling_rows(serial_seconds, runs),
    }


def run_grid(scale: dict) -> dict:
    return {
        "benchmark": "parallel_scaling",
        "workload": "make_compas_like(seed=5); FM1 (<= share+10% African-American "
        "in top 30%) for the serving phase",
        "phases": [
            bench_angles_2d(scale["angles_n"]),
            bench_hyperplanes(scale["hyperplanes_n"]),
            bench_serving(scale["serving_n"], scale["batch"]),
        ],
    }


def test_parallel_benchmark_shape_and_identity(benchmark, once):
    """Reduced-grid pytest entry: every phase stays bit-identical to serial."""
    payload = once(benchmark, run_grid, QUICK_SCALE)
    print("\n[perf] parallel scaling (reduced grid)")
    for phase in payload["phases"]:
        for row in phase["workers"]:
            print(
                f"  {phase['phase']} workers={row['n_workers']}: "
                f"{row['seconds']:.3f}s ({row['speedup_vs_serial']:.2f}x)"
            )
            assert row["identical_to_serial"]
    assert {phase["phase"] for phase in payload["phases"]} == {
        "angles_2d",
        "hyperplanes",
        "serving",
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grid, no record rewrite")
    args = parser.parse_args()
    scale = QUICK_SCALE if args.quick else FULL_SCALE
    payload = run_grid(scale)
    for phase in payload["phases"]:
        print(f"{phase['phase']} (serial {phase['serial_seconds']:.3f}s):")
        for row in phase["workers"]:
            print(
                f"  workers={row['n_workers']}: {row['seconds']:.3f}s "
                f"({row['speedup_vs_serial']:.2f}x, "
                f"identical={row['identical_to_serial']})"
            )
    if args.quick:
        print("quick run: BENCH_parallel.json not rewritten")
        return
    output = write_bench_record(
        "BENCH_parallel.json",
        payload,
        parameters={
            **FULL_SCALE,
            "worker_counts": list(WORKER_COUNTS),
            "cpu_count": os.cpu_count(),
            "seed": 5,
        },
        repeat_policy="single timed run per (phase, worker count); "
        "bit-identity asserted on every run",
    )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
