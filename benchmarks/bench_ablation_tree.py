"""A1 — ablation of the arrangement tree and early stopping inside SATREGIONS/MARKCELL.

DESIGN.md calls out two design choices worth ablating: (1) the arrangement
tree (§4) against a flat region scan, and (2) the early-stopping probe used by
MARKCELL (§5.1) against marking cells by exhaustive arrangement construction.
This benchmark quantifies (1) in terms of hyperplane-vs-region intersection
tests and wall-clock time on the same input, at a slightly larger scale than
Figure 18.
"""

from __future__ import annotations

import time

from repro.experiments import default_compas_dataset, format_table
from repro.geometry.arrangement import Arrangement
from repro.geometry.arrangement_tree import ArrangementTree
from repro.geometry.dual import build_exchange_hyperplanes


def _build_both(n_hyperplanes: int):
    dataset = default_compas_dataset(n=70, d=3, seed=0)
    hyperplanes = build_exchange_hyperplanes(dataset)[:n_hyperplanes]

    started = time.perf_counter()
    flat = Arrangement.build(hyperplanes, dimension=2)
    flat_seconds = time.perf_counter() - started

    started = time.perf_counter()
    tree = ArrangementTree(dimension=2)
    for hyperplane in hyperplanes:
        tree.insert(hyperplane)
    tree_seconds = time.perf_counter() - started
    return flat, flat_seconds, tree, tree_seconds


def test_ablation_arrangement_tree_tests_and_time(benchmark, once):
    flat, flat_seconds, tree, tree_seconds = once(benchmark, _build_both, 70)
    rows = [
        ["flat scan: intersection tests", flat.split_tests],
        ["flat scan: seconds", round(flat_seconds, 2)],
        ["arrangement tree: intersection tests", tree.split_tests],
        ["arrangement tree: seconds", round(tree_seconds, 2)],
        ["flat regions", flat.n_regions],
        ["tree regions", tree.n_regions],
    ]
    print("\n[Ablation A1] arrangement tree vs flat region scan (100 hyperplanes)")
    print(format_table(["quantity", "value"], rows))
    # The tree must do no more intersection tests than the flat scan.
    assert tree.split_tests <= flat.split_tests
