"""Incremental maintenance benchmark: ``apply_delta`` vs full rebuild.

Times the PR-10 maintenance seam on the 2-D engine: a small mixed
insert/delete/update delta applied through
:meth:`~repro.core.engine.QueryEngine.apply_delta` (which re-sweeps only the
exchange pairs touching changed items) against preprocessing a fresh engine
from scratch on the mutated dataset.  Every run *asserts* the maintained
engine is bit-identical to the rebuild — same answer fingerprints, same
oracle-call budget, same persisted payload bytes — via the shared
:mod:`differential` harness; the timing numbers are only reported once that
proof passes.

Run standalone to regenerate the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_incremental.py

which writes ``BENCH_incremental.json`` at the repository root with the full
n ∈ {500, 2000} grid.  The pytest entry point runs a reduced size so the
benchmark suite stays quick; the bit-identity invariant is also guarded by
the ``dynamic``-marked tier-1 tests in ``tests/test_dynamic_equivalence.py``.
"""

from __future__ import annotations

import sys
import time

import numpy as np
from _results import REPO_ROOT, write_bench_record

sys.path.insert(0, str(REPO_ROOT / "tests"))

from differential import assert_engines_equivalent, make_weight_grid  # noqa: E402

from repro.core.engine import TwoDConfig, create_engine  # noqa: E402
from repro.core.maintenance import DatasetDelta  # noqa: E402
from repro.data.synthetic import make_compas_like  # noqa: E402
from repro.fairness.oracle import CountingOracle  # noqa: E402
from repro.fairness.proportional import ProportionalOracle  # noqa: E402

DEFAULT_N_VALUES = (500, 2000)
DATASET_SEED = 5
DELTA_SEED = 7
N_QUERIES = 32


def _oracle() -> CountingOracle:
    # Fixed constructor parameters: the maintained engine and the rebuilt
    # twin must answer under the *same* constraint, so the constraint may
    # not be derived from either side's dataset.
    return CountingOracle(
        ProportionalOracle("race", "African-American", 0.3, max_fraction=0.60)
    )


def _dataset(n: int):
    return make_compas_like(n=n, seed=DATASET_SEED).project(
        ["c_days_from_compas", "juv_other_count"]
    )


def _delta(dataset) -> DatasetDelta:
    """A small mixed delta: 3 inserts, 2 deletes, 1 update."""
    rng = np.random.default_rng(DELTA_SEED)
    inserts = tuple(
        tuple(float(value) for value in row)
        for row in rng.random((3, dataset.n_attributes)) + 0.01
    )
    insert_types = {
        attribute: tuple(rng.choice(np.asarray(column), size=3))
        for attribute, column in dataset.types.items()
    }
    update_row = tuple(float(value) for value in rng.random(dataset.n_attributes) + 0.01)
    return DatasetDelta(
        inserts=inserts,
        insert_types=insert_types,
        deletes=(1, 5),
        updates=((7, update_row),),
    )


def compare_maintenance(n: int) -> dict:
    """Time apply_delta vs full rebuild at one dataset size, proving identity."""
    config = TwoDConfig(staleness_fraction=1.0)
    dataset = _dataset(n)

    engine = create_engine(dataset, _oracle(), config)
    start = time.perf_counter()
    engine.preprocess()
    base_seconds = time.perf_counter() - start

    delta = _delta(dataset)
    start = time.perf_counter()
    report = engine.apply_delta(delta)
    incremental_seconds = time.perf_counter() - start
    if report.strategy != "incremental":
        raise AssertionError(f"expected the incremental path, got {report.as_dict()}")

    fresh = create_engine(delta.apply(_dataset(n)), _oracle(), config)
    start = time.perf_counter()
    fresh.preprocess()
    rebuild_seconds = time.perf_counter() - start

    # The bit-identity proof: answers, oracle-call budgets, payload bytes.
    assert_engines_equivalent(
        engine, fresh, make_weight_grid(N_QUERIES, dataset.n_attributes, seed=3)
    )

    return {
        "n": n,
        "n_changes": delta.n_changes,
        "staleness_fraction": delta.staleness_fraction(n),
        "base_preprocess_seconds": base_seconds,
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / incremental_seconds
        if incremental_seconds > 0
        else float("inf"),
        "strategy": report.strategy,
        "bit_identical": True,
        "maintenance": report.as_dict(),
    }


def run_grid(n_values=DEFAULT_N_VALUES) -> dict:
    results = [compare_maintenance(n) for n in n_values]
    return {
        "benchmark": "incremental_maintenance",
        "workload": f"make_compas_like(seed={DATASET_SEED}) projected to 2 attributes, "
        "FM1 (<= 60% African-American in top 30%); mixed delta of "
        "3 inserts + 2 deletes + 1 update",
        "incremental_path": "QueryEngine.apply_delta: re-sweep only exchange "
        "pairs touching changed items",
        "rebuild_path": "create_engine(...).preprocess() on the mutated dataset",
        "generated_unix_time": time.time(),
        "results": results,
    }


def test_incremental_maintenance_identical_and_not_slower(benchmark, once):
    """Reduced-size pytest entry: apply_delta is bit-identical to a rebuild.

    The oracle-driven sector sweep re-runs in full after any delta (verdicts
    are data-dependent), so the incremental win is confined to the geometry
    stages and is modest at small n — the timing assertion is a generous
    not-much-slower bound, while the bit-identity assertion is exact.
    """
    payload = once(benchmark, run_grid, n_values=(500,))
    print("\n[perf] apply_delta vs full rebuild (2-D engine)")
    for row in payload["results"]:
        print(
            f"  n={row['n']}: rebuild {row['rebuild_seconds']:.3f}s -> "
            f"incremental {row['incremental_seconds']:.3f}s ({row['speedup']:.1f}x)"
        )
    for row in payload["results"]:
        assert row["bit_identical"]
        assert row["strategy"] == "incremental"
        assert row["incremental_seconds"] <= 1.5 * row["rebuild_seconds"]


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_incremental.json",
        payload,
        parameters={
            "n_values": list(DEFAULT_N_VALUES),
            "dataset_seed": DATASET_SEED,
            "delta_seed": DELTA_SEED,
            "n_queries": N_QUERIES,
        },
        repeat_policy="single timed run per (path, n); bit-identity asserted "
        "on every run before timings are reported",
    )
    for row in payload["results"]:
        print(
            f"n={row['n']}: base {row['base_preprocess_seconds']:.3f}s, "
            f"incremental {row['incremental_seconds']:.3f}s, "
            f"rebuild {row['rebuild_seconds']:.3f}s, "
            f"speedup {row['speedup']:.1f}x, strategy={row['strategy']}, "
            f"bit_identical={row['bit_identical']}"
        )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
