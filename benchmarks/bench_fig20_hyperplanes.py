"""E10 / Figure 20 — number of exchange hyperplanes |H| and construction time vs n.

Paper result (d=3): |H| approaches the n² pair count as d grows (fewer
dominated pairs) and the construction time is linear in |H|.  The benchmark
reproduces both series.
"""

from __future__ import annotations

from repro.experiments import experiment_fig20_hyperplanes, format_sweep


def test_fig20_hyperplane_count_and_time(benchmark, once):
    sweep = once(
        benchmark, experiment_fig20_hyperplanes, n_values=(50, 100, 200, 300), d=3
    )
    print("\n[Figure 20] exchange hyperplanes and construction time vs n")
    print(format_sweep(sweep))
    counts = sweep.series["hyperplanes"].ys
    times = sweep.series["construction_seconds"].ys
    n_values = sweep.series["hyperplanes"].xs
    assert counts == sorted(counts)
    assert times[-1] >= times[0]
    # Shape: in 3D most pairs are non-dominated, so |H| is a large fraction of n(n-1)/2.
    pairs = n_values[-1] * (n_values[-1] - 1) / 2
    assert counts[-1] >= 0.5 * pairs
