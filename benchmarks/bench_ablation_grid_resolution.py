"""A3 — ablation of the grid resolution N (the §5 user-controllable approximation knob).

Theorem 6 bounds the extra angular distance of MDONLINE's answer by a quantity
that shrinks as the number of cells N grows; the price is preprocessing time
(more cells to mark).  The paper fixes N = 40,000 in its experiments; this
ablation sweeps N and reports the guaranteed bound, the observed suggestion
distances and the preprocessing cost, confirming the knob trades accuracy for
offline work exactly as designed.
"""

from __future__ import annotations

from repro.experiments import experiment_ablation_grid_resolution, format_sweep


def test_ablation_grid_resolution(benchmark, once):
    sweep = once(
        benchmark,
        experiment_ablation_grid_resolution,
        n_cells_values=(16, 64, 256),
        n_items=120,
        d=3,
        n_queries=20,
        max_hyperplanes=100,
    )
    print("\n[Ablation A3] grid resolution N: guarantee vs observed distance vs cost")
    print(format_sweep(sweep))
    bounds = sweep.series["theorem6_bound"].ys
    cells = sweep.series["theorem6_bound"].xs
    fractions = sweep.series["marked_cell_fraction"].ys
    # Shape: the Theorem 6 guarantee tightens monotonically as N grows.
    assert cells == sorted(cells)
    assert all(later <= earlier + 1e-12 for earlier, later in zip(bounds, bounds[1:]))
    # Every marked-cell fraction is a valid fraction.
    assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
