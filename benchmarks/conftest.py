"""Shared configuration for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper's §6 (see
the index in docs/benchmarks.md).  The workloads run at a reduced scale so
the whole suite completes in minutes on a laptop; the *shapes* the paper
reports (who wins, growth trends, relative factors) are what these benchmarks
reproduce, and each module prints the regenerated series to stdout so it can
be compared against the paper's figures.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing the run-once helper."""
    return run_once
