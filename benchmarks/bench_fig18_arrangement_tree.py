"""E8 / Figure 18 — arrangement construction: flat region scan vs arrangement tree.

Paper result: within a fixed time budget the arrangement tree lets the system
insert roughly 5x more hyperplanes than the flat baseline (1,200 vs 250 in
8,000 s); equivalently, at a fixed number of hyperplanes the tree is several
times faster.  The benchmark reproduces the cost series for both variants and
asserts the tree wins at the largest point.
"""

from __future__ import annotations

from repro.experiments import experiment_fig18_arrangement_tree, format_sweep


def test_fig18_arrangement_tree_advantage(benchmark, once):
    sweep = once(
        benchmark,
        experiment_fig18_arrangement_tree,
        n_items=60,
        d=3,
        hyperplane_counts=(10, 20, 40, 80),
    )
    print("\n[Figure 18] arrangement construction cost (baseline vs arrangement tree)")
    print(format_sweep(sweep))
    baseline = sweep.series["baseline_seconds"].ys
    tree = sweep.series["arrangement_tree_seconds"].ys
    # Shape: at the largest hyperplane count the tree is no slower than the
    # flat baseline (in the paper it is several times faster).
    assert tree[-1] <= baseline[-1] * 1.10
