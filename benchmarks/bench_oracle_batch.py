"""Batched vs per-query oracle pre-checks on the approximate engine.

After the geometry was vectorised, the remaining per-query hot loop in
``ApproxEngine.suggest_many`` was the oracle itself: line 1 of ``MDONLINE``
(Algorithm 11) ran one full ``argsort`` plus one Python-level
``is_satisfactory`` per query.  The batched-oracle protocol
(``repro.fairness.batched``) answers the whole batch with one stacked
matmul + argsort (``order_many``) and one ``is_satisfactory_many``.  This
benchmark times ``suggest_many`` against a Python loop over ``suggest`` on
the approximate engine across the (d, q) grid the PR targets, asserting the
batched results are *identical* to the loop (same ``SuggestionResult``
objects, bit for bit) and that the oracle-call counts match one call per
query on both routes.

Run standalone to regenerate the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_oracle_batch.py

which writes ``BENCH_oracle_batch.json`` at the repository root with the full
d ∈ {3, 4} × q ∈ {100, 1000} grid.  The identity invariant is also guarded by
the ``perf_smoke``-marked tier-1 tests in ``tests/test_batched_oracle.py``.
"""

from __future__ import annotations

import time

import numpy as np
from _results import write_bench_record

from repro.core.engine import ApproxConfig
from repro.core.system import FairRankingDesigner
from repro.data.synthetic import make_compas_like
from repro.experiments.harness import time_batched_queries
from repro.fairness.oracle import CountingOracle
from repro.fairness.proportional import ProportionalOracle

DEFAULT_D_VALUES = (3, 4)
DEFAULT_Q_VALUES = (100, 1000)
DEFAULT_N = 600
DEFAULT_N_CELLS = 64
DEFAULT_MAX_HYPERPLANES = 150

_ATTRIBUTES = ["c_days_from_compas", "juv_other_count", "start", "age"]


def _designer(n: int, d: int, n_cells: int, max_hyperplanes: int):
    dataset = make_compas_like(n=n, seed=6).project(_ATTRIBUTES[:d])
    oracle = CountingOracle(
        ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.3, slack=0.10
        )
    )
    designer = FairRankingDesigner(
        dataset, oracle, ApproxConfig(n_cells=n_cells, max_hyperplanes=max_hyperplanes)
    ).preprocess()
    return designer, oracle


def compare_oracle_batch(
    designer: FairRankingDesigner, oracle: CountingOracle, q: int, repeats: int = 3
) -> dict:
    """Time looped vs batched answering of ``q`` random queries on one designer."""
    d = designer.dataset.n_attributes
    rng = np.random.default_rng(q + d)
    queries = np.abs(rng.normal(size=(q, d)))
    queries[np.all(queries == 0.0, axis=1)] = 1.0  # probability-zero guard

    # Oracle-call accounting first: one call per query on both routes.
    oracle.reset()
    looped = [designer.suggest(row) for row in queries.tolist()]
    loop_calls = oracle.calls
    oracle.reset()
    batched = designer.suggest_many(queries)
    batched_calls = oracle.calls

    timing = time_batched_queries(designer, queries, repeats=repeats)
    return {
        "n": timing.n_items,
        "d": d,
        "q": timing.n_queries,
        "engine": timing.engine,
        "loop_seconds": timing.loop_seconds,
        "batched_seconds": timing.batched_seconds,
        "speedup": timing.speedup,
        "identical": timing.identical and batched == looped,
        "loop_oracle_calls": loop_calls,
        "batched_oracle_calls": batched_calls,
        "oracle_calls_identical": loop_calls == batched_calls == q,
    }


def run_grid(
    d_values=DEFAULT_D_VALUES,
    q_values=DEFAULT_Q_VALUES,
    n: int = DEFAULT_N,
    n_cells: int = DEFAULT_N_CELLS,
    max_hyperplanes: int = DEFAULT_MAX_HYPERPLANES,
    repeats: int = 3,
) -> dict:
    results = []
    for d in d_values:
        designer, oracle = _designer(n, d, n_cells, max_hyperplanes)
        for q in q_values:
            results.append(compare_oracle_batch(designer, oracle, q, repeats=repeats))
    return {
        "benchmark": "oracle_batch_speedup",
        "workload": f"make_compas_like(n={n}, seed=6) projected to d attributes, "
        "FM1 (<= share+10% African-American in top 30%); random first-orthant queries",
        "loop_path": "one ApproxEngine.suggest call per weight vector "
        "(per-query argsort + is_satisfactory)",
        "batched_path": "ApproxEngine.suggest_many (order_many stacked matmul + "
        "argsort, one is_satisfactory_many per batch)",
        "generated_unix_time": time.time(),
        "results": results,
    }


def test_batched_oracle_precheck_is_identical_and_faster(benchmark, once):
    """Reduced-grid pytest entry: batched path is identical and clearly faster."""
    payload = once(
        benchmark,
        run_grid,
        d_values=(3,),
        q_values=(100, 500),
        n=300,
        n_cells=36,
        max_hyperplanes=60,
        repeats=2,
    )
    print("\n[perf] batched vs looped oracle pre-check (approximate engine)")
    for row in payload["results"]:
        print(
            f"  d={row['d']} q={row['q']}: {row['loop_seconds'] * 1e3:.2f}ms -> "
            f"{row['batched_seconds'] * 1e3:.2f}ms ({row['speedup']:.1f}x)"
        )
    for row in payload["results"]:
        assert row["identical"]
        assert row["oracle_calls_identical"]
    # The committed BENCH_oracle_batch.json records the full-grid speedups
    # (>= 3x at q=1000); keep a modest floor here for noisy CI boxes.
    assert payload["results"][-1]["speedup"] >= 2.0


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_oracle_batch.json",
        payload,
        parameters={
            "d_values": list(DEFAULT_D_VALUES),
            "q_values": list(DEFAULT_Q_VALUES),
            "n": DEFAULT_N,
            "n_cells": DEFAULT_N_CELLS,
            "max_hyperplanes": DEFAULT_MAX_HYPERPLANES,
            "repeats": 3,
            "seed": 6,
        },
        repeat_policy="best of 3 repeats per (d, q), loop and batched interleaved",
    )
    for row in payload["results"]:
        print(
            f"d={row['d']} q={row['q']} n={row['n']}: loop {row['loop_seconds'] * 1e3:.2f}ms, "
            f"batched {row['batched_seconds'] * 1e3:.2f}ms, "
            f"speedup {row['speedup']:.1f}x, identical={row['identical']}, "
            f"oracle_calls_identical={row['oracle_calls_identical']}"
        )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
