"""Batched vs looped online answering: ``suggest_many`` against a suggest loop.

The unified engine API answers weight batches natively — the 2-D engine
classifies a whole batch with one ``searchsorted`` over the cached
interval-start array instead of one Python ``query`` per weight vector.  This
benchmark times both paths on the 2-D pipeline over the (n, q) grid the
engine-API PR targets, asserting the batched results are *identical* to the
loop (same ``SuggestionResult`` objects, bit for bit).

Run standalone to regenerate the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_batch_query.py

which writes ``BENCH_batch_query.json`` at the repository root with the full
n ∈ {200, 1000} × q ∈ {100, 1000} grid.  The identity invariant is also
guarded by the ``perf_smoke``-marked tier-1 tests in ``tests/test_engine.py``.
"""

from __future__ import annotations

import time

import numpy as np
from _results import write_bench_record

from repro.core.engine import TwoDConfig
from repro.core.system import FairRankingDesigner
from repro.data.synthetic import make_compas_like
from repro.experiments.harness import time_batched_queries
from repro.fairness.proportional import ProportionalOracle

DEFAULT_N_VALUES = (200, 1000)
DEFAULT_Q_VALUES = (100, 1000)


def _designer(n: int) -> FairRankingDesigner:
    dataset = make_compas_like(n=n, seed=5).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    return FairRankingDesigner(dataset, oracle, TwoDConfig()).preprocess()


def compare_batch_query(designer: FairRankingDesigner, q: int, repeats: int = 5) -> dict:
    """Time looped vs batched answering of ``q`` random queries on one designer."""
    rng = np.random.default_rng(q)
    queries = np.abs(rng.normal(size=(q, 2)))
    queries[np.all(queries == 0.0, axis=1)] = 1.0  # probability-zero guard
    timing = time_batched_queries(designer, queries, repeats=repeats)
    return {
        "n": timing.n_items,
        "q": timing.n_queries,
        "engine": timing.engine,
        "loop_seconds": timing.loop_seconds,
        "batched_seconds": timing.batched_seconds,
        "speedup": timing.speedup,
        "identical": timing.identical,
    }


def run_grid(n_values=DEFAULT_N_VALUES, q_values=DEFAULT_Q_VALUES, repeats: int = 5) -> dict:
    results = []
    for n in n_values:
        designer = _designer(n)
        for q in q_values:
            results.append(compare_batch_query(designer, q, repeats=repeats))
    return {
        "benchmark": "batch_query_speedup",
        "workload": "make_compas_like(seed=5) projected to 2 attributes, "
        "FM1 (<= share+10% African-American in top 30%); random first-orthant queries",
        "loop_path": "one FairRankingDesigner.suggest call per weight vector",
        "batched_path": "FairRankingDesigner.suggest_many (one searchsorted per batch)",
        "generated_unix_time": time.time(),
        "results": results,
    }


def test_batched_suggest_is_identical_and_faster(benchmark, once):
    """Reduced-grid pytest entry: batched path is identical and clearly faster."""
    payload = once(benchmark, run_grid, n_values=(200,), q_values=(100, 1000), repeats=3)
    print("\n[perf] batched vs looped suggest (2-D engine)")
    for row in payload["results"]:
        print(
            f"  n={row['n']} q={row['q']}: {row['loop_seconds'] * 1e3:.2f}ms -> "
            f"{row['batched_seconds'] * 1e3:.2f}ms ({row['speedup']:.1f}x)"
        )
    for row in payload["results"]:
        assert row["identical"]
    # The committed BENCH_batch_query.json records the full-grid speedups
    # (>= 5x at q=1000); keep a modest floor here for noisy CI boxes.
    assert payload["results"][-1]["speedup"] >= 3.0


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_batch_query.json",
        payload,
        parameters={
            "n_values": list(DEFAULT_N_VALUES),
            "q_values": list(DEFAULT_Q_VALUES),
            "repeats": 5,
            "seed": 5,
        },
        repeat_policy="best of 5 repeats per (n, q), loop and batched interleaved",
    )
    for row in payload["results"]:
        print(
            f"n={row['n']} q={row['q']}: loop {row['loop_seconds'] * 1e3:.2f}ms, "
            f"batched {row['batched_seconds'] * 1e3:.2f}ms, "
            f"speedup {row['speedup']:.1f}x, identical={row['identical']}"
        )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
