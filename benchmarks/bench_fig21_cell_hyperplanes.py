"""E11 / Figure 21 — number of hyperplanes passing through each cell (n=100, d=4).

Paper result: the distribution is heavily skewed — more than 5,000 of 6,000
cells are crossed by fewer than 100 hyperplanes, so building the per-cell
arrangements is cheap for the vast majority of cells.  The benchmark
reproduces the sorted per-cell counts and checks the skew.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import experiment_fig21_cell_hyperplanes, format_table


def test_fig21_hyperplanes_per_cell(benchmark, once):
    counts = once(
        benchmark,
        experiment_fig21_cell_hyperplanes,
        n_items=100,
        d=4,
        n_cells=1296,
        max_hyperplanes=400,
    )
    quantiles = {q: float(np.quantile(counts, q)) for q in (0.25, 0.5, 0.9, 1.0)}
    rows = [[f"quantile {q}", round(value, 1)] for q, value in quantiles.items()]
    rows.append(["mean", round(float(counts.mean()), 1)])
    rows.append(["cells", int(counts.size)])
    print("\n[Figure 21] hyperplanes passing through each cell (sorted distribution)")
    print(format_table(["quantity", "value"], rows))
    # Shape: heavy skew — the median cell is crossed by far fewer hyperplanes
    # than the busiest cell.
    assert quantiles[0.5] <= 0.6 * quantiles[1.0]
