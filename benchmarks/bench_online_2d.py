"""E5 / §6.3 (2D) — online query answering latency vs. simply sorting the data.

Paper result: 2DONLINE answers in ≈30 µs while merely ordering the dataset by
the query takes ≈25 ms — the online phase is orders of magnitude faster than
touching the raw data.  The benchmark times both on the full 6,889-item
COMPAS-like dataset and asserts the speed-up factor.
"""

from __future__ import annotations

from repro.experiments import experiment_online_2d, format_table


def test_online_2d_query_latency(benchmark, once):
    timing = once(benchmark, experiment_online_2d, n_items=1000, n_queries=30)
    rows = [
        ["2DONLINE per query (µs)", round(timing.mean_query_seconds * 1e6, 1)],
        ["sorting per query (ms)", round(timing.mean_ordering_seconds * 1e3, 3)],
        ["speed-up factor", round(timing.speedup, 1)],
    ]
    print("\n[Section 6.3, 2D] online answering vs sorting")
    print(format_table(["quantity", "value"], rows))
    # Paper shape: answering from the index beats ordering the data and stays
    # sub-millisecond.  (The paper reports a ~800x gap because its sort is a
    # Python-2.7 loop; with a numpy sort the gap shrinks but never inverts.)
    assert timing.speedup > 2.0
    assert timing.mean_query_seconds < 1e-3
