"""E6 / §6.3 (MD) — MDONLINE latency for d = 3..6 vs. sorting the data.

Paper result: MDONLINE answers in < 200 µs for every dimensionality, far below
the ≈25 ms needed just to order the items, and the latency is independent of
the dataset size.  The benchmark times the index-lookup path (the per-query
cost the paper reports) for d = 3..6, and separately demonstrates the
n-independence claim by repeating the d = 3 measurement on a 10x larger
dataset: the lookup cost stays flat while the cost of ordering grows.
"""

from __future__ import annotations

from repro.experiments import experiment_online_md, format_table


def test_online_md_query_latency(benchmark, once):
    results = once(
        benchmark,
        experiment_online_md,
        d_values=(3, 4, 5, 6),
        n_items=150,
        n_queries=30,
        n_cells=100,
        max_hyperplanes=40,
    )
    rows = [
        [
            timing.label,
            round(timing.mean_query_seconds * 1e6, 1),
            round(timing.mean_ordering_seconds * 1e3, 3),
            round(timing.speedup, 1),
        ]
        for timing in results
    ]
    print("\n[Section 6.3, MD] online answering (index lookup) vs sorting")
    print(format_table(["configuration", "lookup (µs)", "sort (ms)", "speed-up"], rows))
    assert len(results) == 4
    # Paper shape: sub-millisecond answering for every dimensionality
    # (the paper reports < 200 µs; we allow 2 ms of slack for slow machines).
    for timing in results:
        assert timing.mean_query_seconds < 2e-3


def test_online_md_latency_independent_of_n(benchmark, once):
    def run_two_sizes():
        small = experiment_online_md(
            d_values=(3,), n_items=150, n_queries=30, n_cells=100, max_hyperplanes=40
        )[0]
        large = experiment_online_md(
            d_values=(3,), n_items=1500, n_queries=30, n_cells=100, max_hyperplanes=40
        )[0]
        return small, large

    small, large = once(benchmark, run_two_sizes)
    rows = [
        ["n=150: lookup (µs)", round(small.mean_query_seconds * 1e6, 1)],
        ["n=150: sort (ms)", round(small.mean_ordering_seconds * 1e3, 3)],
        ["n=1500: lookup (µs)", round(large.mean_query_seconds * 1e6, 1)],
        ["n=1500: sort (ms)", round(large.mean_ordering_seconds * 1e3, 3)],
    ]
    print("\n[Section 6.3, MD] lookup latency is independent of n")
    print(format_table(["quantity", "value"], rows))
    # Paper shape: ordering cost grows with n while the lookup cost does not
    # (generous factors absorb timer noise on loaded machines).
    assert large.mean_ordering_seconds > 1.5 * small.mean_ordering_seconds
    assert large.mean_query_seconds < 5.0 * small.mean_query_seconds
    assert large.mean_query_seconds < 2e-3
