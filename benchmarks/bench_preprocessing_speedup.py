"""Old-vs-new 2-D preprocessing benchmark: vectorized + incremental sweep.

Times the seed implementation (scalar per-pair exchange construction +
black-box per-sector oracle evaluation) against the rebuilt hot path
(broadcast exchange kernel + incremental-oracle protocol) on COMPAS-like
synthetic data, asserting the outputs are *identical* — same satisfactory
intervals, same exchange counts, same oracle-call accounting — while the
wall-clock drops.

Run standalone to regenerate the machine-readable trajectory consumed by
future perf PRs::

    PYTHONPATH=src python benchmarks/bench_preprocessing_speedup.py

which writes ``BENCH_preprocessing.json`` at the repository root with the
full n ∈ {200, 500, 1000} grid.  The pytest entry point runs a reduced grid
so the benchmark suite stays quick; the equivalence itself is also guarded by
the ``perf_smoke``-marked tier-1 tests in ``tests/test_incremental_oracle.py``.
"""

from __future__ import annotations

import time

from _results import write_bench_record

from repro.core.two_dim import TwoDRaySweep
from repro.data.synthetic import make_compas_like
from repro.fairness.oracle import CountingOracle
from repro.fairness.proportional import ProportionalOracle
from repro.geometry.dual import build_exchange_angles_2d_reference

DEFAULT_N_VALUES = (200, 500, 1000)


def _workload(n: int):
    dataset = make_compas_like(n=n, seed=5).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    return dataset, oracle


def compare_preprocessing(n: int) -> dict:
    """Time seed-path vs vectorized+incremental 2DRAYSWEEP at one dataset size."""
    dataset, oracle = _workload(n)
    reference_oracle = CountingOracle(oracle)
    fast_oracle = CountingOracle(oracle)

    start = time.perf_counter()
    reference = TwoDRaySweep(
        dataset,
        reference_oracle,
        use_incremental=False,
        exchange_builder=build_exchange_angles_2d_reference,
    ).run()
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = TwoDRaySweep(dataset, fast_oracle).run()
    fast_seconds = time.perf_counter() - start

    intervals_equal = [(iv.start, iv.end) for iv in reference.intervals] == [
        (iv.start, iv.end) for iv in fast.intervals
    ]
    return {
        "n": n,
        "reference_seconds": reference_seconds,
        "vectorized_seconds": fast_seconds,
        "speedup": reference_seconds / fast_seconds if fast_seconds > 0 else float("inf"),
        "ordering_exchanges": fast.n_exchanges,
        "oracle_calls_reference": reference_oracle.calls,
        "oracle_calls_vectorized": fast_oracle.calls,
        "oracle_calls_equal": reference_oracle.calls == fast_oracle.calls,
        "intervals": len(fast.intervals),
        "intervals_equal": intervals_equal,
    }


def run_grid(n_values=DEFAULT_N_VALUES) -> dict:
    results = [compare_preprocessing(n) for n in n_values]
    return {
        "benchmark": "2d_preprocessing_speedup",
        "workload": "make_compas_like(seed=5) projected to 2 attributes, "
        "FM1 (<= share+10% African-American in top 30%)",
        "reference_path": "scalar per-pair exchange construction + black-box per-sector oracle",
        "vectorized_path": "broadcast exchange kernel + incremental-oracle protocol",
        "generated_unix_time": time.time(),
        "results": results,
    }


def test_preprocessing_speedup_and_equivalence(benchmark, once):
    """Reduced-grid pytest entry: new path is equivalent and clearly faster."""
    payload = once(benchmark, run_grid, n_values=(100, 200))
    print("\n[perf] 2D preprocessing old-vs-new")
    for row in payload["results"]:
        print(
            f"  n={row['n']}: {row['reference_seconds']:.3f}s -> "
            f"{row['vectorized_seconds']:.3f}s ({row['speedup']:.1f}x)"
        )
    for row in payload["results"]:
        assert row["intervals_equal"]
        assert row["oracle_calls_equal"]
    # Modest bound at the reduced scale; the committed BENCH_preprocessing.json
    # records the full-grid speedups (>= 10x at n=1000).
    assert payload["results"][-1]["speedup"] >= 3.0


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_preprocessing.json",
        payload,
        parameters={"n_values": list(DEFAULT_N_VALUES), "dimension": 2, "seed": 5},
        repeat_policy="single timed run per path per n, reference and "
        "vectorized interleaved",
    )
    for row in payload["results"]:
        print(
            f"n={row['n']}: reference {row['reference_seconds']:.3f}s, "
            f"vectorized {row['vectorized_seconds']:.3f}s, "
            f"speedup {row['speedup']:.1f}x, intervals_equal={row['intervals_equal']}, "
            f"oracle_calls_equal={row['oracle_calls_equal']}"
        )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
