"""A4 — ablation of the angle-space partition backend (Appendix A.2 vs uniform grid).

The paper partitions the angle space with an adaptive, (approximately)
equal-area construction (Algorithm 12) so that every cell has the same bounded
angular diameter; a plain uniform grid is the simpler alternative.  This
ablation runs the full §5 pipeline with both backends at the same cell budget
and compares realised cell count, diameter bound, marked-cell fraction,
preprocessing time and the observed suggestion distances.
"""

from __future__ import annotations

from repro.experiments import experiment_ablation_partition, format_sweep


def test_ablation_partition_backend(benchmark, once):
    sweep = once(
        benchmark,
        experiment_ablation_partition,
        n_items=120,
        d=3,
        n_cells=256,
        n_queries=15,
        max_hyperplanes=100,
    )
    print("\n[Ablation A4] partition backend (0 = uniform grid, 1 = equal-area angle partition)")
    print(format_sweep(sweep))
    realised = sweep.series["realised_cells"].ys
    diameters = sweep.series["cell_diameter_bound"].ys
    distances = sweep.series["mean_suggestion_distance"].ys
    assert len(realised) == 2
    # Both backends produce non-trivial partitions and valid (non-negative)
    # suggestion distances on the same query workload.
    assert all(count >= 16 for count in realised)
    assert all(diameter > 0 for diameter in diameters)
    assert all(distance >= 0 for distance in distances)
