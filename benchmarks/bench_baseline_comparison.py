"""A5 — design-time weight repair vs. the §7 output re-ranking baselines.

The paper argues for repairing the *scoring function* rather than the
*output*: the result stays a transparent linear ranking scheme.  This
benchmark runs the designer, a FA*IR-style greedy re-ranker and a
constrained top-k selection on the same constraint and dataset, and compares
constraint satisfaction, retained top-k utility and linearity.
"""

from __future__ import annotations

import math

from repro.experiments import experiment_baseline_comparison, format_table


def test_baseline_comparison(benchmark, once):
    rows = once(
        benchmark,
        experiment_baseline_comparison,
        n_items=300,
        d=3,
        k=0.25,
        slack=0.10,
        n_cells=256,
        max_hyperplanes=150,
    )
    table = [
        [
            row.method,
            row.satisfies_constraint,
            round(row.protected_share, 3),
            round(row.utility, 3),
            row.is_linear,
            "-" if math.isnan(row.angular_distance_to_query) else round(row.angular_distance_to_query, 3),
        ]
        for row in rows
    ]
    print("\n[Ablation A5] designer vs output re-ranking baselines")
    print(
        format_table(
            ["method", "fair", "protected share", "utility", "linear", "distance"], table
        )
    )
    by_method = {row.method: row for row in rows}
    # Every intervention satisfies the constraint.
    assert all(row.satisfies_constraint for row in rows[1:])
    # Only the weight-design answer remains a linear scoring function.
    assert by_method["designer"].is_linear
    assert not by_method["greedy_rerank"].is_linear
    assert not by_method["constrained_topk"].is_linear
    # Utilities are normalised by the unconstrained optimum.
    assert all(0.0 < row.utility <= 1.0 + 1e-9 for row in rows)
