"""E2–E4 / §6.2 — layout of satisfactory regions for three 2-D configurations.

Paper results: (E2) scoring on age + juvenile counts with FM1 on the age group
leaves a single narrow satisfactory region; (E3) the same scoring attributes
with FM1 on race leave several regions and every query has a repair within
θ < 0.11; (E4) the stricter FM2 widens the gaps but repairs stay within
θ < 0.28.  The benchmark prints the same three rows (region count, satisfiable
angle mass, max repair distance).
"""

from __future__ import annotations

from repro.experiments import experiment_sec62_layouts, format_table


def test_sec62_satisfactory_region_layouts(benchmark, once):
    layouts = once(benchmark, experiment_sec62_layouts, n_items=300, n_queries=40)
    rows = [
        [
            layout.name,
            layout.n_regions,
            round(layout.total_satisfactory_angle, 3),
            round(layout.max_repair_distance, 3),
        ]
        for layout in layouts
    ]
    print("\n[Section 6.2] satisfactory-region layouts")
    print(
        format_table(
            ["configuration", "regions", "satisfiable angle (rad)", "max repair (rad)"], rows
        )
    )
    assert len(layouts) == 3
    correlated, race, fm2 = layouts
    # Shape: the correlated constraint (E2) admits no more satisfiable angle
    # mass than the race constraint (E3), and the FM2 constraint is the
    # strictest of the three.
    assert correlated.total_satisfactory_angle <= race.total_satisfactory_angle + 1e-9
    assert fm2.total_satisfactory_angle <= race.total_satisfactory_angle + 1e-9
