"""E12 / Figure 22 — per-step preprocessing times of the §5 pipeline vs n (d=3).

Paper result: cell-plane assignment grows with n (|H| is O(n²)), the mark-cell
step (per-cell arrangements with early stopping) takes the majority of the
total time at every n, and cell colouring is negligible.  The benchmark
reproduces the four per-step series plus the total.
"""

from __future__ import annotations

from repro.experiments import experiment_fig22_preprocessing_vs_n, format_sweep


def test_fig22_preprocessing_steps_vs_n(benchmark, once):
    sweep = once(
        benchmark,
        experiment_fig22_preprocessing_vs_n,
        n_values=(30, 60, 120),
        d=3,
        n_cells=144,
        max_hyperplanes=60,
    )
    print("\n[Figure 22] preprocessing step times vs n (d=3)")
    print(format_sweep(sweep))
    totals = sweep.series["total_seconds"].ys
    marks = sweep.series["mark_cell_seconds"].ys
    colorings = sweep.series["coloring_seconds"].ys
    # Shape claims that are stable at this reduced scale: the mark-cell step
    # dominates the total at every n and colouring is negligible.  (The
    # paper's "total grows with n" observation is driven by |H| growing with
    # n; with the hyperplane cap used here that growth is exercised by the
    # Figure 17 and Figure 20 benchmarks instead, while wall-clock at tiny n
    # is dominated by how quickly early stopping finds satisfactory cells.)
    assert all(mark >= 0.4 * total for mark, total in zip(marks, totals))
    assert all(coloring <= 0.2 * total for coloring, total in zip(colorings, totals))
    assert all(total > 0 for total in totals)
