"""E13 / Figure 23 — per-step preprocessing times of the §5 pipeline vs d (n=100).

Paper result: every step gets more expensive as the number of scoring
attributes grows (more non-dominated pairs, higher-dimensional per-cell
arrangements), with the mark-cell step taking the majority of the total time
throughout.  The benchmark reproduces the per-step series for d = 3..5.
"""

from __future__ import annotations

from repro.experiments import experiment_fig23_preprocessing_vs_d, format_sweep


def test_fig23_preprocessing_steps_vs_d(benchmark, once):
    sweep = once(
        benchmark,
        experiment_fig23_preprocessing_vs_d,
        d_values=(3, 4, 5),
        n_items=40,
        n_cells=100,
        max_hyperplanes=40,
    )
    print("\n[Figure 23] preprocessing step times vs d (n=60)")
    print(format_sweep(sweep))
    totals = sweep.series["total_seconds"].ys
    marks = sweep.series["mark_cell_seconds"].ys
    # Shape: mark-cell dominates the total at every d.
    assert all(mark >= 0.4 * total for mark, total in zip(marks, totals))
