"""Serving overhead of the observability layer: watching must be nearly free.

The ``"instrumented"`` engine (`repro.obs.instrument.InstrumentedEngine`)
wraps any inner engine with spans, metrics and an optional workload
recorder.  Its fast path adds, per ``suggest_many`` batch, two clock reads,
one span append, a handful of counter bumps and — when recording — one O(1)
matrix copy; none of that may show up at interactive batch sizes.  This
benchmark times the bare 2-D engine against the instrumented engine with
recording off and with recording on, asserts the answers stay bit-identical
on every path, and replays the recorded workload through a *fresh*
instrumented engine to prove the log reproduces the served answers bit for
bit.  The target is **< 5%** overhead on the committed record's largest
batch (recording off is expected to sit at the noise floor).

Run standalone to regenerate the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

which writes ``BENCH_obs.json`` at the repository root.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engine import TwoDConfig, create_engine
from repro.data.synthetic import make_compas_like
from repro.fairness.proportional import ProportionalOracle
from repro.obs.instrument import InstrumentedConfig, InstrumentedEngine

from _results import write_bench_record

DEFAULT_N_VALUES = (200, 1000)
DEFAULT_Q_VALUES = (100, 1000)
SEED = 5

#: Span stages the instrumented run must cover (prefix match).
REQUIRED_STAGES = ("engine.preprocess", "engine.suggest_many", "oracle.", "preprocess.")


def _serving_trio(n: int):
    """A bare 2-D engine plus instrumented twins (recording off and on)."""
    dataset = make_compas_like(n=n, seed=SEED).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    bare = create_engine(dataset, oracle, TwoDConfig()).preprocess()
    observed = create_engine(
        dataset, oracle, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    recording = create_engine(
        dataset, oracle, InstrumentedConfig(inner=TwoDConfig(), record_workload=True)
    ).preprocess()
    return dataset, oracle, bare, observed, recording


def _queries(q: int) -> np.ndarray:
    rng = np.random.default_rng(q)
    queries = np.abs(rng.normal(size=(q, 2)))
    queries[np.all(queries == 0.0, axis=1)] = 1.0  # probability-zero guard
    return queries


def _interleaved3(calls, repeats: int):
    """Best-of-``repeats`` for three calls, measured in alternation.

    Each timed call is preceded by an untimed warm pass of the *same* call,
    so deferred work left behind by the previous engine in the rotation
    (allocator churn, cache refill, GC debt from the recorder's copies) is
    absorbed before the clock starts — without it, whichever path runs after
    the recording engine gets billed for its cleanup.
    """
    import gc

    best = [float("inf")] * len(calls)
    results = [None] * len(calls)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for index, call in enumerate(calls):
                call()  # warm pass: equalise cache/allocator state
                start = time.perf_counter()
                results[index] = call()
                best[index] = min(best[index], time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, results


def _span_coverage(engine: InstrumentedEngine) -> dict:
    names = set(engine.recorder.span_names())
    return {
        stage: any(name == stage or name.startswith(stage) for name in names)
        for stage in REQUIRED_STAGES
    }


def compare_suggest_many(n: int, q: int, repeats: int = 7) -> dict:
    """Time ``suggest_many`` bare vs instrumented (recording off / on)."""
    dataset, oracle, bare, observed, recording = _serving_trio(n)
    queries = _queries(q)
    (bare_s, observed_s, recording_s), (bare_r, observed_r, recording_r) = _interleaved3(
        (
            lambda: bare.suggest_many(queries),
            lambda: observed.suggest_many(queries),
            lambda: recording.suggest_many(queries),
        ),
        repeats,
    )
    # Replay the recorded workload through a fresh instrumented engine: the
    # log must reproduce the served answers bit for bit.
    fresh = create_engine(
        dataset, oracle, InstrumentedConfig(inner=TwoDConfig())
    ).preprocess()
    replay = recording.workload.replay(fresh)
    return {
        "n": n,
        "q": q,
        "bare_seconds": bare_s,
        "instrumented_seconds": observed_s,
        "recording_seconds": recording_s,
        "instrumented_overhead_fraction": observed_s / bare_s - 1.0,
        "recording_overhead_fraction": recording_s / bare_s - 1.0,
        "identical": observed_r == bare_r and recording_r == bare_r,
        "replay_bit_identical": replay.bit_identical,
        "span_coverage": _span_coverage(recording),
    }


def run_grid(n_values=DEFAULT_N_VALUES, q_values=DEFAULT_Q_VALUES, repeats: int = 15) -> dict:
    rows = [compare_suggest_many(n, q, repeats=repeats) for n in n_values for q in q_values]
    return {
        "benchmark": "obs_instrumentation_overhead",
        "workload": "make_compas_like(seed=5) projected to 2 attributes, "
        "FM1 (<= share+10% African-American in top 30%); random first-orthant queries",
        "bare_path": "TwoDEngine.suggest_many",
        "wrapped_path": "InstrumentedEngine(suggest_many), recording off and on",
        "target": "instrumented overhead below 5% at the largest batch size; "
        "recorded workloads replay bit-identically",
        "suggest_many": rows,
    }


def test_instrumentation_overhead_is_small(benchmark, once):
    """Reduced-grid pytest entry: observing is bit-identical and nearly free."""
    payload = once(benchmark, run_grid, n_values=(1000,), q_values=(1000,), repeats=5)
    print("\n[perf] observability instrumentation overhead")
    for row in payload["suggest_many"]:
        print(
            f"  suggest_many n={row['n']} q={row['q']}: "
            f"{row['bare_seconds'] * 1e3:.2f}ms -> "
            f"{row['instrumented_seconds'] * 1e3:.2f}ms observed "
            f"({row['instrumented_overhead_fraction'] * 100:+.1f}%), "
            f"{row['recording_seconds'] * 1e3:.2f}ms recording "
            f"({row['recording_overhead_fraction'] * 100:+.1f}%)"
        )
    for row in payload["suggest_many"]:
        assert row["identical"]
        assert row["replay_bit_identical"]
        assert all(row["span_coverage"].values()), row["span_coverage"]
    # The committed BENCH_obs.json records < 5% on the full grid; the
    # in-suite bound is looser to tolerate noisy CI boxes.
    assert payload["suggest_many"][-1]["recording_overhead_fraction"] < 0.25


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_obs.json",
        payload,
        parameters={
            "n_values": list(DEFAULT_N_VALUES),
            "q_values": list(DEFAULT_Q_VALUES),
            "repeats": 15,
            "seed": SEED,
        },
        repeat_policy="best of 15, bare/instrumented/recording interleaved per repeat",
    )
    for row in payload["suggest_many"]:
        print(
            f"suggest_many n={row['n']} q={row['q']}: bare {row['bare_seconds'] * 1e3:.2f}ms, "
            f"observed {row['instrumented_seconds'] * 1e3:.2f}ms "
            f"({row['instrumented_overhead_fraction'] * 100:+.2f}%), "
            f"recording {row['recording_seconds'] * 1e3:.2f}ms "
            f"({row['recording_overhead_fraction'] * 100:+.2f}%), "
            f"identical={row['identical']}, replay={row['replay_bit_identical']}"
        )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
