"""E9 / Figure 19 — arrangement complexity (number of regions) while adding hyperplanes.

Paper result (d=3): fewer than 200 regions after the first 50 hyperplanes but
more than 5,000 after 250 — the growth is super-linear, which is why adding
later hyperplanes is so much more expensive and why the per-cell construction
of §5 pays off.  The benchmark reproduces the region-count series.
"""

from __future__ import annotations

from repro.experiments import experiment_fig19_region_growth, format_sweep


def test_fig19_region_growth(benchmark, once):
    sweep = once(
        benchmark,
        experiment_fig19_region_growth,
        n_items=60,
        d=3,
        checkpoints=(10, 20, 40, 80),
    )
    print("\n[Figure 19] number of arrangement regions vs hyperplanes inserted")
    print(format_sweep(sweep))
    regions = sweep.series["regions"].ys
    hyperplanes = sweep.series["regions"].xs
    assert regions == sorted(regions)
    # Shape: super-linear growth — the per-hyperplane region increment rises.
    first_rate = (regions[1] - regions[0]) / (hyperplanes[1] - hyperplanes[0])
    last_rate = (regions[-1] - regions[-2]) / (hyperplanes[-1] - hyperplanes[-2])
    assert last_rate >= first_rate
