"""E14 / §6.4 — sampling for large-scale settings on the DOT-like dataset.

Paper result: preprocessing a 1,000-record uniform sample of the 1.3 M-record
DOT data took 1,276 s, and *every* cell's assigned function remained
satisfactory when re-checked against the full dataset.  The benchmark runs the
same pipeline on a reduced (but still much-larger-than-sample) dataset and
reports the validation outcome.
"""

from __future__ import annotations

from repro.experiments import experiment_sampling_dot, format_table


def test_sampling_preprocess_and_validate(benchmark, once):
    result = once(
        benchmark,
        experiment_sampling_dot,
        full_size=100_000,
        sample_size=200,
        n_cells=144,
        max_hyperplanes=80,
    )
    rows = [
        ["full dataset size", result.full_size],
        ["sample size", result.sample_size],
        ["preprocessing seconds", round(result.preprocess_seconds, 1)],
        ["assigned functions checked", result.n_functions_checked],
        ["satisfactory on full data", result.n_satisfactory_on_full],
        ["all satisfactory", result.all_satisfactory],
    ]
    print("\n[Section 6.4] sampling for large-scale settings (DOT-like)")
    print(format_table(["quantity", "value"], rows))
    assert result.n_functions_checked > 0
    # Paper shape: the sample-derived functions overwhelmingly hold on the full data.
    assert result.n_satisfactory_on_full >= 0.9 * result.n_functions_checked
