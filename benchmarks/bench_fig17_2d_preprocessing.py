"""E7 / Figure 17 — 2-D preprocessing: ordering exchanges and ray-sweep time vs n.

Paper result: the number of ordering exchanges grows clearly sub-quadratically
(dominated pairs contribute none — 450 k observed vs the 16 M worst case at
n = 4,000) and the sweep time grows faster than the exchange count because the
oracle itself is O(n).  The benchmark reproduces both series for a sweep of n.
"""

from __future__ import annotations

from repro.experiments import experiment_fig17_2d_preprocessing, format_sweep


def test_fig17_exchanges_and_time_vs_n(benchmark, once):
    sweep = once(
        benchmark, experiment_fig17_2d_preprocessing, n_values=(100, 200, 300, 400)
    )
    print("\n[Figure 17] 2D preprocessing vs n")
    print(format_sweep(sweep))
    exchanges = sweep.series["ordering_exchanges"].ys
    times = sweep.series["preprocess_seconds"].ys
    n_values = sweep.series["ordering_exchanges"].xs
    # Shape: both series grow monotonically with n.
    assert exchanges == sorted(exchanges)
    assert times[-1] >= times[0]
    # Shape: exchanges stay well below the n^2 worst case (dominated pairs skipped).
    assert exchanges[-1] < n_values[-1] ** 2
