"""Scalar-vs-batched d >= 3 exchange-hyperplane construction benchmark.

Times the scalar HYPERPOLAR route (one nullspace + one linear solve per pair)
against the batched :func:`~repro.geometry.dual.hyperpolar_many` kernel (one
stacked SVD over the ``(m, 1, d)`` normal stack and one batched
``np.linalg.solve`` over the ``(m, d-1, d-1)`` angle matrices) on uniform
synthetic data, asserting the two construct *identical* hyperplanes —
bit-for-bit equal coefficients and the same pair labels — while the
wall-clock drops.

Run standalone to regenerate the machine-readable trajectory consumed by
future perf PRs::

    PYTHONPATH=src python benchmarks/bench_hyperpolar_batch.py

which writes ``BENCH_hyperpolar_batch.json`` at the repository root with the
full n = 300, d in {3, 4, 5} grid.  The pytest entry point runs a reduced
grid so the benchmark suite stays quick; the bit-identity itself is also
guarded by the ``perf_smoke``-marked tier-1 tests in ``tests/test_dual.py``.
"""

from __future__ import annotations

import time

from _results import write_bench_record

from repro.data.synthetic import make_uniform_dataset
from repro.geometry.dual import hyperplanes_for_dataset

DEFAULT_GRID = ((300, 3), (300, 4), (300, 5))


def compare_construction(n: int, d: int, seed: int = 11) -> dict:
    """Time scalar vs batched hyperplane construction at one (n, d) point."""
    dataset = make_uniform_dataset(n=n, d=d, seed=seed)

    start = time.perf_counter()
    scalar = hyperplanes_for_dataset(dataset, method="scalar")
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = hyperplanes_for_dataset(dataset, method="batched")
    batched_seconds = time.perf_counter() - start

    return {
        "n": n,
        "d": d,
        "hyperplanes": len(batched),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds if batched_seconds > 0 else float("inf"),
        "hyperplanes_identical": scalar == batched,
    }


def run_grid(grid=DEFAULT_GRID) -> dict:
    results = [compare_construction(n, d) for n, d in grid]
    return {
        "benchmark": "hyperpolar_batch_speedup",
        "workload": "make_uniform_dataset(seed=11), all non-dominated pairs",
        "scalar_path": "per-pair nullspace SVD + per-pair np.linalg.solve (reference)",
        "batched_path": "hyperpolar_many: one stacked SVD + one batched solve over all pairs",
        "generated_unix_time": time.time(),
        "results": results,
    }


def test_hyperpolar_batch_speedup_and_identity(benchmark, once):
    """Reduced-grid pytest entry: batched path is bit-identical and clearly faster."""
    payload = once(benchmark, run_grid, grid=((120, 3), (120, 4)))
    print("\n[perf] d>=3 hyperplane construction scalar-vs-batched")
    for row in payload["results"]:
        print(
            f"  n={row['n']} d={row['d']}: {row['scalar_seconds']:.3f}s -> "
            f"{row['batched_seconds']:.3f}s ({row['speedup']:.1f}x)"
        )
    for row in payload["results"]:
        assert row["hyperplanes_identical"]
    # Modest bound at the reduced scale; the committed BENCH_hyperpolar_batch.json
    # records the full-grid speedups (>= 5x required at n=300, d=4).
    assert payload["results"][-1]["speedup"] >= 3.0


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_hyperpolar_batch.json",
        payload,
        parameters={"grid": [list(point) for point in DEFAULT_GRID], "seed": 11},
        repeat_policy="single timed run per path per (n, d), scalar and "
        "batched interleaved",
    )
    for row in payload["results"]:
        print(
            f"n={row['n']} d={row['d']}: scalar {row['scalar_seconds']:.3f}s, "
            f"batched {row['batched_seconds']:.3f}s, speedup {row['speedup']:.1f}x, "
            f"identical={row['hyperplanes_identical']}"
        )
    assert all(row["hyperplanes_identical"] for row in payload["results"])
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
