"""E1 / Figure 16 — validation: angle distance between input and output functions.

Paper setting: COMPAS, d=3, FM1 on race (≤60 % African-American in the top
30 %), 100 random queries.  Paper result: 52 queries already satisfactory; all
48 repaired queries within θ < 0.6 of the input, 38 of them within θ < 0.4.
This benchmark regenerates the cumulative-count rows at reduced dataset size.
"""

from __future__ import annotations

from repro.experiments import experiment_fig16_validation, format_table


def test_fig16_validation_cumulative_distances(benchmark, once):
    result = once(
        benchmark,
        experiment_fig16_validation,
        n_items=100,
        d=3,
        n_queries=100,
        n_cells=144,
        max_hyperplanes=80,
    )
    thresholds = (0.2, 0.4, 0.6)
    counts = result.cumulative_counts(thresholds)
    rows = [[f"theta < {threshold}", counts[threshold]] for threshold in thresholds]
    rows.append(["already satisfactory", result.n_already_satisfactory])
    rows.append(["repaired queries", len(result.distances)])
    rows.append(["max repair distance", round(result.max_distance, 4)])
    print("\n[Figure 16] cumulative distance of suggested functions")
    print(format_table(["quantity", "value"], rows))
    assert result.n_already_satisfactory + len(result.distances) == result.n_queries
    # Paper shape: every repaired query has a nearby satisfactory function.
    if result.distances:
        assert counts[0.6] >= int(0.8 * len(result.distances))
