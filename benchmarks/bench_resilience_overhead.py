"""Happy-path overhead of the resilience wrappers: they must be nearly free.

The fallback chain (`repro.resilience.fallback.FallbackEngine`) and the
resilient oracle (`repro.resilience.oracle.ResilientOracle`) only earn their
keep when the protection costs nothing while nothing is failing: the fast
route of ``suggest_many`` is one native batch call on the first tier plus
O(1) bookkeeping, and the guarded oracle adds one circuit check and a few
counter increments per call.  This benchmark times wrapped against unwrapped
serving and asserts the answers stay bit-identical; the target is **< 5%**
overhead on the committed record's serving rows.  The per-call oracle rows
are a microbenchmark of the wrapper's fixed cost (about a microsecond per
call) against a deliberately tiny in-process oracle — a worst-case
denominator; the batched protocol (`is_satisfactory_many` is one guarded
call per batch) amortises it to nothing on the serving paths.

Run standalone to regenerate the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py

which writes ``BENCH_resilience.json`` at the repository root.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engine import TwoDConfig, create_engine
from repro.data.synthetic import make_compas_like
from repro.fairness.proportional import ProportionalOracle
from repro.resilience import FallbackEngine, ResilientOracle

from _results import write_bench_record

DEFAULT_N_VALUES = (200, 1000)
DEFAULT_Q_VALUES = (100, 1000)


def _serving_pair(n: int):
    """A preprocessed 2-D engine and the same engine behind a fallback chain."""
    dataset = make_compas_like(n=n, seed=5).project(
        ["c_days_from_compas", "juv_other_count"]
    )
    oracle = ProportionalOracle.at_most_share_plus_slack(
        dataset, "race", "African-American", k=0.3, slack=0.10
    )
    engine = create_engine(dataset, oracle, TwoDConfig()).preprocess()
    wrapped = FallbackEngine.from_engines([engine]).preprocess()
    return dataset, oracle, engine, wrapped


def _interleaved(bare_call, wrapped_call, repeats: int):
    """Best-of-``repeats`` for both calls, measured in alternation.

    Interleaving cancels slow machine-level drift (thermal, noisy
    neighbours) that would otherwise bias whichever path is timed second.
    """
    bare_call(), wrapped_call()  # warm caches before timing either path
    best_bare = best_wrapped = float("inf")
    bare = wrapped = None
    for _ in range(repeats):
        start = time.perf_counter()
        bare = bare_call()
        best_bare = min(best_bare, time.perf_counter() - start)
        start = time.perf_counter()
        wrapped = wrapped_call()
        best_wrapped = min(best_wrapped, time.perf_counter() - start)
    return best_bare, bare, best_wrapped, wrapped


def compare_suggest_many(n: int, q: int, repeats: int = 7) -> dict:
    """Time ``suggest_many`` through the chain vs on the bare engine."""
    _, _, engine, wrapped = _serving_pair(n)
    rng = np.random.default_rng(q)
    queries = np.abs(rng.normal(size=(q, 2)))
    queries[np.all(queries == 0.0, axis=1)] = 1.0  # probability-zero guard
    bare_seconds, bare, wrapped_seconds, served = _interleaved(
        lambda: engine.suggest_many(queries),
        lambda: wrapped.suggest_many(queries),
        repeats,
    )
    return {
        "n": n,
        "q": q,
        "bare_seconds": bare_seconds,
        "wrapped_seconds": wrapped_seconds,
        "overhead_fraction": wrapped_seconds / bare_seconds - 1.0,
        "identical": served == bare,
        "n_faulted": wrapped.last_report.n_faulted,
    }


def compare_oracle_calls(n: int, calls: int = 300, repeats: int = 15) -> dict:
    """Time ``is_satisfactory`` through :class:`ResilientOracle` vs bare."""
    dataset, oracle, _, _ = _serving_pair(n)
    rng = np.random.default_rng(n)
    orderings = [rng.permutation(dataset.n_items) for _ in range(calls)]

    def _drive(target) -> tuple:
        return tuple(target.is_satisfactory(ordering, dataset) for ordering in orderings)

    guarded = ResilientOracle(oracle)
    bare_seconds, bare, wrapped_seconds, served = _interleaved(
        lambda: _drive(oracle), lambda: _drive(guarded), repeats
    )
    return {
        "n": n,
        "calls": calls,
        "bare_seconds": bare_seconds,
        "wrapped_seconds": wrapped_seconds,
        "overhead_fraction": wrapped_seconds / bare_seconds - 1.0,
        "identical": served == bare,
        "retries": guarded.stats.retries,
    }


def run_grid(n_values=DEFAULT_N_VALUES, q_values=DEFAULT_Q_VALUES, repeats: int = 15) -> dict:
    serving = [
        compare_suggest_many(n, q, repeats=repeats) for n in n_values for q in q_values
    ]
    oracle_rows = [compare_oracle_calls(n, repeats=repeats) for n in n_values]
    return {
        "benchmark": "resilience_happy_path_overhead",
        "workload": "make_compas_like(seed=5) projected to 2 attributes, "
        "FM1 (<= share+10% African-American in top 30%); random first-orthant queries",
        "bare_path": "QueryEngine.suggest_many / FairnessOracle.is_satisfactory",
        "wrapped_path": "FallbackEngine.from_engines([engine]) / ResilientOracle(oracle)",
        "target": "happy-path overhead below 5% at the largest batch size",
        "suggest_many": serving,
        "oracle": oracle_rows,
    }


def test_happy_path_overhead_is_small(benchmark, once):
    """Reduced-grid pytest entry: wrapped serving is identical and nearly free."""
    payload = once(benchmark, run_grid, n_values=(1000,), q_values=(1000,), repeats=5)
    print("\n[perf] resilience wrapper overhead (happy path)")
    for row in payload["suggest_many"]:
        print(
            f"  suggest_many n={row['n']} q={row['q']}: "
            f"{row['bare_seconds'] * 1e3:.2f}ms -> {row['wrapped_seconds'] * 1e3:.2f}ms "
            f"({row['overhead_fraction'] * 100:+.1f}%)"
        )
    for row in payload["oracle"]:
        print(
            f"  oracle n={row['n']} x{row['calls']}: "
            f"{row['bare_seconds'] * 1e3:.2f}ms -> {row['wrapped_seconds'] * 1e3:.2f}ms "
            f"({row['overhead_fraction'] * 100:+.1f}%)"
        )
    for row in payload["suggest_many"] + payload["oracle"]:
        assert row["identical"]
    # The committed BENCH_resilience.json records < 5% on the full grid; the
    # in-suite bound is looser to tolerate noisy CI boxes.
    assert payload["suggest_many"][-1]["overhead_fraction"] < 0.25


def main() -> None:
    payload = run_grid()
    output = write_bench_record(
        "BENCH_resilience.json",
        payload,
        parameters={
            "n_values": list(DEFAULT_N_VALUES),
            "q_values": list(DEFAULT_Q_VALUES),
            "oracle_calls": 300,
            "repeats": 15,
            "seed": 5,
        },
        repeat_policy="best of 15, bare and wrapped interleaved per repeat",
    )
    for row in payload["suggest_many"]:
        print(
            f"suggest_many n={row['n']} q={row['q']}: bare {row['bare_seconds'] * 1e3:.2f}ms, "
            f"wrapped {row['wrapped_seconds'] * 1e3:.2f}ms, "
            f"overhead {row['overhead_fraction'] * 100:+.2f}%, identical={row['identical']}"
        )
    for row in payload["oracle"]:
        print(
            f"oracle n={row['n']} x{row['calls']}: bare {row['bare_seconds'] * 1e3:.2f}ms, "
            f"wrapped {row['wrapped_seconds'] * 1e3:.2f}ms, "
            f"overhead {row['overhead_fraction'] * 100:+.2f}%"
        )
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
