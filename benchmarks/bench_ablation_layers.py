"""A2 — ablation of the convex-layer ("onion") pre-filter of §8 (future work in the paper).

When the fairness oracle only inspects the top-k, items outside the first k
convex layers can never appear there, so their exchange hyperplanes can be
dropped before building any arrangement.  The paper leaves this as future
work; this benchmark implements and measures it: hyperplane count and
SATREGIONS construction time with and without the filter.
"""

from __future__ import annotations

from repro.experiments import experiment_ablation_convex_layers, format_table


def test_ablation_convex_layer_filter(benchmark, once):
    result = once(benchmark, experiment_ablation_convex_layers, n_items=60, d=3, k=12)
    rows = [
        ["full: hyperplanes", int(result["full_hyperplanes"])],
        ["full: seconds", round(result["full_seconds"], 2)],
        ["full: satisfactory regions", int(result["full_satisfactory_regions"])],
        ["convex layers: hyperplanes", int(result["convex_layers_hyperplanes"])],
        ["convex layers: seconds", round(result["convex_layers_seconds"], 2)],
        ["convex layers: satisfactory regions", int(result["convex_layers_satisfactory_regions"])],
    ]
    print("\n[Ablation A2] convex-layer pre-filter of exchange hyperplanes")
    print(format_table(["quantity", "value"], rows))
    assert result["convex_layers_hyperplanes"] <= result["full_hyperplanes"]
