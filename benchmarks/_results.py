"""Shared writer for the committed ``BENCH_*.json`` records.

Every benchmark that persists a machine-readable record at the repository
root routes it through :func:`write_bench_record`, which stamps one common
envelope on top of the benchmark's own payload:

* ``format`` — the schema tag ``repro.bench/v1``, so downstream tooling can
  reject records written before the envelope existed;
* ``parameters`` — the workload knobs the run was generated with (grid
  sizes, batch sizes, seeds), exactly as passed by the benchmark;
* ``repeat_policy`` — how timings were aggregated (e.g. *best of 15,
  interleaved*), so a reader knows whether two records are comparable;
* ``generated_unix_time`` — when the record was produced.

The benchmark's payload keys are merged after the envelope and win on
conflict, so modules migrating to the writer keep their historical key
layout while gaining the stamp.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Mapping

BENCH_FORMAT = "repro.bench/v1"

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = ["BENCH_FORMAT", "REPO_ROOT", "write_bench_record"]


def write_bench_record(
    filename: str,
    payload: Mapping[str, Any],
    *,
    parameters: Mapping[str, Any],
    repeat_policy: str,
) -> Path:
    """Write ``payload`` to ``<repo root>/filename`` inside the v1 envelope.

    Returns the path written.  ``filename`` must be a bare ``BENCH_*.json``
    name (records live at the repository root by convention).
    """
    if "/" in filename or not filename.startswith("BENCH_"):
        raise ValueError(
            f"benchmark records are bare BENCH_*.json names at the repository "
            f"root, got {filename!r}"
        )
    record = {
        "format": BENCH_FORMAT,
        "parameters": dict(parameters),
        "repeat_policy": repeat_policy,
        "generated_unix_time": time.time(),
    }
    record.update(payload)
    output = REPO_ROOT / filename
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return output
