"""Tests for the synthetic COMPAS / DOT / admissions generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    COMPAS_SCORING_ATTRIBUTES,
    DOT_CARRIER_SHARES,
    DOT_SCORING_ATTRIBUTES,
    make_admissions_like,
    make_compas_like,
    make_correlated_dataset,
    make_dot_like,
    make_uniform_dataset,
)
from repro.exceptions import ConfigurationError


class TestCompasLike:
    def test_schema_matches_paper(self):
        dataset = make_compas_like(n=300, seed=0)
        assert dataset.n_items == 300
        assert list(dataset.scoring_attributes) == list(COMPAS_SCORING_ATTRIBUTES)
        assert set(dataset.type_attributes) == {"sex", "race", "age_binary", "age_bucketized"}

    def test_scores_in_unit_interval(self):
        dataset = make_compas_like(n=200, seed=1)
        assert dataset.scores.min() >= 0.0
        assert dataset.scores.max() <= 1.0

    def test_group_proportions_match_section_6_1(self):
        dataset = make_compas_like(n=5000, seed=2)
        sex = dataset.group_proportions("sex")
        race = dataset.group_proportions("race")
        assert sex["male"] == pytest.approx(0.80, abs=0.03)
        assert race["African-American"] == pytest.approx(0.50, abs=0.03)
        age = dataset.group_proportions("age_binary")
        assert age["35_or_younger"] == pytest.approx(0.60, abs=0.06)

    def test_reproducible_with_seed(self):
        first = make_compas_like(n=100, seed=7)
        second = make_compas_like(n=100, seed=7)
        assert np.array_equal(first.scores, second.scores)
        assert np.array_equal(first.type_column("race"), second.type_column("race"))

    def test_different_seeds_differ(self):
        first = make_compas_like(n=100, seed=1)
        second = make_compas_like(n=100, seed=2)
        assert not np.array_equal(first.scores, second.scores)

    def test_disparity_shifts_protected_scores(self):
        dataset = make_compas_like(n=4000, seed=3, disparity=0.2)
        race = dataset.type_column("race")
        column = dataset.column("c_days_from_compas")
        protected_mean = column[race == "African-American"].mean()
        other_mean = column[race != "African-American"].mean()
        assert protected_mean > other_mean

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            make_compas_like(n=0)
        with pytest.raises(ConfigurationError):
            make_compas_like(n=10, disparity=0.9)


class TestDotLike:
    def test_schema(self):
        dataset = make_dot_like(n=1000, seed=0)
        assert list(dataset.scoring_attributes) == list(DOT_SCORING_ATTRIBUTES)
        assert dataset.type_attributes == ["carrier"]

    def test_carrier_shares_roughly_match(self):
        dataset = make_dot_like(n=20000, seed=1)
        shares = dataset.group_proportions("carrier")
        for carrier in ("WN", "DL", "AA", "UA"):
            assert shares[carrier] == pytest.approx(
                DOT_CARRIER_SHARES[carrier] / sum(DOT_CARRIER_SHARES.values()), abs=0.02
            )

    def test_scores_in_unit_interval(self):
        dataset = make_dot_like(n=500, seed=2)
        assert dataset.scores.min() >= 0.0
        assert dataset.scores.max() <= 1.0

    def test_requires_positive_n(self):
        with pytest.raises(ConfigurationError):
            make_dot_like(n=-5)


class TestAdmissionsLike:
    def test_schema_and_gender_balance(self):
        dataset = make_admissions_like(n=2000, seed=0)
        assert list(dataset.scoring_attributes) == ["gpa", "sat"]
        share = dataset.group_proportions("gender")["female"]
        assert share == pytest.approx(0.5, abs=0.05)

    def test_sat_gap_between_genders(self):
        dataset = make_admissions_like(n=5000, seed=1, gap=0.1)
        gender = dataset.type_column("gender")
        sat = dataset.column("sat")
        assert sat[gender == "male"].mean() > sat[gender == "female"].mean()


class TestGenericGenerators:
    def test_uniform_dataset_shape(self):
        dataset = make_uniform_dataset(n=50, d=4, seed=0)
        assert dataset.n_items == 50
        assert dataset.n_attributes == 4
        assert dataset.type_attributes == ["group"]

    def test_uniform_dataset_custom_groups(self):
        dataset = make_uniform_dataset(
            n=300, d=2, seed=0, group_labels=("x", "y", "z"), group_probabilities=(0.2, 0.3, 0.5)
        )
        shares = dataset.group_proportions("group")
        assert shares["z"] == pytest.approx(0.5, abs=0.08)

    def test_uniform_dataset_validates_probabilities(self):
        with pytest.raises(ConfigurationError):
            make_uniform_dataset(10, 2, group_probabilities=(0.5, 0.2))

    def test_correlated_dataset_disparity(self):
        dataset = make_correlated_dataset(n=3000, d=3, seed=0, disparity=0.3)
        group = dataset.type_column("group")
        minority_mean = dataset.scores[group == "minority"].mean()
        majority_mean = dataset.scores[group == "majority"].mean()
        assert majority_mean - minority_mean > 0.1

    def test_correlated_dataset_validates_share(self):
        with pytest.raises(ConfigurationError):
            make_correlated_dataset(10, 2, minority_share=1.5)
