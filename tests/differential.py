"""Differential harness: prove two engines answer a weight grid identically.

The parallel serving/preprocessing layer (PR 9) claims *bit-identity*: a
pooled engine must be indistinguishable from its serial twin — same answers,
same oracle-call budget, same persisted index bytes — regardless of worker
count or shard completion order.  This module is the reusable measuring
instrument behind that claim:

* :func:`entry_fingerprint` collapses a batch entry — a
  :class:`~repro.core.result.SuggestionResult` or a
  :class:`~repro.resilience.fallback.QueryFailure` — into a hashable tuple of
  *exact* float hex digits (``float.hex``), so two fingerprints are equal iff
  the answers are bit-identical, never merely close;
* :func:`oracle_call_count` totals an engine's fairness-oracle calls wherever
  they happened — the parent oracle's ``calls`` counter plus the pool's
  ``remote_oracle_calls`` accumulator for calls made in worker processes;
* :func:`payload_bytes` canonicalises an engine's persisted form
  (``json.dumps(..., sort_keys=True)``) for byte-for-byte comparison, mapping
  engines that refuse to serialise (the serving composites) to ``None`` so
  two non-persistable engines compare equal;
* :func:`assert_engines_equivalent` runs one weight grid through both engines
  and asserts all three dimensions at once, reporting the first divergent
  query on failure.

The harness is deliberately engine-agnostic — any two objects with
``suggest_many`` / ``oracle`` / ``to_payload`` compare — so it also serves as
the fast differential smoke target of ``scripts/check_all.py``.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.result import SuggestionResult
from repro.exceptions import ConfigurationError
from repro.resilience.fallback import QueryFailure

__all__ = [
    "assert_engines_equivalent",
    "entry_fingerprint",
    "make_weight_grid",
    "oracle_call_count",
    "payload_bytes",
]


def _weights_hex(weights) -> tuple[str, ...]:
    return tuple(float(value).hex() for value in weights)


def entry_fingerprint(entry) -> tuple:
    """Collapse one batch entry into an exact, hashable fingerprint.

    ``SuggestionResult`` → ``("result", query weights, satisfactory,
    suggested weights, distance)``; ``QueryFailure`` → ``("failure", index,
    weights, ((tier, error_type, message), ...))``.  All floats are rendered
    with :meth:`float.hex`, so equality means bit-identity.
    """
    if isinstance(entry, QueryFailure):
        return (
            "failure",
            entry.index,
            _weights_hex(entry.weights),
            tuple(
                (error.tier, error.error_type, error.message)
                for error in entry.errors
            ),
        )
    if isinstance(entry, SuggestionResult):
        return (
            "result",
            _weights_hex(entry.query.weights),
            entry.satisfactory,
            _weights_hex(entry.function.weights),
            float(entry.angular_distance).hex(),
        )
    raise ConfigurationError(
        f"cannot fingerprint a batch entry of type {type(entry).__name__}"
    )


def oracle_call_count(engine) -> float:
    """Total oracle calls the engine has caused, local and remote.

    Counting oracles expose ``calls``; the pool additionally accumulates
    ``remote_oracle_calls`` for evaluations made inside worker processes,
    which the parent-side oracle instance never sees.
    """
    local = getattr(getattr(engine, "oracle", None), "calls", 0) or 0
    remote = getattr(engine, "remote_oracle_calls", 0) or 0
    return local + remote


def payload_bytes(engine) -> bytes | None:
    """Canonical bytes of the engine's persisted payload.

    ``None`` for engines that refuse to serialise (the serving composites
    raise ``ConfigurationError`` from ``to_payload``), so two such engines
    compare equal — per the contract that a pool *is* its inner engine's
    state plus serving topology.

    The per-stage ``timings`` profile (wall-clock seconds recorded during
    preprocessing) is scrubbed before comparison: it is observability
    metadata riding along in the payload, not index state, and wall clocks
    are the one thing two bit-identical preprocessing runs never agree on.
    """
    try:
        payload = engine.to_payload()
    except ConfigurationError:
        return None
    return json.dumps(_scrub_timings(payload), sort_keys=True).encode("utf-8")


def _scrub_timings(value):
    if isinstance(value, dict):
        return {
            key: _scrub_timings(item)
            for key, item in value.items()
            if key != "timings"
        }
    if isinstance(value, list):
        return [_scrub_timings(item) for item in value]
    return value


def make_weight_grid(n_queries: int, dimension: int, seed: int = 0) -> np.ndarray:
    """A deterministic grid of non-negative weight vectors for differential runs.

    Rows are drawn from a seeded RNG and normalised to sum to one; a few
    deliberately extreme rows (single-attribute spikes) are mixed in so the
    grid exercises boundary regions, not just the simplex interior.
    """
    rng = np.random.default_rng(seed)
    grid = rng.random((n_queries, dimension))
    grid /= grid.sum(axis=1, keepdims=True)
    for row in range(0, n_queries, max(1, n_queries // 3)):
        spike = np.full(dimension, 0.01)
        spike[row % dimension] = 1.0
        grid[row] = spike / spike.sum()
    return grid


def assert_engines_equivalent(
    engine_a,
    engine_b,
    weight_grid,
    *,
    check_oracle_calls: bool = True,
    check_payloads: bool = True,
) -> list:
    """Assert two engines answer ``weight_grid`` bit-identically.

    Runs the grid through both engines' ``suggest_many``, then asserts:

    1. per-query answer fingerprints match (reporting the first divergence);
    2. both runs spent the same number of oracle calls (local + remote);
    3. the engines' persisted payloads are byte-for-byte equal.

    Returns engine A's entries so callers can make further assertions.
    """
    grid = np.asarray(weight_grid, dtype=float)
    before_a = oracle_call_count(engine_a)
    entries_a = engine_a.suggest_many(grid)
    delta_a = oracle_call_count(engine_a) - before_a
    before_b = oracle_call_count(engine_b)
    entries_b = engine_b.suggest_many(grid)
    delta_b = oracle_call_count(engine_b) - before_b

    assert len(entries_a) == len(entries_b) == grid.shape[0], (
        f"batch sizes diverge: {len(entries_a)} vs {len(entries_b)} "
        f"for {grid.shape[0]} queries"
    )
    for row, (entry_a, entry_b) in enumerate(zip(entries_a, entries_b)):
        fp_a = entry_fingerprint(entry_a)
        fp_b = entry_fingerprint(entry_b)
        assert fp_a == fp_b, (
            f"query {row} diverges:\n  A: {fp_a}\n  B: {fp_b}"
        )
    if check_oracle_calls:
        assert delta_a == delta_b, (
            f"oracle-call budgets diverge: {delta_a} vs {delta_b}"
        )
    if check_payloads:
        assert payload_bytes(engine_a) == payload_bytes(engine_b), (
            "persisted payloads diverge byte-for-byte"
        )
    return entries_a
