"""Tests for the LP helpers and the hyperplane / half-space / region primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GeometryError, InfeasibleRegionError
from repro.geometry.angles import HALF_PI
from repro.geometry.hyperplane import HalfSpace, Hyperplane, Region, angle_box_bounds
from repro.geometry.lp import chebyshev_center, feasible_point, is_feasible


class TestLP:
    def test_feasible_box_without_constraints(self):
        result = feasible_point(None, None, [(0.0, 1.0), (0.0, 1.0)])
        assert result.feasible
        assert result.point.shape == (2,)

    def test_infeasible_contradictory_constraints(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.2, -0.8])  # x <= 0.2 and x >= 0.8
        assert not is_feasible(a, b, [(0.0, 1.0), (0.0, 1.0)])

    def test_margin_makes_tight_system_infeasible(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.5, -0.5])  # x == 0.5 exactly
        assert is_feasible(a, b, [(0.0, 1.0), (0.0, 1.0)])
        assert not is_feasible(a, b, [(0.0, 1.0), (0.0, 1.0)], margin=1e-3)

    def test_negative_margin_rejected(self):
        with pytest.raises(GeometryError):
            feasible_point(None, None, [(0.0, 1.0)], margin=-1.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(GeometryError):
            feasible_point(None, None, [(1.0, 0.0)])

    def test_mismatched_system_rejected(self):
        with pytest.raises(GeometryError):
            feasible_point(np.ones((2, 3)), np.ones(2), [(0.0, 1.0)] * 2)

    def test_chebyshev_center_of_box(self):
        result = chebyshev_center(None, None, [(0.0, 1.0), (0.0, 1.0)])
        assert result.feasible
        assert np.allclose(result.point, [0.5, 0.5], atol=1e-6)
        assert result.margin == pytest.approx(0.5, abs=1e-6)

    def test_chebyshev_center_respects_constraints(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([0.5])
        result = chebyshev_center(a, b, [(0.0, 1.0), (0.0, 1.0)])
        assert result.point.sum() <= 0.5 + 1e-9

    def test_chebyshev_center_infeasible_raises(self):
        a = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.2, -0.8])
        with pytest.raises(InfeasibleRegionError):
            chebyshev_center(a, b, [(0.0, 1.0), (0.0, 1.0)])


class TestHyperplane:
    def test_evaluate_and_side(self):
        hyperplane = Hyperplane((2.0, 0.0))
        assert hyperplane.evaluate(np.array([0.5, 0.3])) == pytest.approx(0.0)
        assert hyperplane.side(np.array([0.6, 0.0])) == 1
        assert hyperplane.side(np.array([0.4, 0.0])) == -1
        assert hyperplane.side(np.array([0.5, 0.9])) == 0

    def test_rejects_all_zero_coefficients(self):
        with pytest.raises(GeometryError):
            Hyperplane((0.0, 0.0))

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(GeometryError):
            Hyperplane(())
        with pytest.raises(GeometryError):
            Hyperplane((np.nan, 1.0))

    def test_dimension_mismatch_on_evaluate(self):
        with pytest.raises(GeometryError):
            Hyperplane((1.0, 1.0)).evaluate(np.array([1.0]))

    def test_crosses_box(self):
        hyperplane = Hyperplane((1.0, 1.0))  # x + y = 1
        assert hyperplane.crosses_box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert not hyperplane.crosses_box(np.array([0.6, 0.6]), np.array([1.0, 1.0]))
        assert not hyperplane.crosses_box(np.array([0.0, 0.0]), np.array([0.4, 0.4]))

    def test_crosses_box_with_negative_coefficient(self):
        hyperplane = Hyperplane((2.0, -1.0))  # 2x - y = 1
        assert hyperplane.crosses_box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert not hyperplane.crosses_box(np.array([0.0, 0.9]), np.array([0.2, 1.0]))

    def test_crosses_box_validates_corners(self):
        hyperplane = Hyperplane((1.0, 1.0))
        with pytest.raises(GeometryError):
            hyperplane.crosses_box(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    @given(st.floats(0.1, 5.0), st.floats(-5.0, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_side_consistency_with_halfspaces(self, a, b):
        if abs(b) < 1e-6:
            b = 1.0
        hyperplane = Hyperplane((a, b))
        point = np.array([0.3, 0.4])
        value = hyperplane.evaluate(point)
        assert hyperplane.negative().contains(point) == (value <= 1e-9)
        assert hyperplane.positive().contains(point) == (value >= -1e-9)


class TestHalfSpace:
    def test_sign_validation(self):
        with pytest.raises(GeometryError):
            HalfSpace(Hyperplane((1.0,)), 0)

    def test_as_inequality_negative(self):
        a, b = Hyperplane((2.0, 3.0)).negative().as_inequality()
        assert np.allclose(a, [2.0, 3.0])
        assert b == 1.0

    def test_as_inequality_positive(self):
        a, b = Hyperplane((2.0, 3.0)).positive().as_inequality()
        assert np.allclose(a, [-2.0, -3.0])
        assert b == -1.0

    def test_flipped(self):
        half_space = Hyperplane((1.0, 0.0)).negative()
        assert half_space.flipped().sign == 1


class TestRegion:
    def test_whole_space_contains_everything_in_box(self):
        region = Region.whole_space(2)
        assert region.contains(np.array([0.1, 1.2]))
        assert not region.contains(np.array([0.1, HALF_PI + 0.5]))

    def test_with_half_space_restricts(self):
        hyperplane = Hyperplane((1.0, 1.0))
        region = Region.whole_space(2).with_half_space(hyperplane.negative())
        assert region.contains(np.array([0.2, 0.3]))
        assert not region.contains(np.array([1.0, 1.0]))

    def test_interior_point_satisfies_constraints(self):
        hyperplane = Hyperplane((1.0, 1.0))
        region = Region.whole_space(2).with_half_space(hyperplane.negative())
        point = region.interior_point()
        assert region.contains(point)
        assert hyperplane.evaluate(point) < 0.0

    def test_interior_point_of_empty_region_raises(self):
        hyperplane = Hyperplane((1000.0, 1000.0))
        region = (
            Region.whole_space(2)
            .with_half_space(hyperplane.negative())
            .with_half_space(Hyperplane((0.1, 0.1)).positive())
        )
        assert region.is_empty()
        with pytest.raises(InfeasibleRegionError):
            region.interior_point()

    def test_split_produces_complementary_regions(self):
        hyperplane = Hyperplane((1.0, 1.0))
        below, above = Region.whole_space(2).split(hyperplane)
        point = np.array([0.2, 0.2])
        assert below.contains(point)
        assert not above.contains(point)

    def test_intersects_hyperplane_true_and_false(self):
        region = Region.whole_space(2).with_half_space(Hyperplane((1.0, 1.0)).negative())
        assert region.intersects_hyperplane(Hyperplane((1.5, 1.5)))
        assert not region.intersects_hyperplane(Hyperplane((0.1, 0.1)))

    def test_intersects_uses_cached_interior(self):
        region = Region.whole_space(2).with_half_space(Hyperplane((1.0, 1.0)).negative())
        region.interior_point()  # populate the cache
        assert region.intersects_hyperplane(Hyperplane((1.5, 1.5)))
        assert not region.intersects_hyperplane(Hyperplane((0.1, 0.1)))

    def test_defining_hyperplanes_deduplicates(self):
        hyperplane = Hyperplane((1.0, 1.0))
        region = (
            Region.whole_space(2)
            .with_half_space(hyperplane.negative())
            .with_half_space(hyperplane.negative())
        )
        assert len(region.defining_hyperplanes()) == 1

    def test_dimension_checks(self):
        with pytest.raises(GeometryError):
            Region.whole_space(0)
        with pytest.raises(GeometryError):
            Region.whole_space(2).with_half_space(Hyperplane((1.0,)).negative())

    def test_angle_box_bounds(self):
        assert angle_box_bounds(3) == [(0.0, HALF_PI)] * 3
        with pytest.raises(GeometryError):
            angle_box_bounds(0)
