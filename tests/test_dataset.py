"""Unit tests for repro.data.dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, normalize_minmax
from repro.exceptions import DatasetError, SchemaError


def make_simple(n: int = 6) -> Dataset:
    scores = np.arange(n * 2, dtype=float).reshape(n, 2)
    groups = np.array(["a", "b"] * (n // 2))
    return Dataset(scores=scores, scoring_attributes=["u", "v"], types={"g": groups})


class TestNormalizeMinmax:
    def test_maps_to_unit_interval(self):
        result = normalize_minmax(np.array([2.0, 4.0, 6.0]))
        assert result.min() == 0.0
        assert result.max() == 1.0
        assert result[1] == pytest.approx(0.5)

    def test_constant_column_maps_to_zero(self):
        result = normalize_minmax(np.array([3.0, 3.0, 3.0]))
        assert np.all(result == 0.0)

    def test_preserves_order(self):
        values = np.array([5.0, 1.0, 3.0])
        result = normalize_minmax(values)
        assert np.array_equal(np.argsort(values), np.argsort(result))


class TestDatasetConstruction:
    def test_basic_properties(self):
        dataset = make_simple()
        assert dataset.n_items == 6
        assert dataset.n_attributes == 2
        assert dataset.type_attributes == ["g"]
        assert len(dataset) == 6

    def test_rejects_non_2d_scores(self):
        with pytest.raises(DatasetError):
            Dataset(scores=np.arange(4.0), scoring_attributes=["a"])

    def test_rejects_negative_scores(self):
        with pytest.raises(DatasetError):
            Dataset(scores=np.array([[1.0, -0.1]]), scoring_attributes=["a", "b"])

    def test_rejects_nan_scores(self):
        with pytest.raises(DatasetError):
            Dataset(scores=np.array([[1.0, np.nan]]), scoring_attributes=["a", "b"])

    def test_rejects_mismatched_attribute_names(self):
        with pytest.raises(SchemaError):
            Dataset(scores=np.ones((2, 2)), scoring_attributes=["only_one"])

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(SchemaError):
            Dataset(scores=np.ones((2, 2)), scoring_attributes=["a", "a"])

    def test_rejects_type_column_of_wrong_length(self):
        with pytest.raises(SchemaError):
            Dataset(
                scores=np.ones((3, 2)),
                scoring_attributes=["a", "b"],
                types={"g": ["x", "y"]},
            )

    def test_rejects_empty_dataset(self):
        with pytest.raises(DatasetError):
            Dataset(scores=np.zeros((0, 2)), scoring_attributes=["a", "b"])


class TestColumnsAndItems:
    def test_column_lookup(self):
        dataset = make_simple()
        assert np.array_equal(dataset.column("u"), dataset.scores[:, 0])
        assert np.array_equal(dataset.column("v"), dataset.scores[:, 1])

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_simple().column("nope")

    def test_type_column(self):
        dataset = make_simple()
        assert list(dataset.type_column("g")[:2]) == ["a", "b"]

    def test_unknown_type_column_raises(self):
        with pytest.raises(SchemaError):
            make_simple().type_column("nope")

    def test_item_accessor(self):
        dataset = make_simple()
        assert np.array_equal(dataset.item(1), np.array([2.0, 3.0]))

    def test_item_out_of_range(self):
        with pytest.raises(DatasetError):
            make_simple().item(99)

    def test_group_proportions_sum_to_one(self):
        proportions = make_simple().group_proportions("g")
        assert proportions["a"] == pytest.approx(0.5)
        assert sum(proportions.values()) == pytest.approx(1.0)


class TestProjectionAndSubsets:
    def test_project_selects_and_reorders(self):
        dataset = make_simple()
        projected = dataset.project(["v", "u"])
        assert projected.scoring_attributes == ["v", "u"]
        assert np.array_equal(projected.scores[:, 0], dataset.scores[:, 1])
        assert projected.type_attributes == ["g"]

    def test_project_requires_known_attributes(self):
        with pytest.raises(SchemaError):
            make_simple().project(["u", "missing"])

    def test_project_requires_non_empty(self):
        with pytest.raises(SchemaError):
            make_simple().project([])

    def test_take_subsets_rows_and_types(self):
        dataset = make_simple()
        subset = dataset.take([0, 2])
        assert subset.n_items == 2
        assert np.array_equal(subset.scores[1], dataset.scores[2])
        assert subset.type_column("g")[1] == dataset.type_column("g")[2]

    def test_take_rejects_out_of_range(self):
        with pytest.raises(DatasetError):
            make_simple().take([0, 99])

    def test_take_rejects_empty(self):
        with pytest.raises(DatasetError):
            make_simple().take([])

    def test_head(self):
        assert make_simple().head(3).n_items == 3

    def test_head_requires_positive(self):
        with pytest.raises(DatasetError):
            make_simple().head(0)

    def test_sample_is_without_replacement(self):
        dataset = make_simple()
        sample = dataset.sample(4, seed=0)
        assert sample.n_items == 4
        rows = {tuple(row) for row in sample.scores}
        assert len(rows) == 4

    def test_sample_too_large_raises(self):
        with pytest.raises(DatasetError):
            make_simple().sample(100)

    def test_sample_reproducible_with_seed(self):
        dataset = make_simple()
        first = dataset.sample(3, seed=42)
        second = dataset.sample(3, seed=42)
        assert np.array_equal(first.scores, second.scores)


class TestNormalization:
    def test_normalized_in_unit_range(self):
        normalized = make_simple().normalized()
        assert normalized.scores.min() >= 0.0
        assert normalized.scores.max() <= 1.0

    def test_invert_flips_order(self):
        dataset = make_simple()
        normalized = dataset.normalized(invert=["u"])
        original = dataset.column("u")
        flipped = normalized.column("u")
        assert np.array_equal(np.argsort(original), np.argsort(flipped)[::-1])

    def test_invert_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            make_simple().normalized(invert=["missing"])


class TestCsvRoundTrip:
    def test_round_trip_preserves_data(self, tmp_path):
        dataset = make_simple()
        path = tmp_path / "data.csv"
        dataset.to_csv(str(path))
        loaded = Dataset.from_csv(str(path))
        assert loaded.n_items == dataset.n_items
        assert loaded.scoring_attributes == list(dataset.scoring_attributes)
        assert np.allclose(loaded.scores, dataset.scores)
        assert list(loaded.type_column("g")) == list(map(str, dataset.type_column("g")))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            Dataset.from_csv(str(tmp_path / "missing.csv"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            Dataset.from_csv(str(path))

    def test_header_only_file_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(DatasetError):
            Dataset.from_csv(str(path))
