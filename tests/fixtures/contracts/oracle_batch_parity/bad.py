"""Fixture: a scalar-only oracle override without a batched twin."""

from repro.fairness.oracle import FairnessOracle


class ScalarOnlyOracle(FairnessOracle):
    def is_satisfactory(self, ordering, dataset):
        return True
