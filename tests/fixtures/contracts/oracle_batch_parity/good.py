"""Fixture: scalar override paired with its batched twin (one inherited case)."""

import numpy as np

from repro.fairness.oracle import FairnessOracle


class PairedOracle(FairnessOracle):
    def is_satisfactory(self, ordering, dataset):
        return True

    def is_satisfactory_many(self, orderings, dataset):
        return np.ones(len(orderings), dtype=bool)


class InheritingOracle(PairedOracle):
    """Overrides the scalar path; the batched twin is inherited."""

    def is_satisfactory(self, ordering, dataset):
        return False
