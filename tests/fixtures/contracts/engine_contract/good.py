"""Fixture: a registered engine with the full seam, partly inherited."""

from repro.core.engine import register_engine


class StubConfig:
    pass


class SeamBase:
    def preprocess(self, dataset=None, oracle=None):
        return self

    def suggest_many(self, weights_matrix):
        return [self.suggest(row) for row in weights_matrix]

    def to_payload(self):
        return {}

    @classmethod
    def from_payload(cls, payload, oracle):
        return cls()


@register_engine("fixture-good-engine", StubConfig)
class FullEngine(SeamBase):
    def suggest(self, function):
        return None

    @classmethod
    def capabilities(cls):
        return None
