"""Fixture: a registered engine missing most of the QueryEngine seam."""

from repro.core.engine import register_engine


class StubConfig:
    pass


@register_engine("fixture-bad-engine", StubConfig)
class HalfEngine:
    """Defines suggest only; preprocess/suggest_many/... are missing."""

    def suggest(self, function):
        return None

    def to_payload(self):
        return {}

    @classmethod
    def from_payload(cls, payload, oracle):
        return cls()
