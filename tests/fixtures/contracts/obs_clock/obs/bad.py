"""Seeded violation: an observability module reading the process clock."""
import time


def now() -> float:
    return time.monotonic()
