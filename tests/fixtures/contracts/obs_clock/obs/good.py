"""Clean twin: durations flow through the injected clock seam."""
from repro.clock import Clock, monotonic_clock


def now(clock: Clock = monotonic_clock) -> float:
    return clock()
