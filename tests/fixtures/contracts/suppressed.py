"""Fixture: a violation silenced by an inline suppression comment."""


def validate(n):
    if n < 0:
        raise ValueError("negative")  # repro: allow-typed-exceptions
    return n
