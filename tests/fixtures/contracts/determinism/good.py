"""Fixture: seeded generators and monotonic duration measurement."""

import time

import numpy as np


def elapsed(clock=None):
    clock = clock if clock is not None else time.monotonic
    return clock()


def draw(seed=0):
    rng = np.random.default_rng(seed)
    return rng.random()


def timed():
    return time.perf_counter()
