"""Clean fixture: the pool passes a worker initializer, as the rule requires."""

from concurrent.futures import ProcessPoolExecutor


def _init_worker(base_seed):
    pass


def fan_out(task, shards, base_seed):
    with ProcessPoolExecutor(
        max_workers=2, initializer=_init_worker, initargs=(base_seed,)
    ) as executor:
        return [future.result() for future in [executor.submit(task, s) for s in shards]]
