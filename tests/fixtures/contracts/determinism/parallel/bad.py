"""Violation fixture: a pool in a parallel module without a worker initializer.

Forked workers inherit the parent's ambient trace recorder and RNG state;
the determinism rule requires every ``ProcessPoolExecutor`` in parallel
modules to pass ``initializer=`` so that state is detached and re-seeded.
"""

from concurrent.futures import ProcessPoolExecutor


def fan_out(task, shards):
    with ProcessPoolExecutor(max_workers=2) as executor:
        return [future.result() for future in [executor.submit(task, s) for s in shards]]
