"""Fixture: wall clocks and unseeded / global-state RNG."""

import random
import time

import numpy as np


def stamp():
    return time.time()


def draw():
    rng = np.random.default_rng()
    return rng.random() + np.random.rand() + random.random()
