"""Fixture: registering an engine by mutating the registry dicts directly."""

from repro.core.engine import _CONFIG_TO_NAME, _ENGINE_REGISTRY


class SneakyEngine:
    pass


class SneakyConfig:
    pass


_ENGINE_REGISTRY["sneaky"] = SneakyEngine
_CONFIG_TO_NAME.update({SneakyConfig: "sneaky"})


def unregister():
    _ENGINE_REGISTRY.pop("sneaky")
