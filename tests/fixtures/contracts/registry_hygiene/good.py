"""Fixture: registration through the registry API only."""

from repro.core.engine import available_engines, get_engine, register_engine


class PoliteConfig:
    pass


@register_engine("fixture-polite-engine", PoliteConfig)
class PoliteEngine:
    def preprocess(self, dataset=None, oracle=None):
        return self

    def suggest(self, function):
        return None

    def suggest_many(self, weights_matrix):
        return []

    @classmethod
    def capabilities(cls):
        return None

    def to_payload(self):
        return {}

    @classmethod
    def from_payload(cls, payload, oracle):
        return cls()


def lookup():
    return get_engine("fixture-polite-engine"), available_engines()
