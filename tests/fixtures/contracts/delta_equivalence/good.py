"""Fixture: apply_delta overrides that satisfy the delta-equivalence rule.

``ListedDeltaEngine`` overrides ``apply_delta`` under a registry name the
differential harness's ``DELTA_EXERCISED_ENGINES`` list carries ("pool");
``InheritingEngine`` does not override at all, so the base seam's own proof
covers it and the rule stays quiet.
"""

from repro.core.engine import QueryEngine, register_engine


class StubConfig:
    pass


@register_engine("pool", StubConfig)
class ListedDeltaEngine(QueryEngine):
    def apply_delta(self, delta):
        return None


@register_engine("fixture-inheriting-engine", StubConfig)
class InheritingEngine(QueryEngine):
    pass
