"""Fixture: a registered engine overrides apply_delta but no differential
harness fixture entry names it — the override ships unproven."""

from repro.core.engine import QueryEngine, register_engine


class StubConfig:
    pass


@register_engine("fixture-unexercised-delta-engine", StubConfig)
class UnprovenDeltaEngine(QueryEngine):
    def apply_delta(self, delta):
        return None
