"""Fixture: typed exceptions only (NotImplementedError stubs stay legal)."""

from repro.exceptions import ConfigurationError


def validate(n_cells):
    if n_cells is None or n_cells < 1:
        raise ConfigurationError("n_cells must be >= 1")
    return n_cells


class Base:
    def hook(self):
        raise NotImplementedError
