"""Fixture: bare builtin raises and a control-flow assert."""


def validate(n_cells):
    assert n_cells is not None
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    if not isinstance(n_cells, int):
        raise Exception("bad type")
    return n_cells
