"""Tests for 2DRAYSWEEP / 2DONLINE, including brute-force optimality checks."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.two_dim import AngularInterval, TwoDIndex, TwoDRaySweep, two_d_online
from repro.data.dataset import Dataset
from repro.data.synthetic import make_compas_like
from repro.exceptions import (
    GeometryError,
    NoSatisfactoryFunctionError,
    NotPreprocessedError,
)
from repro.fairness.oracle import CallableOracle, CountingOracle
from repro.fairness.proportional import ProportionalOracle, TopKGroupBoundOracle
from repro.geometry.angles import HALF_PI
from repro.ranking.queries import random_queries
from repro.ranking.scoring import LinearScoringFunction


class TestAngularInterval:
    def test_contains_and_distance(self):
        interval = AngularInterval(0.2, 0.6)
        assert interval.contains(0.4)
        assert not interval.contains(0.7)
        assert interval.distance_to(0.4) == 0.0
        assert interval.distance_to(0.8) == pytest.approx(0.2)
        assert interval.closest_angle_to(0.1) == pytest.approx(0.2)

    def test_invalid_interval(self):
        with pytest.raises(GeometryError):
            AngularInterval(0.6, 0.2)
        with pytest.raises(GeometryError):
            AngularInterval(-0.1, 0.2)


class TestRaySweepOnPaperExample:
    def test_figure1_constraint(self, paper_2d_dataset, balanced_topk_oracle):
        """The Figure 1 dataset has both satisfactory and unsatisfactory functions."""
        index = TwoDRaySweep(paper_2d_dataset, balanced_topk_oracle).run()
        assert index.n_exchanges == 10
        assert index.has_satisfactory_region
        # Verify the sweep's labels agree with direct evaluation for probe
        # functions chosen away from exact ordering-exchange angles (exactly at
        # an exchange the ordering is tied and the label is ambiguous).
        for weights in ([1.0, 1.03], [1.0, 0.2], [0.2, 1.0], [0.97, 1.3]):
            function = LinearScoringFunction(tuple(weights))
            expected = balanced_topk_oracle.evaluate_function(function, paper_2d_dataset)
            angle = math.atan2(weights[1], weights[0])
            assert index.is_satisfactory_angle(angle) == expected

    def test_oracle_called_once_per_sector(self, paper_2d_dataset, balanced_topk_oracle):
        counting = CountingOracle(balanced_topk_oracle)
        index = TwoDRaySweep(paper_2d_dataset, counting).run()
        # one call per sector: number of distinct exchange angles + 1
        assert counting.calls <= index.n_exchanges + 1
        assert counting.calls == index.oracle_calls

    def test_requires_two_attributes(self, paper_3d_dataset, balanced_topk_oracle):
        with pytest.raises(GeometryError):
            TwoDRaySweep(paper_3d_dataset, balanced_topk_oracle)


class TestRaySweepAgainstBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_labels_match_direct_evaluation(self, seed):
        """Every probed angle is classified exactly as the oracle classifies it."""
        dataset = make_compas_like(n=30, seed=seed).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=8, max_count=5)
        index = TwoDRaySweep(dataset, oracle).run()
        for angle in np.linspace(0.01, HALF_PI - 0.01, 60):
            function = LinearScoringFunction((math.cos(angle), math.sin(angle)))
            assert index.is_satisfactory_angle(angle) == oracle.evaluate_function(
                function, dataset
            )

    @pytest.mark.parametrize("seed", [3, 4])
    def test_suggestion_is_satisfactory_and_nearly_optimal(self, seed):
        dataset = make_compas_like(n=30, seed=seed).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = TopKGroupBoundOracle("race", "African-American", k=8, max_count=5)
        index = TwoDRaySweep(dataset, oracle).run()
        probe_angles = np.linspace(0.0, HALF_PI, 400)
        satisfied_angles = [
            angle
            for angle in probe_angles
            if oracle.evaluate_function(
                LinearScoringFunction((math.cos(angle), math.sin(angle) + 1e-12)), dataset
            )
        ]
        for query in random_queries(2, 10, seed=seed):
            result = index.query(query)
            suggested = result.function
            # The suggestion must satisfy the oracle.
            assert oracle.evaluate_function(suggested, dataset)
            if not result.satisfactory and satisfied_angles:
                # And be within one probe step of the best satisfiable angle.
                query_angle = math.atan2(query.weights[1], query.weights[0])
                brute_best = min(abs(query_angle - a) for a in satisfied_angles)
                assert result.angular_distance <= brute_best + (HALF_PI / 399) + 1e-6


class TestTwoDOnline:
    def make_index(self) -> TwoDIndex:
        return TwoDIndex(
            intervals=[AngularInterval(0.2, 0.5), AngularInterval(1.0, 1.3)],
            n_exchanges=5,
            oracle_calls=6,
        )

    def test_query_inside_region_returns_input(self):
        index = self.make_index()
        query = LinearScoringFunction((math.cos(0.3), math.sin(0.3)))
        result = index.query(query)
        assert result.satisfactory
        assert result.angular_distance == 0.0
        assert result.function is query

    def test_query_outside_returns_nearest_border(self):
        index = self.make_index()
        query = LinearScoringFunction((math.cos(0.7), math.sin(0.7)))
        result = index.query(query)
        assert not result.satisfactory
        # The suggestion is the nearest interval border, nudged a hair into the
        # interval's interior so it provably induces the satisfactory ordering.
        assert result.angular_distance == pytest.approx(0.2, abs=1e-6)
        suggested_angle = math.atan2(result.function.weights[1], result.function.weights[0])
        assert suggested_angle == pytest.approx(0.5, abs=1e-6)
        assert index.intervals[0].contains(suggested_angle)

    def test_query_preserves_radius(self):
        index = self.make_index()
        query = LinearScoringFunction((3.0 * math.cos(0.7), 3.0 * math.sin(0.7)))
        result = index.query(query)
        assert np.linalg.norm(result.function.as_array()) == pytest.approx(3.0)

    def test_functional_alias(self):
        index = self.make_index()
        query = LinearScoringFunction((math.cos(0.3), math.sin(0.3)))
        assert two_d_online(index, query).satisfactory

    def test_no_satisfactory_region_raises(self):
        index = TwoDIndex(intervals=[], n_exchanges=3, oracle_calls=4)
        with pytest.raises(NoSatisfactoryFunctionError):
            index.query(LinearScoringFunction((1.0, 1.0)))

    def test_not_preprocessed_raises(self):
        index = TwoDIndex()
        with pytest.raises(NotPreprocessedError):
            index.query(LinearScoringFunction((1.0, 1.0)))

    def test_rejects_wrong_dimension(self):
        index = self.make_index()
        with pytest.raises(GeometryError):
            index.query(LinearScoringFunction((1.0, 1.0, 1.0)))

    @given(st.floats(0.01, HALF_PI - 0.01))
    @settings(max_examples=60, deadline=None)
    def test_always_satisfactory_oracle_accepts_everything(self, angle):
        dataset = Dataset(
            scores=np.array([[1.0, 2.0], [2.0, 1.0], [1.5, 1.5]]),
            scoring_attributes=["x", "y"],
        )
        oracle = CallableOracle(lambda ordering, data: True, "always true")
        index = TwoDRaySweep(dataset, oracle).run()
        result = index.query(LinearScoringFunction((math.cos(angle), math.sin(angle))))
        assert result.satisfactory

    def test_never_satisfactory_oracle(self):
        dataset = Dataset(
            scores=np.array([[1.0, 2.0], [2.0, 1.0]]), scoring_attributes=["x", "y"]
        )
        oracle = CallableOracle(lambda ordering, data: False, "always false")
        index = TwoDRaySweep(dataset, oracle).run()
        assert not index.has_satisfactory_region
        with pytest.raises(NoSatisfactoryFunctionError):
            index.query(LinearScoringFunction((1.0, 1.0)))


class TestMergedRegions:
    def test_adjacent_satisfactory_sectors_merge(self):
        """Neighbouring satisfactory sectors become one region (paper Figures 5-6)."""
        dataset = make_compas_like(n=25, seed=9).project(
            ["c_days_from_compas", "juv_other_count"]
        )
        oracle = ProportionalOracle.at_most_share_plus_slack(
            dataset, "race", "African-American", k=0.4, slack=0.2
        )
        index = TwoDRaySweep(dataset, oracle).run()
        # Merged intervals must be disjoint and sorted.
        for before, after in zip(index.intervals, index.intervals[1:]):
            assert before.end < after.start
