"""Tests for the ``audit`` and ``figures`` CLI subcommands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_audit_subcommand_is_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "audit",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--weights",
                "0.5,0.3,0.2",
            ]
        )
        assert args.command == "audit"
        assert args.k == pytest.approx(0.3)

    def test_figures_subcommand_is_registered(self):
        parser = build_parser()
        args = parser.parse_args(["figures", "--output", "out", "--names", "fig19_region_growth"])
        assert args.command == "figures"
        assert args.output == "out"

    def test_unknown_command_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
        capsys.readouterr()


class TestAuditCommand:
    def test_audit_prints_report_for_synthetic_compas(self, capsys):
        exit_code = main(
            [
                "audit",
                "--dataset",
                "compas",
                "--n",
                "120",
                "--d",
                "3",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--weights",
                "0.5,0.3,0.2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fairness audit" in captured.out
        assert "rND" in captured.out

    def test_audit_with_csv_dataset(self, tmp_path, capsys, small_compas_3d):
        path = tmp_path / "data.csv"
        small_compas_3d.to_csv(str(path))
        exit_code = main(
            [
                "audit",
                "--csv",
                str(path),
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "10",
                "--weights",
                "0.4,0.3,0.3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "protected in top-k" in captured.out


class TestSuggestExplain:
    def test_suggest_with_explain_flag_prints_explanation(self, capsys):
        exit_code = main(
            [
                "suggest",
                "--dataset",
                "compas",
                "--n",
                "80",
                "--d",
                "3",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--max-share",
                "0.6",
                "--n-cells",
                "27",
                "--max-hyperplanes",
                "40",
                "--weights",
                "0.5,0.3,0.2",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        # Either the query was already fair (short message) or a full repair
        # explanation is printed.
        assert (
            "already satisfy" in captured.out
            or "top-" in captured.out
            and "weight changes" in captured.out
        )


class TestSuggestBatchAndPersistence:
    _BASE = [
        "suggest",
        "--dataset",
        "compas",
        "--n",
        "60",
        "--d",
        "2",
        "--attribute",
        "race",
        "--group",
        "African-American",
        "--k",
        "0.3",
        "--max-share",
        "0.6",
    ]

    def test_requires_weights_or_weights_file(self, capsys):
        code = main(self._BASE)
        captured = capsys.readouterr()
        assert code == 2
        assert "--weights" in captured.err

    def test_weights_file_answers_every_line(self, tmp_path, capsys):
        weights_file = tmp_path / "queries.txt"
        weights_file.write_text("0.9,0.1\n0.5,0.5\n\n0.1,0.9\n", encoding="utf-8")
        code = main(self._BASE + ["--weights-file", str(weights_file)])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("->") == 3

    def test_empty_weights_file_is_an_error(self, tmp_path, capsys):
        weights_file = tmp_path / "queries.txt"
        weights_file.write_text("\n", encoding="utf-8")
        code = main(self._BASE + ["--weights-file", str(weights_file)])
        captured = capsys.readouterr()
        assert code == 2
        assert "no weight vectors" in captured.err

    def test_save_then_load_index_round_trip(self, tmp_path, capsys):
        index_path = tmp_path / "engine.json"
        code = main(self._BASE + ["--weights", "0.9,0.1", "--save-index", str(index_path)])
        saved_out = capsys.readouterr().out
        assert code == 0
        assert index_path.exists()
        assert "engine saved" in saved_out
        # Serve the same query from the persisted engine, with no dataset
        # flags needed for preprocessing (the engine file carries it).
        code = main(
            [
                "suggest",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--max-share",
                "0.6",
                "--load-index",
                str(index_path),
                "--weights",
                "0.9,0.1",
            ]
        )
        loaded_out = capsys.readouterr().out
        assert code == 0
        # Identical answer text before and after the round trip.
        assert loaded_out.strip() in saved_out


@pytest.mark.slow
class TestFiguresCommand:
    def test_figures_writes_requested_artifacts(self, tmp_path, capsys):
        exit_code = main(
            ["figures", "--output", str(tmp_path), "--names", "fig19_region_growth"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fig19_region_growth" in captured.out
        assert (tmp_path / "fig19_region_growth.csv").exists()
        assert (tmp_path / "fig19_region_growth.txt").exists()
