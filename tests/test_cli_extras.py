"""Tests for the ``audit`` and ``figures`` CLI subcommands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_audit_subcommand_is_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "audit",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--weights",
                "0.5,0.3,0.2",
            ]
        )
        assert args.command == "audit"
        assert args.k == pytest.approx(0.3)

    def test_figures_subcommand_is_registered(self):
        parser = build_parser()
        args = parser.parse_args(["figures", "--output", "out", "--names", "fig19_region_growth"])
        assert args.command == "figures"
        assert args.output == "out"

    def test_unknown_command_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
        capsys.readouterr()


class TestAuditCommand:
    def test_audit_prints_report_for_synthetic_compas(self, capsys):
        exit_code = main(
            [
                "audit",
                "--dataset",
                "compas",
                "--n",
                "120",
                "--d",
                "3",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--weights",
                "0.5,0.3,0.2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fairness audit" in captured.out
        assert "rND" in captured.out

    def test_audit_with_csv_dataset(self, tmp_path, capsys, small_compas_3d):
        path = tmp_path / "data.csv"
        small_compas_3d.to_csv(str(path))
        exit_code = main(
            [
                "audit",
                "--csv",
                str(path),
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "10",
                "--weights",
                "0.4,0.3,0.3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "protected in top-k" in captured.out


class TestSuggestExplain:
    def test_suggest_with_explain_flag_prints_explanation(self, capsys):
        exit_code = main(
            [
                "suggest",
                "--dataset",
                "compas",
                "--n",
                "80",
                "--d",
                "3",
                "--attribute",
                "race",
                "--group",
                "African-American",
                "--k",
                "0.3",
                "--max-share",
                "0.6",
                "--n-cells",
                "27",
                "--max-hyperplanes",
                "40",
                "--weights",
                "0.5,0.3,0.2",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        # Either the query was already fair (short message) or a full repair
        # explanation is printed.
        assert (
            "already satisfy" in captured.out
            or "top-" in captured.out
            and "weight changes" in captured.out
        )


@pytest.mark.slow
class TestFiguresCommand:
    def test_figures_writes_requested_artifacts(self, tmp_path, capsys):
        exit_code = main(
            ["figures", "--output", str(tmp_path), "--names", "fig19_region_growth"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fig19_region_growth" in captured.out
        assert (tmp_path / "fig19_region_growth.csv").exists()
        assert (tmp_path / "fig19_region_growth.txt").exists()
