"""Tests for the extension experiments and the figure-artifact generator."""

from __future__ import annotations

import csv
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.extensions import (
    BaselineComparison,
    experiment_ablation_grid_resolution,
    experiment_ablation_partition,
    experiment_baseline_comparison,
)
from repro.experiments.figures import (
    FIGURE_GENERATORS,
    figure_fig16_sweep,
    figure_fig21_sweep,
    generate_figures,
)


@pytest.mark.slow
class TestGridResolutionAblation:
    def test_bound_shrinks_and_answers_stay_valid(self):
        sweep = experiment_ablation_grid_resolution(
            n_cells_values=(8, 64), n_items=60, d=3, n_queries=8, max_hyperplanes=40
        )
        bounds = sweep.series["theorem6_bound"].ys
        cells = sweep.series["theorem6_bound"].xs
        assert cells == sorted(cells)
        # The Theorem 6 guarantee tightens as the grid gets finer.
        assert bounds[-1] <= bounds[0]
        fractions = sweep.series["marked_cell_fraction"].ys
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
        times = sweep.series["preprocess_seconds"].ys
        assert all(value >= 0.0 for value in times)


@pytest.mark.slow
class TestPartitionAblation:
    def test_both_backends_produce_valid_indexes(self):
        sweep = experiment_ablation_partition(
            n_items=60, d=3, n_cells=64, n_queries=6, max_hyperplanes=40
        )
        realised = sweep.series["realised_cells"].ys
        assert len(realised) == 2
        assert all(count >= 1 for count in realised)
        diameters = sweep.series["cell_diameter_bound"].ys
        assert all(value > 0 for value in diameters)
        distances = sweep.series["mean_suggestion_distance"].ys
        assert all(value >= 0.0 for value in distances)


@pytest.mark.slow
class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return experiment_baseline_comparison(
            n_items=150, d=3, k=0.25, n_cells=64, max_hyperplanes=60
        )

    def test_returns_all_four_methods(self, rows):
        assert [row.method for row in rows] == [
            "query",
            "designer",
            "greedy_rerank",
            "constrained_topk",
        ]

    def test_every_intervention_satisfies_the_constraint(self, rows):
        for row in rows[1:]:
            assert row.satisfies_constraint

    def test_only_weight_design_stays_linear(self, rows):
        by_method = {row.method: row for row in rows}
        assert by_method["query"].is_linear
        assert by_method["designer"].is_linear
        assert not by_method["greedy_rerank"].is_linear
        assert not by_method["constrained_topk"].is_linear

    def test_utilities_are_normalised(self, rows):
        by_method = {row.method: row for row in rows}
        assert by_method["query"].utility == pytest.approx(1.0)
        for row in rows[1:]:
            assert 0.0 < row.utility <= 1.0 + 1e-9

    def test_distance_only_defined_for_weight_vectors(self, rows):
        by_method = {row.method: row for row in rows}
        assert by_method["designer"].angular_distance_to_query >= 0.0
        assert math.isnan(by_method["greedy_rerank"].angular_distance_to_query)
        assert isinstance(rows[0], BaselineComparison)


class TestFigureGenerators:
    def test_registry_entries_are_callable(self):
        assert len(FIGURE_GENERATORS) >= 8
        for name, (generator, log_y) in FIGURE_GENERATORS.items():
            assert callable(generator)
            assert isinstance(log_y, bool)
            assert name.startswith("fig")

    def test_fig16_sweep_is_cumulative(self):
        sweep = figure_fig16_sweep(
            thresholds=(0.2, 0.4, 0.6),
            n_items=60,
            n_queries=20,
            n_cells=64,
            max_hyperplanes=40,
        )
        counts = sweep.series["repairs_within_threshold"].ys
        assert counts == sorted(counts)

    def test_fig21_sweep_is_sorted(self):
        sweep = figure_fig21_sweep(n_items=30, d=3, n_cells=64, max_hyperplanes=60)
        counts = sweep.series["hyperplanes_through_cell"].ys
        assert counts == sorted(counts)

    def test_generate_figures_rejects_unknown_names(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_figures(tmp_path, names=["not_a_figure"])

    @pytest.mark.slow
    def test_generate_selected_figures_writes_artifacts(self, tmp_path):
        written = generate_figures(tmp_path, names=["fig19_region_growth"])
        csv_path, txt_path = written["fig19_region_growth"]
        assert csv_path.exists() and txt_path.exists()
        with open(csv_path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "hyperplanes"
        assert len(rows) > 1
