"""Tests for the combined fairness audit report (:mod:`repro.fairness.auditing`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fairness.auditing import (
    RankingAudit,
    audit_function,
    audit_ordering,
    compare_audits,
    format_audit,
)
from repro.fairness.measures import group_share_at_k, selection_rate_ratio
from repro.ranking.scoring import LinearScoringFunction


@pytest.fixture
def skewed_dataset() -> Dataset:
    """Ten items where the protected group scores systematically lower."""
    scores = np.column_stack(
        [
            np.array([9.0, 8.0, 7.0, 6.0, 5.5, 5.0, 4.0, 3.0, 2.0, 1.0]),
            np.ones(10),
        ]
    )
    groups = ["b", "b", "b", "b", "b", "a", "a", "a", "a", "a"]
    return Dataset(scores, ["merit", "constant"], types={"group": groups})


class TestAuditOrdering:
    def test_reports_counts_and_shares(self, skewed_dataset):
        ordering = np.arange(10)
        audit = audit_ordering(skewed_dataset, ordering, "group", "a", k=4)
        assert audit.k == 4
        assert audit.protected_count_at_k == 0
        assert audit.protected_share_at_k == 0.0
        assert audit.dataset_share == pytest.approx(0.5)

    def test_matches_individual_measures(self, skewed_dataset):
        ordering = np.arange(10)
        audit = audit_ordering(skewed_dataset, ordering, "group", "a", k=6)
        assert audit.protected_share_at_k == pytest.approx(
            group_share_at_k(skewed_dataset, ordering, "group", "a", 6)
        )
        assert audit.selection_rate_ratio == pytest.approx(
            selection_rate_ratio(skewed_dataset, ordering, "group", "a", 6)
        )

    def test_fractional_k_is_resolved(self, skewed_dataset):
        audit = audit_ordering(skewed_dataset, np.arange(10), "group", "a", k=0.4)
        assert audit.k == 4

    def test_pairwise_fields_reflect_skew(self, skewed_dataset):
        audit = audit_ordering(skewed_dataset, np.arange(10), "group", "a", k=4)
        # Protected group is entirely below the other group.
        assert audit.protected_above_rate == pytest.approx(0.0)
        assert audit.rank_biserial == pytest.approx(-1.0)
        assert audit.mean_rank_gap > 0
        assert audit.exposure_ratio < 1.0

    def test_as_dict_round_trips_every_field(self, skewed_dataset):
        audit = audit_ordering(skewed_dataset, np.arange(10), "group", "a", k=4)
        payload = audit.as_dict()
        assert payload["k"] == 4
        assert set(payload) >= {
            "rnd",
            "rkl",
            "exposure_ratio",
            "protected_above_rate",
            "mean_rank_gap",
        }


class TestAuditFunction:
    def test_function_audit_equals_ordering_audit(self, skewed_dataset):
        function = LinearScoringFunction((1.0, 0.0))
        by_function = audit_function(skewed_dataset, function, "group", "a", k=4)
        by_ordering = audit_ordering(
            skewed_dataset, function.order(skewed_dataset), "group", "a", k=4
        )
        assert by_function == by_ordering


class TestCompareAndFormat:
    def test_compare_audits_pairs_numeric_fields(self, skewed_dataset):
        before = audit_ordering(skewed_dataset, np.arange(10), "group", "a", k=4)
        after = audit_ordering(skewed_dataset, np.arange(10)[::-1], "group", "a", k=4)
        comparison = compare_audits(before, after)
        assert comparison["protected_share_at_k"] == (
            pytest.approx(before.protected_share_at_k),
            pytest.approx(after.protected_share_at_k),
        )
        assert "attribute" not in comparison

    def test_format_audit_mentions_group_and_measures(self, skewed_dataset):
        audit = audit_ordering(skewed_dataset, np.arange(10), "group", "a", k=4)
        text = format_audit(audit, title="before")
        assert "before" in text
        assert "'a'" in text
        assert "rND" in text and "exposure ratio" in text

    def test_format_audit_without_title(self, skewed_dataset):
        audit = audit_ordering(skewed_dataset, np.arange(10), "group", "a", k=4)
        assert "protected in top-k" in format_audit(audit)

    def test_designer_suggestion_improves_the_audit(
        self, shared_approx_index, shared_compas_3d, shared_race_oracle_3d
    ):
        # The protected group is bounded from above by the oracle; an audit of
        # the suggested function must respect that bound.
        from repro.core.approx import md_online

        query = LinearScoringFunction((0.9, 0.05, 0.05))
        answer = md_online(shared_approx_index, query)
        audit = audit_function(
            shared_compas_3d, answer.function, "race", "African-American", k=0.3
        )
        assert isinstance(audit, RankingAudit)
        assert audit.protected_share_at_k <= shared_race_oracle_3d.max_fraction + 1e-9
